"""Batched Mehrotra predictor-corrector QP solver with an active mask.

:func:`solve_qp_batch` runs the same primal-dual interior-point iteration
as :func:`repro.mpc.qp.solve_qp`, but over ``B`` stacked instances
``(H, g, G, b, J, d)`` that share one sparsity structure (same shapes,
same stage-ordered band).  Every lane carries its own step lengths,
barrier parameter, and convergence scale; an *active mask* implements
continuous-batching semantics:

* a lane that converges, diverges, fails to factor, or exhausts its
  iteration cap is **frozen** — its iterate is never touched again, so it
  stays bit-identical to its freeze point;
* the remaining lanes are gathered into a smaller sub-batch and keep
  iterating, so late lanes do not pay for early finishers.

Every array operation routes through the :mod:`repro.batch.backend` seam
(``xp``), and the loop itself comes in two strategies keyed on
``xp.is_device``:

**Host strategy** (numpy and other host backends): the gather loop above,
unchanged from its original numpy form — per-lane Python bookkeeping is
free on host arrays, and the numpy backend stays bit-identical to the
pre-seam implementation.

**Device strategy** (cupy/torch — anything with ``is_device=True``): a
masked lockstep loop with *no per-iteration host synchronization*.  Lane
statuses live in a device integer array, freezes are ``where``-masked
updates instead of gathers, the loop runs to the precomputed global
iteration cap, and every per-lane statistic (iteration counts, residuals,
QPStats counters, the barrier-gap history) accumulates in device arrays
that are downloaded **once**, after the loop.  The optional
``sync_interval`` trades that purity for early exit: every such interval
one boolean is read back to stop a fully-frozen batch (set it to 0 for a
strictly sync-free solve).  Two intentional lockstep deviations from the
host strategy, both documented in DESIGN.md: frozen lanes still ride
along in the batched matmuls (their results are masked away), and the
factorization retry ladder is disabled (``attempts=1`` — a ladder's
early-exit test is a host round-trip per rung), so a lane the base
regularization cannot factor freezes as ``"failed"`` instead of retrying.

The per-iteration decision ladder (convergence check, divergence guard,
wall-clock deadline, cap re-evaluation) copies the scalar solver's order
exactly, so a single-lane batch follows the same iteration path as
``solve_qp`` on the same data.  The one intentional divergence: a lane
whose KKT factorization fails after the retry ladder is frozen with
status ``"failed"`` instead of raising ``SolverError``, because one bad
lane must not abort its batch-mates.  ``polish`` is ignored (the active
mask has no meaningful polish point for frozen lanes).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

from repro.mpc.banded import bandwidth_of
from repro.mpc.qp import QPOptions, QPStats

from .backend import HOST, ArrayBackend, get_backend
from .linalg import BatchCholeskyFactor, robust_factor_batch

__all__ = ["BatchQPStats", "BatchQPResult", "solve_qp_batch"]

_LAM_DIVERGENCE = 1e14
_SLACK_FLOOR = 1e-300
_W_CEIL = 1e16
_INF = float("inf")
_NAN = float("nan")

#: Device-side lane status codes (masked lockstep strategy).  ``_STALLED``
#: is produced only by the batched ADMM loop (repro.firstorder.batch):
#: the lane froze because its residual stopped improving — the batched
#: SQP driver treats it, like ``_FAILED``, as an IPM-rescue candidate.
_ACTIVE, _CONV, _DIV, _MAXIT, _BUDGET, _FAILED, _STALLED = 0, 1, 2, 3, 4, 5, 6
_STATUS_NAMES = {
    _ACTIVE: "max_iterations",  # unreachable fallback
    _CONV: "converged",
    _DIV: "diverged",
    _MAXIT: "max_iterations",
    _BUDGET: "budget_exhausted",
    _FAILED: "failed",
    _STALLED: "stalled",
}


@dataclass
class BatchQPStats:
    """Batch-level occupancy counters for the continuous-batching loop."""

    #: batch iterations executed (each runs one factorization sweep)
    iterations: int = 0
    #: lane-iterations actually worked (sum of active lanes per iteration)
    lane_iterations: int = 0
    #: lane-iterations available (batch size x iterations)
    lane_slots: int = 0

    @property
    def efficiency(self) -> float:
        """Active-lanes / total-lanes per iteration, in [0, 1]."""
        if self.lane_slots == 0:
            return 1.0
        return self.lane_iterations / self.lane_slots


@dataclass
class BatchQPResult:
    """Per-lane solutions and statuses of one batched QP solve.

    ``status[i]`` is one of ``"converged"``, ``"diverged"``,
    ``"budget_exhausted"`` (wall-clock deadline or a budget-shortened
    iteration cap), ``"max_iterations"`` (full cap reached), or
    ``"failed"`` (non-finite lane data or unrecoverable factorization).
    ``budget_exhausted[i]`` mirrors the scalar ``QPResult`` field and is
    set **only** for deadline-stopped lanes, so SQP callers can apply the
    scalar discard-direction rule unchanged.

    Arrays are host (numpy) regardless of the solve backend — a device
    solve downloads its state once, here, at result assembly.
    """

    x: object
    nu: object
    lam: object
    slacks: object
    converged: object
    iterations: object
    residual: object
    status: List[str]
    budget_exhausted: object
    gap_history: List[List[float]]
    stats: List[QPStats]
    batch: BatchQPStats
    freeze: Optional[Dict[int, Dict[str, object]]] = None
    #: solver-internal warm-start state for the next solve of the same
    #: shapes (ADMM batches only — see :mod:`repro.firstorder.batch`);
    #: ``None`` for the IPM strategies.
    warm: Optional[dict] = None


def _maxabs(xp: ArrayBackend, M):
    """Per-lane max-abs over all trailing axes of a ``(B, ...)`` stack."""
    lanes = int(M.shape[0])
    cols = 1
    for dim in tuple(M.shape)[1:]:
        cols *= int(dim)
    if cols == 0:
        return xp.zeros((lanes,))
    return xp.max(xp.abs(xp.reshape(M, (lanes, cols))), axis=1)


def _max_step_batch(xp: ArrayBackend, v, dv, safe_div: bool = False):
    """Per-lane fraction-to-the-boundary step (batched ``_max_step``).

    ``safe_div=True`` substitutes a dummy denominator where ``dv >= 0``
    so no divide-by-zero is ever issued — the masked lockstep strategy
    runs without the host strategy's errstate suppression.
    """
    if int(dv.shape[1]) == 0:
        return xp.ones((int(dv.shape[0]),))
    if safe_div:
        neg = dv < 0.0
        ratio = xp.where(neg, (0.0 - v) / xp.where(neg, dv, -1.0), _INF)
    else:
        with xp.errstate():
            ratio = xp.where(dv < 0.0, -v / dv, _INF)
    a = xp.min(ratio, axis=1)
    return xp.minimum(1.0, xp.where(xp.isfinite(a), a, 1.0))


def _bmv(xp: ArrayBackend, M, v):
    """Batched matrix @ vector: (k, r, c) x (k, c) -> (k, r)."""
    return xp.matmul(M, v[:, :, None])[:, :, 0]


def solve_qp_batch(
    H,
    g,
    G,
    b,
    J,
    d,
    options: Optional[QPOptions] = None,
    bandwidth: Optional[int] = None,
    deadline: Optional[float] = None,
    iteration_caps=None,
    record_freeze: bool = False,
    backend=None,
    sync_interval: int = 8,
) -> BatchQPResult:
    """Solve ``B`` convex QPs in lockstep with per-lane freezing.

    ``iteration_caps`` (optional, ``(B,)`` ints) shortens individual
    lanes' iteration budgets below ``options.max_iterations`` — a lane
    stopping on a shortened cap reports status ``"budget_exhausted"``.
    ``record_freeze`` snapshots each lane's iterate at its freeze point
    (for the bit-identity guarantees tested in the active-mask suite).
    ``backend`` selects the array namespace (default: process-wide
    selection); device backends take the masked lockstep strategy, where
    ``sync_interval`` controls the early-exit cadence (0 = never sync).
    """
    opt = options or QPOptions()
    xp = get_backend(backend)
    if xp.is_device:
        return _solve_masked(
            xp, H, g, G, b, J, d, opt, bandwidth, deadline,
            iteration_caps, record_freeze, sync_interval,
        )
    return _solve_gather(
        xp, H, g, G, b, J, d, opt, bandwidth, deadline,
        iteration_caps, record_freeze,
    )


# ------------------------------------------------------------------------
# Host strategy: gather loop (bit-identical to the pre-seam numpy code)
# ------------------------------------------------------------------------


def _solve_gather(
    xp: ArrayBackend,
    H,
    g,
    G,
    b,
    J,
    d,
    opt: QPOptions,
    bandwidth: Optional[int],
    deadline: Optional[float],
    iteration_caps,
    record_freeze: bool,
) -> BatchQPResult:
    H = xp.asarray(H)
    g = xp.asarray(g)
    lanes, n = int(g.shape[0]), int(g.shape[1])
    if tuple(H.shape) != (lanes, n, n):
        raise ValueError(f"H shape {tuple(H.shape)} != ({lanes}, {n}, {n})")

    if G is None or b is None:
        G = xp.zeros((lanes, 0, n))
        b = xp.zeros((lanes, 0))
        has_eq = False
    else:
        G = xp.asarray(G)
        b = xp.asarray(b)
        has_eq = G.shape[1] > 0
    if J is None or d is None:
        J = xp.zeros((lanes, 0, n))
        d = xp.zeros((lanes, 0))
    else:
        J = xp.asarray(J)
        d = xp.asarray(d)
    p, m = int(G.shape[1]), int(J.shape[1])
    has_in = m > 0

    x = xp.zeros((lanes, n))
    nu = xp.zeros((lanes, p))
    if has_in:
        s = xp.maximum(1.0, d - _bmv(xp, J, x))
        lam = xp.ones((lanes, m))
    else:
        s = xp.zeros((lanes, 0))
        lam = xp.zeros((lanes, 0))

    scale = 1.0 + xp.minimum(
        xp.maximum(
            _maxabs(xp, g), xp.maximum(_maxabs(xp, b), _maxabs(xp, d))
        ),
        100.0,
    )

    caps = xp.full((lanes,), int(opt.max_iterations), dtype="int")
    if iteration_caps is not None:
        ic = xp.asarray(iteration_caps, dtype="int")
        caps = xp.minimum(caps, xp.maximum(ic, 1))
    budget_capped = caps < opt.max_iterations

    active = xp.ones((lanes,), dtype="bool")
    status: List[str] = ["max_iterations"] * lanes
    converged = xp.zeros((lanes,), dtype="bool")
    budget_ex = xp.zeros((lanes,), dtype="bool")
    iterations = xp.zeros((lanes,), dtype="int")
    residual = xp.full((lanes,), _INF)
    gap_history: List[List[float]] = [[] for _ in range(lanes)]
    stats = [QPStats() for _ in range(lanes)]
    freeze: Dict[int, Dict[str, object]] = {}
    bstats = BatchQPStats()

    def _freeze(lane: int, st: str, its: int, budget: bool = False) -> None:
        active[lane] = False
        status[lane] = st
        iterations[lane] = its
        converged[lane] = st == "converged"
        budget_ex[lane] = budget
        if record_freeze:
            freeze[lane] = {
                "x": xp.copy(x[lane]),
                "nu": xp.copy(nu[lane]),
                "lam": xp.copy(lam[lane]),
                "slacks": xp.copy(s[lane]),
                "residual": xp.asarray(residual[lane]),
            }

    # Per-lane non-finite data fails fast (scalar raises SolverError; in a
    # batch the lane freezes as "failed" so its mates keep solving).
    lane_finite = (
        xp.all(xp.isfinite(H), axis=(1, 2))
        & xp.all(xp.isfinite(g), axis=1)
        & xp.all(xp.isfinite(xp.reshape(G, (lanes, -1))), axis=1)
        & xp.all(xp.isfinite(b), axis=1)
        & xp.all(xp.isfinite(xp.reshape(J, (lanes, -1))), axis=1)
        & xp.all(xp.isfinite(d), axis=1)
    )
    for lane in xp.flatnonzero(~lane_finite):
        _freeze(int(lane), "failed", 0)

    # Structural Phi band from the max-abs envelope over finite lanes —
    # a sparsity superset of every lane's H + J^T W J, measured once.
    phi_band: Optional[int] = None
    if bandwidth is not None and n and lane_finite.any():
        env = xp.max(xp.abs(H[lane_finite]), axis=0)
        if has_in:
            jmax = xp.max(xp.abs(J[lane_finite]), axis=0)
            env = env + xp.matmul(xp.transpose_last2(jmax), jmax)
        struct = bandwidth_of(env)
        if struct <= bandwidth:
            phi_band = struct
            for lane in xp.flatnonzero(lane_finite):
                stats[int(lane)].phi_bandwidth = struct

    sfloor = _SLACK_FLOOR
    global_max = int(caps[active].max()) if active.any() else 0

    for it in range(1, global_max + 2):
        idx = xp.flatnonzero(active)
        if idx.size == 0:
            break

        xa, nua, sa, lama = x[idx], nu[idx], s[idx], lam[idx]
        Ha, ga = H[idx], g[idx]
        Ga, ba = G[idx], b[idx]
        Ja, da = J[idx], d[idx]

        # Residual evaluation (mirrors eval_residual in the scalar loop).
        with xp.errstate():
            r_dual = _bmv(xp, Ha, xa) + ga
            if has_eq:
                r_dual = r_dual + _bmv(xp, xp.transpose_last2(Ga), nua)
            if has_in:
                r_dual = r_dual + _bmv(xp, xp.transpose_last2(Ja), lama)
            r_eq = (
                _bmv(xp, Ga, xa) - ba if has_eq else xp.zeros((int(idx.size), 0))
            )
            r_in = (
                _bmv(xp, Ja, xa) + sa - da
                if has_in
                else xp.zeros((int(idx.size), 0))
            )
            mu = (
                xp.sum(sa * lama, axis=1) / m
                if has_in
                else xp.zeros((int(idx.size),))
            )
            res = _maxabs(xp, r_dual)
            if has_eq:
                res = xp.maximum(res, _maxabs(xp, r_eq))
            if has_in:
                res = xp.maximum(res, _maxabs(xp, r_in))
            res = res + mu
        residual[idx] = res
        for k_l, lane in enumerate(idx):
            gap_history[int(lane)].append(float(mu[k_l]))

        # Classification ladder, scalar order: cap / converged / diverged.
        over_cap = it > caps[idx]
        conv = (~over_cap) & (res < opt.tolerance * scale[idx])
        lam_blow = (
            xp.max(lama, axis=1) > _LAM_DIVERGENCE * scale[idx]
            if has_in
            else xp.zeros((int(idx.size),), dtype="bool")
        )
        div = (~over_cap) & ~conv & (~xp.isfinite(res) | lam_blow)
        for k_l, lane in enumerate(idx):
            lane = int(lane)
            if over_cap[k_l]:
                if budget_capped[lane]:
                    _freeze(lane, "budget_exhausted", int(caps[lane]))
                else:
                    _freeze(lane, "max_iterations", int(caps[lane]))
            elif conv[k_l]:
                _freeze(lane, "converged", it)
            elif div[k_l]:
                _freeze(lane, "diverged", it)

        # Wall-clock deadline stops every still-active lane at once.
        if deadline is not None and perf_counter() >= deadline:
            for lane in xp.flatnonzero(active):
                _freeze(int(lane), "budget_exhausted", it - 1, budget=True)
            break

        keep = active[idx]
        if not keep.any():
            continue
        idx = idx[keep]
        xa, nua, sa, lama = xa[keep], nua[keep], sa[keep], lama[keep]
        Ha, ga, Ga, ba, Ja, da = (
            Ha[keep], ga[keep], Ga[keep], ba[keep], Ja[keep], da[keep]
        )
        r_dual, r_eq, r_in, mu = r_dual[keep], r_eq[keep], r_in[keep], mu[keep]
        k = int(idx.size)

        bstats.iterations += 1
        bstats.lane_iterations += k
        bstats.lane_slots += lanes

        with xp.errstate():
            if has_in:
                w = xp.minimum(lama / xp.maximum(sa, sfloor), _W_CEIL)
                Phi = Ha + xp.matmul(
                    xp.transpose_last2(Ja) * w[:, None, :], Ja
                )
            else:
                w = xp.zeros((k, 0))
                Phi = Ha

        t0 = perf_counter()
        phi_factor, reg_used, retries = robust_factor_batch(
            Phi, opt.regularization, phi_band, backend=xp
        )
        dt = perf_counter() - t0
        alive = xp.copy(phi_factor.ok)
        for k_l, lane in enumerate(idx):
            lane = int(lane)
            st = stats[lane]
            st.retries += int(retries[k_l])
            st.factorize_time += dt / k
            if alive[k_l]:
                st.factorizations += 1
                if phi_factor.banded:
                    st.banded_factorizations += 1
                st.factor_flops += phi_factor.factor_flops()
                st.regularization_max = max(
                    st.regularization_max, float(reg_used[k_l])
                )
            else:
                _freeze(lane, "failed", it)

        sub_time = [0.0]
        sub_flops_lane = [0]

        def _timed_solve(factor: BatchCholeskyFactor, rhs):
            t = perf_counter()
            out = factor.solve(rhs)
            sub_time[0] += perf_counter() - t
            nrhs = int(rhs.shape[2]) if rhs.ndim == 3 else 1
            sub_flops_lane[0] += factor.solve_flops(nrhs)
            return out

        s_factor: Optional[BatchCholeskyFactor] = None
        PhiInv_Gt = None
        if has_eq and alive.any():
            with xp.errstate():
                PhiInv_Gt = _timed_solve(phi_factor, xp.transpose_last2(Ga))
                S = xp.matmul(Ga, PhiInv_Gt)
            s_band: Optional[int] = None
            if bandwidth is not None:
                meas = bandwidth_of(xp.max(xp.abs(S[alive]), axis=0))
                if meas <= bandwidth:
                    s_band = meas
                for k_l, lane in enumerate(idx):
                    if alive[k_l]:
                        st = stats[int(lane)]
                        st.schur_bandwidth = max(st.schur_bandwidth or 0, meas)
            t0 = perf_counter()
            s_factor, s_reg, s_retries = robust_factor_batch(
                S, opt.regularization, s_band, backend=xp
            )
            dt = perf_counter() - t0
            still = alive & s_factor.ok
            for k_l, lane in enumerate(idx):
                lane = int(lane)
                if not alive[k_l]:
                    continue
                st = stats[lane]
                st.retries += int(s_retries[k_l])
                st.factorize_time += dt / max(int(alive.sum()), 1)
                if still[k_l]:
                    st.factorizations += 1
                    if s_factor.banded:
                        st.banded_factorizations += 1
                    st.factor_flops += s_factor.factor_flops()
                    st.regularization_max = max(
                        st.regularization_max, float(s_reg[k_l])
                    )
                else:
                    _freeze(lane, "failed", it)
            alive = still

        if not alive.any():
            continue

        def _newton(rc):
            with xp.errstate():
                if has_in:
                    rhs1 = -(
                        r_dual
                        + _bmv(
                            xp,
                            xp.transpose_last2(Ja),
                            w * r_in - rc / xp.maximum(sa, sfloor),
                        )
                    )
                else:
                    rhs1 = -r_dual
                t = _timed_solve(phi_factor, rhs1[:, :, None])[:, :, 0]
                if has_eq:
                    rhs2 = _bmv(xp, Ga, t) + r_eq
                    dnu = _timed_solve(s_factor, rhs2[:, :, None])[:, :, 0]
                    dx = t - _bmv(xp, PhiInv_Gt, dnu)
                else:
                    dnu = xp.zeros((k, 0))
                    dx = t
                if has_in:
                    ds = -r_in - _bmv(xp, Ja, dx)
                    dlam = (-rc - lama * ds) / xp.maximum(sa, sfloor)
                else:
                    ds = xp.zeros((k, 0))
                    dlam = xp.zeros((k, 0))
            return dx, dnu, ds, dlam

        with xp.errstate():
            # Predictor (affine scaling) step.
            rc_aff = sa * lama
            dx_a, dnu_a, ds_a, dlam_a = _newton(rc_aff)
            if has_in:
                ap_aff = _max_step_batch(xp, sa, ds_a)
                ad_aff = _max_step_batch(xp, lama, dlam_a)
                mu_aff = (
                    (sa + ap_aff[:, None] * ds_a)
                    * (lama + ad_aff[:, None] * dlam_a)
                ).sum(axis=1) / m
                safe_mu = xp.where(mu > 0.0, mu, 1.0)
                sigma = xp.where(mu > 0.0, (mu_aff / safe_mu) ** 3, 0.0)
                rc = sa * lama + ds_a * dlam_a - (sigma * mu)[:, None]
                dx, dnu, ds, dlam = _newton(rc)
                ap = xp.minimum(1.0, opt.tau * _max_step_batch(xp, sa, ds))
                ad = xp.minimum(1.0, opt.tau * _max_step_batch(xp, lama, dlam))
            else:
                dx, dnu, ds, dlam = dx_a, dnu_a, ds_a, dlam_a
                ap = xp.ones((k,))
                ad = xp.ones((k,))

        for k_l, lane in enumerate(idx):
            lane = int(lane)
            if not alive[k_l]:
                continue
            st = stats[lane]
            st.substitute_time += sub_time[0] / max(int(alive.sum()), 1)
            st.substitute_flops += sub_flops_lane[0]

        upd = xp.flatnonzero(alive)
        gidx = idx[upd]
        x[gidx] = xa[upd] + ap[upd, None] * dx[upd]
        nu[gidx] = nua[upd] + ad[upd, None] * dnu[upd]
        if has_in:
            s[gidx] = sa[upd] + ap[upd, None] * ds[upd]
            lam[gidx] = lama[upd] + ad[upd, None] * dlam[upd]

    for lane in range(lanes):
        st = stats[lane]
        if st.factorizations == 0:
            st.mode = "dense"
        elif st.banded_factorizations == st.factorizations:
            st.mode = "banded"
        elif st.banded_factorizations:
            st.mode = "mixed"
        else:
            st.mode = "dense"

    return BatchQPResult(
        x=x,
        nu=nu,
        lam=lam,
        slacks=s,
        converged=converged,
        iterations=iterations,
        residual=residual,
        status=status,
        budget_exhausted=budget_ex,
        gap_history=gap_history,
        stats=stats,
        batch=bstats,
        freeze=freeze if record_freeze else None,
    )


# ------------------------------------------------------------------------
# Device strategy: masked lockstep loop (no per-iteration host syncs)
# ------------------------------------------------------------------------


def _solve_masked(
    xp: ArrayBackend,
    H,
    g,
    G,
    b,
    J,
    d,
    opt: QPOptions,
    bandwidth: Optional[int],
    deadline: Optional[float],
    iteration_caps,
    record_freeze: bool,
    sync_interval: int,
) -> BatchQPResult:
    H = xp.asarray(H)
    g = xp.asarray(g)
    lanes, n = int(g.shape[0]), int(g.shape[1])
    if tuple(H.shape) != (lanes, n, n):
        raise ValueError(f"H shape {tuple(H.shape)} != ({lanes}, {n}, {n})")

    if G is None or b is None:
        G = xp.zeros((lanes, 0, n))
        b = xp.zeros((lanes, 0))
    else:
        G = xp.asarray(G)
        b = xp.asarray(b)
    if J is None or d is None:
        J = xp.zeros((lanes, 0, n))
        d = xp.zeros((lanes, 0))
    else:
        J = xp.asarray(J)
        d = xp.asarray(d)
    p, m = int(G.shape[1]), int(J.shape[1])
    has_eq, has_in = p > 0, m > 0

    lane_finite = (
        xp.all(xp.isfinite(H), axis=(1, 2))
        & xp.all(xp.isfinite(g), axis=1)
        & xp.all(xp.isfinite(xp.reshape(G, (lanes, -1))), axis=1)
        & xp.all(xp.isfinite(b), axis=1)
        & xp.all(xp.isfinite(xp.reshape(J, (lanes, -1))), axis=1)
        & xp.all(xp.isfinite(d), axis=1)
    )
    # Sanitize failed lanes' data so lockstep arithmetic on them stays
    # bounded; their state is frozen at zeros and never published.
    lf3 = lane_finite[:, None, None]
    lf2 = lane_finite[:, None]
    H = xp.where(lf3, H, 0.0)
    g = xp.where(lf2, g, 0.0)
    if has_eq:
        G = xp.where(lf3, G, 0.0)
        b = xp.where(lf2, b, 0.0)
    if has_in:
        J = xp.where(lf3, J, 0.0)
        d = xp.where(lf2, d, 0.0)
    Gt = xp.transpose_last2(G)
    Jt = xp.transpose_last2(J)

    x = xp.zeros((lanes, n))
    nu = xp.zeros((lanes, p))
    if has_in:
        s = xp.maximum(1.0, d - _bmv(xp, J, x))
        lam = xp.ones((lanes, m))
    else:
        s = xp.zeros((lanes, 0))
        lam = xp.zeros((lanes, 0))

    scale = 1.0 + xp.minimum(
        xp.maximum(
            _maxabs(xp, g), xp.maximum(_maxabs(xp, b), _maxabs(xp, d))
        ),
        100.0,
    )

    # Iteration caps: the global trip count is a host decision made once,
    # before the loop, from host-side inputs.
    max_it = int(opt.max_iterations)
    if iteration_caps is not None:
        caps_h = HOST.minimum(
            HOST.full((lanes,), max_it, dtype="int"),
            HOST.maximum(HOST.asarray(iteration_caps, dtype="int"), 1),
        )
        global_max = int(HOST.scalar(HOST.max(caps_h)))
        caps = xp.from_host(caps_h, dtype="int")
    else:
        global_max = max_it
        caps = xp.full((lanes,), max_it, dtype="int")
    budget_capped = caps < max_it

    status = xp.where(lane_finite, _ACTIVE, _FAILED)
    iterations = xp.zeros((lanes,), dtype="int")
    residual = xp.full((lanes,), _INF)
    deadline_hit = xp.zeros((lanes,), dtype="bool")
    mu_rows: List[object] = []

    # Device-resident per-lane QPStats accumulators.
    factz = xp.zeros((lanes,), dtype="int")
    banded_factz = xp.zeros((lanes,), dtype="int")
    flops_acc = xp.zeros((lanes,), dtype="int")
    subflops_acc = xp.zeros((lanes,), dtype="int")
    regmax = xp.zeros((lanes,))
    lane_iter_acc = xp.sum(xp.zeros((1,), dtype="int"))
    factor_time_total = 0.0
    sub_time_total = 0.0
    bstats = BatchQPStats()

    # Structural Phi band, measured once at setup (one constant download;
    # sanitized failed lanes contribute zeros to the envelope).
    phi_band: Optional[int] = None
    phi_struct: Optional[int] = None
    if bandwidth is not None and n:
        env = xp.max(xp.abs(H), axis=0)
        if has_in:
            jmax = xp.max(xp.abs(J), axis=0)
            env = env + xp.matmul(xp.transpose_last2(jmax), jmax)
        struct = bandwidth_of(xp.to_host(env))
        if struct <= bandwidth:
            phi_band = phi_struct = struct
    schur_meas: Optional[int] = None

    sfloor = _SLACK_FLOOR

    for it in range(1, global_max + 2):
        eval_active = status == _ACTIVE

        with xp.errstate():
            r_dual = _bmv(xp, H, x) + g
            if has_eq:
                r_dual = r_dual + _bmv(xp, Gt, nu)
            if has_in:
                r_dual = r_dual + _bmv(xp, Jt, lam)
            r_eq = _bmv(xp, G, x) - b if has_eq else None
            r_in = _bmv(xp, J, x) + s - d if has_in else None
            mu = (
                xp.sum(s * lam, axis=1) / m
                if has_in
                else xp.zeros((lanes,))
            )
            res = _maxabs(xp, r_dual)
            if has_eq:
                res = xp.maximum(res, _maxabs(xp, r_eq))
            if has_in:
                res = xp.maximum(res, _maxabs(xp, r_in))
            res = res + mu

        residual = xp.where(eval_active, res, residual)
        mu_rows.append(xp.where(eval_active, mu, _NAN))

        # Classification ladder, scalar order: cap / converged / diverged.
        over_cap = eval_active & (it > caps)
        conv = eval_active & ~over_cap & (res < opt.tolerance * scale)
        if has_in:
            lam_blow = xp.max(lam, axis=1) > _LAM_DIVERGENCE * scale
        else:
            lam_blow = xp.zeros((lanes,), dtype="bool")
        div = (
            eval_active
            & ~over_cap
            & ~conv
            & (~xp.isfinite(res) | lam_blow)
        )
        status = xp.where(
            over_cap, xp.where(budget_capped, _BUDGET, _MAXIT), status
        )
        status = xp.where(conv, _CONV, status)
        status = xp.where(div, _DIV, status)
        iterations = xp.where(over_cap, caps, iterations)
        iterations = xp.where(conv | div, it, iterations)

        # Wall-clock deadline stops every still-active lane at once (a
        # host-clock decision — no device data is read).
        if deadline is not None and perf_counter() >= deadline:
            still = status == _ACTIVE
            status = xp.where(still, _BUDGET, status)
            iterations = xp.where(still, it - 1, iterations)
            deadline_hit = deadline_hit | still
            break

        active = status == _ACTIVE
        if sync_interval and it % sync_interval == 0:
            # The one optional host round-trip: early exit for a batch
            # that has fully frozen before the global cap.
            if not bool(xp.scalar(xp.any(active))):
                break

        ai = xp.astype(active, "int")
        bstats.iterations += 1
        bstats.lane_slots += lanes
        lane_iter_acc = lane_iter_acc + xp.sum(ai)

        with xp.errstate():
            if has_in:
                w = xp.minimum(lam / xp.maximum(s, sfloor), _W_CEIL)
                Phi = H + xp.matmul(Jt * w[:, None, :], J)
            else:
                w = None
                Phi = H

        t0 = perf_counter()
        phi_factor, reg_used, _rt = robust_factor_batch(
            Phi, opt.regularization, phi_band,
            attempts=1, backend=xp, active=active,
        )
        factor_time_total += perf_counter() - t0
        alive = active & phi_factor.ok
        newly_failed = active & ~phi_factor.ok
        status = xp.where(newly_failed, _FAILED, status)
        iterations = xp.where(newly_failed, it, iterations)
        aiv = xp.astype(alive, "int")
        factz = factz + aiv
        if phi_factor.banded:
            banded_factz = banded_factz + aiv
        flops_acc = flops_acc + aiv * phi_factor.factor_flops()
        regmax = xp.maximum(regmax, xp.where(alive, reg_used, 0.0))

        def _timed_solve(factor, rhs, aiv_now):
            nonlocal sub_time_total, subflops_acc
            t = perf_counter()
            out = factor.solve(rhs)
            sub_time_total += perf_counter() - t
            nrhs = int(rhs.shape[2]) if rhs.ndim == 3 else 1
            subflops_acc = subflops_acc + aiv_now * factor.solve_flops(nrhs)
            return out

        s_factor = None
        PhiInv_Gt = None
        if has_eq:
            with xp.errstate():
                PhiInv_Gt = _timed_solve(phi_factor, Gt, aiv)
                S = xp.matmul(G, PhiInv_Gt)
            s_band: Optional[int] = None
            if bandwidth is not None:
                if schur_meas is None:
                    # Measured once, on the first iteration's Schur
                    # complement (one constant download).
                    schur_meas = bandwidth_of(
                        xp.to_host(xp.max(xp.abs(S), axis=0))
                    )
                if schur_meas <= bandwidth:
                    s_band = schur_meas
            t0 = perf_counter()
            s_factor, s_reg, _rt = robust_factor_batch(
                S, opt.regularization, s_band,
                attempts=1, backend=xp, active=alive,
            )
            factor_time_total += perf_counter() - t0
            still = alive & s_factor.ok
            newly_failed = alive & ~s_factor.ok
            status = xp.where(newly_failed, _FAILED, status)
            iterations = xp.where(newly_failed, it, iterations)
            siv = xp.astype(still, "int")
            factz = factz + siv
            if s_factor.banded:
                banded_factz = banded_factz + siv
            flops_acc = flops_acc + siv * s_factor.factor_flops()
            regmax = xp.maximum(regmax, xp.where(still, s_reg, 0.0))
            alive = still
            aiv = siv

        def _newton(rc):
            with xp.errstate():
                if has_in:
                    rhs1 = 0.0 - (
                        r_dual
                        + _bmv(
                            xp,
                            Jt,
                            w * r_in - rc / xp.maximum(s, sfloor),
                        )
                    )
                else:
                    rhs1 = 0.0 - r_dual
                t = _timed_solve(phi_factor, rhs1[:, :, None], aiv)[:, :, 0]
                if has_eq:
                    rhs2 = _bmv(xp, G, t) + r_eq
                    dnu = _timed_solve(s_factor, rhs2[:, :, None], aiv)[
                        :, :, 0
                    ]
                    dx = t - _bmv(xp, PhiInv_Gt, dnu)
                else:
                    dnu = nu
                    dx = t
                if has_in:
                    ds = (0.0 - r_in) - _bmv(xp, J, dx)
                    dlam = ((0.0 - rc) - lam * ds) / xp.maximum(s, sfloor)
                else:
                    ds = s
                    dlam = lam
            return dx, dnu, ds, dlam

        with xp.errstate():
            rc_aff = s * lam
            dx_a, dnu_a, ds_a, dlam_a = _newton(rc_aff)
            if has_in:
                ap_aff = _max_step_batch(xp, s, ds_a, safe_div=True)
                ad_aff = _max_step_batch(xp, lam, dlam_a, safe_div=True)
                mu_aff = xp.sum(
                    (s + ap_aff[:, None] * ds_a)
                    * (lam + ad_aff[:, None] * dlam_a),
                    axis=1,
                ) / m
                safe_mu = xp.where(mu > 0.0, mu, 1.0)
                sigma = xp.where(mu > 0.0, (mu_aff / safe_mu) ** 3, 0.0)
                rc = s * lam + ds_a * dlam_a - (sigma * mu)[:, None]
                dx, dnu, ds, dlam = _newton(rc)
                ap = xp.minimum(
                    1.0, opt.tau * _max_step_batch(xp, s, ds, safe_div=True)
                )
                ad = xp.minimum(
                    1.0, opt.tau * _max_step_batch(xp, lam, dlam, safe_div=True)
                )
            else:
                dx, dnu, ds, dlam = dx_a, dnu_a, ds_a, dlam_a
                ap = xp.ones((lanes,))
                ad = xp.ones((lanes,))

        am = alive[:, None]
        x = xp.where(am, x + ap[:, None] * dx, x)
        if has_eq:
            nu = xp.where(am, nu + ad[:, None] * dnu, nu)
        if has_in:
            s = xp.where(am, s + ap[:, None] * ds, s)
            lam = xp.where(am, lam + ad[:, None] * dlam, lam)

    # ---- single bulk download: the only host materialization ----------
    x_h = xp.to_host(x)
    nu_h = xp.to_host(nu)
    s_h = xp.to_host(s)
    lam_h = xp.to_host(lam)
    status_h = xp.to_host(status)
    iters_h = xp.to_host(iterations)
    resid_h = xp.to_host(residual)
    deadline_h = xp.to_host(deadline_hit)
    factz_h = xp.to_host(factz)
    banded_h = xp.to_host(banded_factz)
    flops_h = xp.to_host(flops_acc)
    subflops_h = xp.to_host(subflops_acc)
    regmax_h = xp.to_host(regmax)
    finite_h = xp.to_host(lane_finite)
    mu_h = xp.to_host(xp.stack(mu_rows)) if mu_rows else None
    bstats.lane_iterations = int(xp.scalar(lane_iter_acc))

    status_codes = [int(c) for c in status_h]
    status = [_STATUS_NAMES[c] for c in status_codes]
    converged_h = HOST.asarray(
        [c == _CONV for c in status_codes], dtype="bool"
    )

    gap_history: List[List[float]] = [[] for _ in range(lanes)]
    if mu_h is not None:
        for lane in range(lanes):
            col = mu_h[:, lane]
            gap_history[lane] = [float(v) for v in col if v == v]

    total_factz = max(int(factz_h.sum()), 1)
    stats: List[QPStats] = []
    for lane in range(lanes):
        st = QPStats()
        st.factorizations = int(factz_h[lane])
        st.banded_factorizations = int(banded_h[lane])
        st.factor_flops = int(flops_h[lane])
        st.substitute_flops = int(subflops_h[lane])
        st.regularization_max = float(regmax_h[lane])
        share = int(factz_h[lane]) / total_factz
        st.factorize_time = factor_time_total * share
        st.substitute_time = sub_time_total * share
        if phi_struct is not None and bool(finite_h[lane]):
            st.phi_bandwidth = phi_struct
        if schur_meas is not None and st.factorizations:
            st.schur_bandwidth = schur_meas
        if st.factorizations == 0:
            st.mode = "dense"
        elif st.banded_factorizations == st.factorizations:
            st.mode = "banded"
        elif st.banded_factorizations:
            st.mode = "mixed"
        else:
            st.mode = "dense"
        stats.append(st)

    freeze: Optional[Dict[int, Dict[str, object]]] = None
    if record_freeze:
        # Frozen lanes are where-masked out of every update, so the final
        # state *is* each lane's freeze-point snapshot.
        freeze = {}
        for lane in range(lanes):
            if status_codes[lane] != _ACTIVE:
                freeze[lane] = {
                    "x": x_h[lane].copy(),
                    "nu": nu_h[lane].copy(),
                    "lam": lam_h[lane].copy(),
                    "slacks": s_h[lane].copy(),
                    "residual": HOST.asarray(resid_h[lane]),
                }

    return BatchQPResult(
        x=x_h,
        nu=nu_h,
        lam=lam_h,
        slacks=s_h,
        converged=converged_h,
        iterations=iters_h,
        residual=resid_h,
        status=status,
        budget_exhausted=deadline_h,
        gap_history=gap_history,
        stats=stats,
        batch=bstats,
        freeze=freeze,
    )
