"""Batched Mehrotra predictor-corrector QP solver with an active mask.

:func:`solve_qp_batch` runs the same primal-dual interior-point iteration
as :func:`repro.mpc.qp.solve_qp`, but over ``B`` stacked instances
``(H, g, G, b, J, d)`` that share one sparsity structure (same shapes,
same stage-ordered band).  Every lane carries its own step lengths,
barrier parameter, and convergence scale; an *active mask* implements
continuous-batching semantics:

* a lane that converges, diverges, fails to factor, or exhausts its
  iteration cap is **frozen** — its iterate is never touched again, so it
  stays bit-identical to its freeze point;
* the remaining lanes are gathered into a smaller sub-batch and keep
  iterating, so late lanes do not pay for early finishers.

The per-iteration decision ladder (convergence check, divergence guard,
wall-clock deadline, cap re-evaluation) copies the scalar solver's order
exactly, so a single-lane batch follows the same iteration path as
``solve_qp`` on the same data.  The one intentional divergence: a lane
whose KKT factorization fails after the retry ladder is frozen with
status ``"failed"`` instead of raising ``SolverError``, because one bad
lane must not abort its batch-mates.  ``polish`` is ignored (the active
mask has no meaningful polish point for frozen lanes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from repro.mpc.banded import bandwidth_of
from repro.mpc.qp import QPOptions, QPStats

from .linalg import BatchCholeskyFactor, robust_factor_batch

__all__ = ["BatchQPStats", "BatchQPResult", "solve_qp_batch"]

_LAM_DIVERGENCE = 1e14
_SLACK_FLOOR = 1e-300
_W_CEIL = 1e16


@dataclass
class BatchQPStats:
    """Batch-level occupancy counters for the continuous-batching loop."""

    #: batch iterations executed (each runs one factorization sweep)
    iterations: int = 0
    #: lane-iterations actually worked (sum of active lanes per iteration)
    lane_iterations: int = 0
    #: lane-iterations available (batch size x iterations)
    lane_slots: int = 0

    @property
    def efficiency(self) -> float:
        """Active-lanes / total-lanes per iteration, in [0, 1]."""
        if self.lane_slots == 0:
            return 1.0
        return self.lane_iterations / self.lane_slots


@dataclass
class BatchQPResult:
    """Per-lane solutions and statuses of one batched QP solve.

    ``status[i]`` is one of ``"converged"``, ``"diverged"``,
    ``"budget_exhausted"`` (wall-clock deadline or a budget-shortened
    iteration cap), ``"max_iterations"`` (full cap reached), or
    ``"failed"`` (non-finite lane data or unrecoverable factorization).
    ``budget_exhausted[i]`` mirrors the scalar ``QPResult`` field and is
    set **only** for deadline-stopped lanes, so SQP callers can apply the
    scalar discard-direction rule unchanged.
    """

    x: np.ndarray
    nu: np.ndarray
    lam: np.ndarray
    slacks: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray
    residual: np.ndarray
    status: List[str]
    budget_exhausted: np.ndarray
    gap_history: List[List[float]]
    stats: List[QPStats]
    batch: BatchQPStats
    freeze: Optional[Dict[int, Dict[str, np.ndarray]]] = None


def _max_step_batch(v: np.ndarray, dv: np.ndarray) -> np.ndarray:
    """Per-lane fraction-to-the-boundary step (batched ``_max_step``)."""
    if dv.shape[1] == 0:
        return np.ones(dv.shape[0])
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(dv < 0.0, -v / dv, np.inf)
    a = ratio.min(axis=1)
    return np.minimum(1.0, np.where(np.isfinite(a), a, 1.0))


def _bmv(M: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Batched matrix @ vector: (k, r, c) x (k, c) -> (k, r)."""
    return np.matmul(M, v[:, :, None])[:, :, 0]


def solve_qp_batch(
    H: np.ndarray,
    g: np.ndarray,
    G: Optional[np.ndarray],
    b: Optional[np.ndarray],
    J: Optional[np.ndarray],
    d: Optional[np.ndarray],
    options: Optional[QPOptions] = None,
    bandwidth: Optional[int] = None,
    deadline: Optional[float] = None,
    iteration_caps: Optional[np.ndarray] = None,
    record_freeze: bool = False,
) -> BatchQPResult:
    """Solve ``B`` convex QPs in lockstep with per-lane freezing.

    ``iteration_caps`` (optional, ``(B,)`` ints) shortens individual
    lanes' iteration budgets below ``options.max_iterations`` — a lane
    stopping on a shortened cap reports status ``"budget_exhausted"``.
    ``record_freeze`` snapshots each lane's iterate at its freeze point
    (for the bit-identity guarantees tested in the active-mask suite).
    """
    opt = options or QPOptions()
    H = np.asarray(H, dtype=float)
    g = np.asarray(g, dtype=float)
    lanes, n = g.shape
    if H.shape != (lanes, n, n):
        raise ValueError(f"H shape {H.shape} != ({lanes}, {n}, {n})")

    if G is None or b is None:
        G = np.zeros((lanes, 0, n))
        b = np.zeros((lanes, 0))
        has_eq = False
    else:
        G = np.asarray(G, dtype=float)
        b = np.asarray(b, dtype=float)
        has_eq = G.shape[1] > 0
    if J is None or d is None:
        J = np.zeros((lanes, 0, n))
        d = np.zeros((lanes, 0))
    else:
        J = np.asarray(J, dtype=float)
        d = np.asarray(d, dtype=float)
    p, m = G.shape[1], J.shape[1]
    has_in = m > 0

    x = np.zeros((lanes, n))
    nu = np.zeros((lanes, p))
    if has_in:
        s = np.maximum(1.0, d - _bmv(J, x))
        lam = np.ones((lanes, m))
    else:
        s = np.zeros((lanes, 0))
        lam = np.zeros((lanes, 0))

    def _maxabs(M: np.ndarray) -> np.ndarray:
        if M.size == 0:
            return np.zeros(M.shape[0])
        return np.abs(M.reshape(M.shape[0], -1)).max(axis=1)

    scale = 1.0 + np.minimum(
        np.maximum(_maxabs(g), np.maximum(_maxabs(b), _maxabs(d))), 100.0
    )

    caps = np.full(lanes, int(opt.max_iterations), dtype=int)
    if iteration_caps is not None:
        ic = np.asarray(iteration_caps, dtype=int)
        caps = np.minimum(caps, np.maximum(ic, 1))
    budget_capped = caps < opt.max_iterations

    active = np.ones(lanes, dtype=bool)
    status: List[str] = ["max_iterations"] * lanes
    converged = np.zeros(lanes, dtype=bool)
    budget_ex = np.zeros(lanes, dtype=bool)
    iterations = np.zeros(lanes, dtype=int)
    residual = np.full(lanes, np.inf)
    gap_history: List[List[float]] = [[] for _ in range(lanes)]
    stats = [QPStats() for _ in range(lanes)]
    freeze: Dict[int, Dict[str, np.ndarray]] = {}
    bstats = BatchQPStats()

    def _freeze(lane: int, st: str, its: int, budget: bool = False) -> None:
        active[lane] = False
        status[lane] = st
        iterations[lane] = its
        converged[lane] = st == "converged"
        budget_ex[lane] = budget
        if record_freeze:
            freeze[lane] = {
                "x": x[lane].copy(),
                "nu": nu[lane].copy(),
                "lam": lam[lane].copy(),
                "slacks": s[lane].copy(),
                "residual": np.array(residual[lane]),
            }

    # Per-lane non-finite data fails fast (scalar raises SolverError; in a
    # batch the lane freezes as "failed" so its mates keep solving).
    lane_finite = (
        np.isfinite(H).all(axis=(1, 2))
        & np.isfinite(g).all(axis=1)
        & np.isfinite(G.reshape(lanes, -1)).all(axis=1)
        & np.isfinite(b).all(axis=1)
        & np.isfinite(J.reshape(lanes, -1)).all(axis=1)
        & np.isfinite(d).all(axis=1)
    )
    for lane in np.flatnonzero(~lane_finite):
        _freeze(int(lane), "failed", 0)

    # Structural Phi band from the max-abs envelope over finite lanes —
    # a sparsity superset of every lane's H + J^T W J, measured once.
    phi_band: Optional[int] = None
    if bandwidth is not None and n and lane_finite.any():
        env = np.abs(H[lane_finite]).max(axis=0)
        if has_in:
            jmax = np.abs(J[lane_finite]).max(axis=0)
            env = env + jmax.T @ jmax
        struct = bandwidth_of(env)
        if struct <= bandwidth:
            phi_band = struct
            for lane in np.flatnonzero(lane_finite):
                stats[int(lane)].phi_bandwidth = struct

    sfloor = _SLACK_FLOOR
    global_max = int(caps[active].max()) if active.any() else 0

    for it in range(1, global_max + 2):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break

        xa, nua, sa, lama = x[idx], nu[idx], s[idx], lam[idx]
        Ha, ga = H[idx], g[idx]
        Ga, ba = G[idx], b[idx]
        Ja, da = J[idx], d[idx]

        # Residual evaluation (mirrors eval_residual in the scalar loop).
        with np.errstate(all="ignore"):
            r_dual = _bmv(Ha, xa) + ga
            if has_eq:
                r_dual = r_dual + _bmv(Ga.transpose(0, 2, 1), nua)
            if has_in:
                r_dual = r_dual + _bmv(Ja.transpose(0, 2, 1), lama)
            r_eq = _bmv(Ga, xa) - ba if has_eq else np.zeros((idx.size, 0))
            r_in = _bmv(Ja, xa) + sa - da if has_in else np.zeros((idx.size, 0))
            mu = (sa * lama).sum(axis=1) / m if has_in else np.zeros(idx.size)
            res = _maxabs(r_dual)
            if has_eq:
                res = np.maximum(res, _maxabs(r_eq))
            if has_in:
                res = np.maximum(res, _maxabs(r_in))
            res = res + mu
        residual[idx] = res
        for k_l, lane in enumerate(idx):
            gap_history[int(lane)].append(float(mu[k_l]))

        # Classification ladder, scalar order: cap / converged / diverged.
        over_cap = it > caps[idx]
        conv = (~over_cap) & (res < opt.tolerance * scale[idx])
        lam_blow = (
            lama.max(axis=1) > _LAM_DIVERGENCE * scale[idx]
            if has_in
            else np.zeros(idx.size, dtype=bool)
        )
        div = (~over_cap) & ~conv & (~np.isfinite(res) | lam_blow)
        for k_l, lane in enumerate(idx):
            lane = int(lane)
            if over_cap[k_l]:
                if budget_capped[lane]:
                    _freeze(lane, "budget_exhausted", int(caps[lane]))
                else:
                    _freeze(lane, "max_iterations", int(caps[lane]))
            elif conv[k_l]:
                _freeze(lane, "converged", it)
            elif div[k_l]:
                _freeze(lane, "diverged", it)

        # Wall-clock deadline stops every still-active lane at once.
        if deadline is not None and perf_counter() >= deadline:
            for lane in np.flatnonzero(active):
                _freeze(int(lane), "budget_exhausted", it - 1, budget=True)
            break

        keep = active[idx]
        if not keep.any():
            continue
        idx = idx[keep]
        xa, nua, sa, lama = xa[keep], nua[keep], sa[keep], lama[keep]
        Ha, ga, Ga, ba, Ja, da = Ha[keep], ga[keep], Ga[keep], ba[keep], Ja[keep], da[keep]
        r_dual, r_eq, r_in, mu = r_dual[keep], r_eq[keep], r_in[keep], mu[keep]
        k = idx.size

        bstats.iterations += 1
        bstats.lane_iterations += k
        bstats.lane_slots += lanes

        with np.errstate(all="ignore"):
            if has_in:
                w = np.minimum(lama / np.maximum(sa, sfloor), _W_CEIL)
                Phi = Ha + np.matmul(Ja.transpose(0, 2, 1) * w[:, None, :], Ja)
            else:
                w = np.zeros((k, 0))
                Phi = Ha

        t0 = perf_counter()
        phi_factor, reg_used, retries = robust_factor_batch(
            Phi, opt.regularization, phi_band
        )
        dt = perf_counter() - t0
        alive = phi_factor.ok.copy()
        for k_l, lane in enumerate(idx):
            lane = int(lane)
            st = stats[lane]
            st.retries += int(retries[k_l])
            st.factorize_time += dt / k
            if alive[k_l]:
                st.factorizations += 1
                if phi_factor.banded:
                    st.banded_factorizations += 1
                st.factor_flops += phi_factor.factor_flops()
                st.regularization_max = max(st.regularization_max, float(reg_used[k_l]))
            else:
                _freeze(lane, "failed", it)

        sub_time = [0.0]
        sub_flops_lane = [0]

        def _timed_solve(factor: BatchCholeskyFactor, rhs: np.ndarray) -> np.ndarray:
            t = perf_counter()
            out = factor.solve(rhs)
            sub_time[0] += perf_counter() - t
            nrhs = rhs.shape[2] if rhs.ndim == 3 else 1
            sub_flops_lane[0] += factor.solve_flops(nrhs)
            return out

        s_factor: Optional[BatchCholeskyFactor] = None
        PhiInv_Gt = None
        if has_eq and alive.any():
            with np.errstate(all="ignore"):
                PhiInv_Gt = _timed_solve(phi_factor, Ga.transpose(0, 2, 1))
                S = np.matmul(Ga, PhiInv_Gt)
            s_band: Optional[int] = None
            if bandwidth is not None:
                meas = bandwidth_of(np.abs(S[alive]).max(axis=0))
                if meas <= bandwidth:
                    s_band = meas
                for k_l, lane in enumerate(idx):
                    if alive[k_l]:
                        st = stats[int(lane)]
                        st.schur_bandwidth = max(st.schur_bandwidth or 0, meas)
            t0 = perf_counter()
            s_factor, s_reg, s_retries = robust_factor_batch(
                S, opt.regularization, s_band
            )
            dt = perf_counter() - t0
            still = alive & s_factor.ok
            for k_l, lane in enumerate(idx):
                lane = int(lane)
                if not alive[k_l]:
                    continue
                st = stats[lane]
                st.retries += int(s_retries[k_l])
                st.factorize_time += dt / max(int(alive.sum()), 1)
                if still[k_l]:
                    st.factorizations += 1
                    if s_factor.banded:
                        st.banded_factorizations += 1
                    st.factor_flops += s_factor.factor_flops()
                    st.regularization_max = max(
                        st.regularization_max, float(s_reg[k_l])
                    )
                else:
                    _freeze(lane, "failed", it)
            alive = still

        if not alive.any():
            continue

        def _newton(rc: np.ndarray):
            with np.errstate(all="ignore"):
                if has_in:
                    rhs1 = -(
                        r_dual
                        + _bmv(
                            Ja.transpose(0, 2, 1),
                            w * r_in - rc / np.maximum(sa, sfloor),
                        )
                    )
                else:
                    rhs1 = -r_dual
                t = _timed_solve(phi_factor, rhs1[:, :, None])[:, :, 0]
                if has_eq:
                    rhs2 = _bmv(Ga, t) + r_eq
                    dnu = _timed_solve(s_factor, rhs2[:, :, None])[:, :, 0]
                    dx = t - _bmv(PhiInv_Gt, dnu)
                else:
                    dnu = np.zeros((k, 0))
                    dx = t
                if has_in:
                    ds = -r_in - _bmv(Ja, dx)
                    dlam = (-rc - lama * ds) / np.maximum(sa, sfloor)
                else:
                    ds = np.zeros((k, 0))
                    dlam = np.zeros((k, 0))
            return dx, dnu, ds, dlam

        with np.errstate(all="ignore"):
            # Predictor (affine scaling) step.
            rc_aff = sa * lama
            dx_a, dnu_a, ds_a, dlam_a = _newton(rc_aff)
            if has_in:
                ap_aff = _max_step_batch(sa, ds_a)
                ad_aff = _max_step_batch(lama, dlam_a)
                mu_aff = (
                    (sa + ap_aff[:, None] * ds_a) * (lama + ad_aff[:, None] * dlam_a)
                ).sum(axis=1) / m
                safe_mu = np.where(mu > 0.0, mu, 1.0)
                sigma = np.where(mu > 0.0, (mu_aff / safe_mu) ** 3, 0.0)
                rc = sa * lama + ds_a * dlam_a - (sigma * mu)[:, None]
                dx, dnu, ds, dlam = _newton(rc)
                ap = np.minimum(1.0, opt.tau * _max_step_batch(sa, ds))
                ad = np.minimum(1.0, opt.tau * _max_step_batch(lama, dlam))
            else:
                dx, dnu, ds, dlam = dx_a, dnu_a, ds_a, dlam_a
                ap = np.ones(k)
                ad = np.ones(k)

        for k_l, lane in enumerate(idx):
            lane = int(lane)
            if not alive[k_l]:
                continue
            st = stats[lane]
            st.substitute_time += sub_time[0] / max(int(alive.sum()), 1)
            st.substitute_flops += sub_flops_lane[0]

        upd = np.flatnonzero(alive)
        gidx = idx[upd]
        x[gidx] = xa[upd] + ap[upd, None] * dx[upd]
        nu[gidx] = nua[upd] + ad[upd, None] * dnu[upd]
        if has_in:
            s[gidx] = sa[upd] + ap[upd, None] * ds[upd]
            lam[gidx] = lama[upd] + ad[upd, None] * dlam[upd]

    for lane in range(lanes):
        st = stats[lane]
        if st.factorizations == 0:
            st.mode = "dense"
        elif st.banded_factorizations == st.factorizations:
            st.mode = "banded"
        elif st.banded_factorizations:
            st.mode = "mixed"
        else:
            st.mode = "dense"

    return BatchQPResult(
        x=x,
        nu=nu,
        lam=lam,
        slacks=s,
        converged=converged,
        iterations=iterations,
        residual=residual,
        status=status,
        budget_exhausted=budget_ex,
        gap_history=gap_history,
        stats=stats,
        batch=bstats,
        freeze=freeze if record_freeze else None,
    )
