"""Vectorized multi-instance MPC solving (``repro.batch``).

Solves a batch of same-structure MPC instances as stacked ndarrays:
batched banded Cholesky (:mod:`~repro.batch.linalg`), a batched
interior-point QP loop with continuous-batching lane freezing
(:mod:`~repro.batch.qp`), vectorized linearization
(:mod:`~repro.batch.transcription`), and a lockstep SQP driver
(:mod:`~repro.batch.ipm`) that the serve engine's ``backend="batched"``
dispatches session groups through.

Every batch kernel routes its array ops through the array-backend seam
(:mod:`~repro.batch.backend`): numpy is the always-available reference,
cupy / torch register automatically when importable and run the QP loop
device-resident in masked lockstep mode.  Select with
``REPRO_ARRAY_BACKEND=torch`` (optionally ``:float32``) or explicitly via
``BatchSolver(problem, backend="torch")``.
"""

from .backend import (
    ArrayBackend,
    CountingBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .ipm import BatchSolveReport, BatchSolver
from .linalg import BatchCholeskyFactor, robust_factor_batch
from .qp import BatchQPResult, BatchQPStats, solve_qp_batch
from .transcription import BatchLinearizer, VectorizedFunction, vectorize_compiled

__all__ = [
    "ArrayBackend",
    "BatchCholeskyFactor",
    "BatchLinearizer",
    "BatchQPResult",
    "BatchQPStats",
    "BatchSolveReport",
    "BatchSolver",
    "CountingBackend",
    "VectorizedFunction",
    "available_backends",
    "get_backend",
    "register_backend",
    "robust_factor_batch",
    "solve_qp_batch",
    "vectorize_compiled",
]
