"""Vectorized multi-instance MPC solving (``repro.batch``).

Solves a batch of same-structure MPC instances as stacked ndarrays:
batched banded Cholesky (:mod:`~repro.batch.linalg`), a batched
interior-point QP loop with continuous-batching lane freezing
(:mod:`~repro.batch.qp`), vectorized linearization
(:mod:`~repro.batch.transcription`), and a lockstep SQP driver
(:mod:`~repro.batch.ipm`) that the serve engine's ``backend="batched"``
dispatches session groups through.
"""

from .ipm import BatchSolveReport, BatchSolver
from .linalg import BatchCholeskyFactor, robust_factor_batch
from .qp import BatchQPResult, BatchQPStats, solve_qp_batch
from .transcription import BatchLinearizer, VectorizedFunction, vectorize_compiled

__all__ = [
    "BatchCholeskyFactor",
    "BatchLinearizer",
    "BatchQPResult",
    "BatchQPStats",
    "BatchSolveReport",
    "BatchSolver",
    "VectorizedFunction",
    "robust_factor_batch",
    "solve_qp_batch",
    "vectorize_compiled",
]
