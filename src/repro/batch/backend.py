"""The array-backend seam: one namespace object for every batch kernel.

Every module in :mod:`repro.batch` routes its array operations through an
:class:`ArrayBackend` instance (conventionally named ``xp``) instead of a
hard-coded ``numpy`` import.  The namespace is deliberately *small*: it is
the exact op surface of the batched factor → substitute → step-length →
active-mask-freeze loop, not a general array-API shim.  Three
implementations exist:

* ``numpy`` — always available, the default, and the reference: routing
  the hot loop through it executes the very same ``np.*`` calls as the
  pre-seam code, so results are bit-identical (the conform ``batch_qp``
  path and its golden ledger pin this).
* ``cupy`` / ``torch`` — auto-registered when the package imports.  Both
  report :attr:`ArrayBackend.is_device` ``True``, which switches
  :func:`repro.batch.qp.solve_qp_batch` into its masked lockstep mode:
  frozen lanes are excluded by on-device masks instead of host-side
  gather/scatter, so one interior-point iteration issues **zero** host
  round-trips (the TurboMPC / ReLU-QP structure: batched matmul + clamp,
  all device-resident).

Selection
---------
``get_backend()`` resolves, in order: an explicit argument (an
:class:`ArrayBackend` instance or a registered name, optionally suffixed
``:float32``), the ``REPRO_ARRAY_BACKEND`` environment variable, then
``"numpy"``.

Dtype policy
------------
Centralized here and nowhere else: ``float64`` is the default for every
backend; ``float32`` is an explicit opt-in (``dtype="float32"``, a
``:float32`` name suffix, or ``REPRO_ARRAY_DTYPE=float32``) whose looser
cross-path agreement is bounded by dedicated ``*_float32`` entries in the
conform tolerance ledger.  ``asarray``/creation functions default to the
backend's float dtype; index and mask arrays use the backend's native
int/bool dtypes.

Host-sync rules
---------------
Host↔device crossings are explicit — ``from_host`` uploads, ``to_host``
downloads, ``scalar`` extracts one Python number — and each download is
counted in :attr:`ArrayBackend.sync_count`.  Hot-loop code must never
cross implicitly (no ``float(device_array)``, no ``if device_bool:``);
the parity suite wraps a :class:`CountingBackend` around numpy to assert
the device code path stays sync-free per iteration.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as _np

from repro.errors import SolverError

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "CupyBackend",
    "TorchBackend",
    "JaxBackend",
    "CountingBackend",
    "HOST",
    "register_backend",
    "available_backends",
    "get_backend",
]

_FLOAT_DTYPES = ("float64", "float32")


class ArrayBackend:
    """Base class / numpy reference implementation of the seam.

    Subclasses override the module bindings; the op *semantics* (numpy's)
    are the contract.  Methods accepting ``dtype`` take the string tokens
    ``"float"``, ``"int"``, ``"bool"`` (resolved per backend) — never raw
    dtype objects, which would leak one backend's types into another's
    arrays.
    """

    name = "numpy"
    #: True when host transfers are costly and counted; switches the QP
    #: loop into masked lockstep mode (no per-iteration gather/scatter).
    is_device = False

    def __init__(self, dtype: str = "float64") -> None:
        if dtype not in _FLOAT_DTYPES:
            raise SolverError(
                f"unsupported dtype {dtype!r}; pick one of {_FLOAT_DTYPES}"
            )
        self.dtype_name = dtype
        self.float_dtype = getattr(_np, dtype)
        self.int_dtype = _np.int64
        self.bool_dtype = _np.bool_
        #: device→host transfers (downloads + scalar extractions)
        self.sync_count = 0
        #: host→device transfers
        self.upload_count = 0

    # -- dtype plumbing ---------------------------------------------------

    def _dtype(self, token: Optional[str]):
        if token is None or token == "float":
            return self.float_dtype
        if token == "int":
            return self.int_dtype
        if token == "bool":
            return self.bool_dtype
        raise SolverError(f"unknown dtype token {token!r}")

    # -- creation / conversion --------------------------------------------

    def asarray(self, x, dtype: Optional[str] = "float"):
        return _np.asarray(x, dtype=self._dtype(dtype))

    def zeros(self, shape, dtype: Optional[str] = "float"):
        return _np.zeros(shape, dtype=self._dtype(dtype))

    def ones(self, shape, dtype: Optional[str] = "float"):
        return _np.ones(shape, dtype=self._dtype(dtype))

    def empty(self, shape, dtype: Optional[str] = "float"):
        return _np.empty(shape, dtype=self._dtype(dtype))

    def full(self, shape, value, dtype: Optional[str] = "float"):
        return _np.full(shape, value, dtype=self._dtype(dtype))

    def eye(self, n: int):
        return _np.eye(n, dtype=self.float_dtype)

    def arange(self, *args):
        return _np.arange(*args)

    def zeros_like(self, a):
        return _np.zeros_like(a)

    def stack(self, seq: Sequence, axis: int = 0):
        return _np.stack(seq, axis=axis)

    def concatenate(self, seq: Sequence, axis: int = 0):
        return _np.concatenate(seq, axis=axis)

    def where(self, cond, a, b):
        return _np.where(cond, a, b)

    def broadcast_to(self, a, shape):
        return _np.broadcast_to(a, shape)

    def tile(self, a, reps):
        return _np.tile(a, reps)

    def repeat(self, a, n: int, axis: int):
        return _np.repeat(a, n, axis=axis)

    def copy(self, a):
        return a.copy()

    def reshape(self, a, shape):
        return a.reshape(shape)

    def astype(self, a, dtype: str):
        return a.astype(self._dtype(dtype))

    # -- elementwise math --------------------------------------------------

    def sqrt(self, a):
        return _np.sqrt(a)

    def abs(self, a):
        return _np.abs(a)

    def isfinite(self, a):
        return _np.isfinite(a)

    def maximum(self, a, b):
        return _np.maximum(a, b)

    def minimum(self, a, b):
        return _np.minimum(a, b)

    def clip(self, a, lo, hi):
        return _np.clip(a, lo, hi)

    def matmul(self, a, b):
        return _np.matmul(a, b)

    def einsum(self, spec: str, *ops):
        return _np.einsum(spec, *ops)

    def logical_not(self, a):
        return _np.logical_not(a)

    # -- reductions --------------------------------------------------------

    def sum(self, a, axis: Optional[int] = None):
        return _np.sum(a, axis=axis)

    def max(self, a, axis: Optional[int] = None):
        return _np.max(a, axis=axis)

    def min(self, a, axis: Optional[int] = None):
        return _np.min(a, axis=axis)

    def all(self, a, axis: Optional[Union[int, tuple]] = None):
        return _np.all(a, axis=axis)

    def any(self, a, axis: Optional[int] = None):
        return _np.any(a, axis=axis)

    def maximum_reduce(self, seq: Sequence):
        out = seq[0]
        for a in seq[1:]:
            out = self.maximum(out, a)
        return out

    def flatnonzero(self, a):
        return _np.flatnonzero(a)

    # -- structure ---------------------------------------------------------

    def transpose_last2(self, a):
        """Swap the trailing two axes (the batched-matrix transpose)."""
        return _np.swapaxes(a, -1, -2)

    # -- floating-point environment ---------------------------------------

    def errstate(self):
        """Context suppressing FP warnings (no-op on non-numpy backends)."""
        return _np.errstate(all="ignore")

    # -- host bridge -------------------------------------------------------

    def from_host(self, x, dtype: Optional[str] = "float"):
        """Upload a host (numpy / nested-list) value to this backend."""
        return _np.asarray(x, dtype=self._dtype(dtype))

    def to_host(self, a) -> _np.ndarray:
        """Download to a numpy array (counted on device backends)."""
        return _np.asarray(a)

    def scalar(self, a):
        """Extract one Python scalar (counted on device backends)."""
        if isinstance(a, (bool, int, float)):
            return a
        return _np.asarray(a).item()

    # -- codegen namespace -------------------------------------------------

    def ufuncs(self) -> Dict[str, object]:
        """Name→callable map for re-executing generated stage sources."""
        return {
            "sin": _np.sin,
            "cos": _np.cos,
            "tan": _np.tan,
            "asin": _np.arcsin,
            "acos": _np.arccos,
            "atan": _np.arctan,
            "exp": _np.exp,
            "log": _np.log,
            "sqrt": _np.sqrt,
            "tanh": _np.tanh,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArrayBackend {self.name}:{self.dtype_name}>"


class NumpyBackend(ArrayBackend):
    """The always-available reference backend (== the base class)."""


class CupyBackend(ArrayBackend):
    """CUDA arrays via cupy (auto-registered when importable).

    cupy mirrors the numpy namespace closely enough that only creation
    dtypes, the host bridge, and the (absent) errstate need rebinding;
    sliced/boolean indexing and einsum keep numpy semantics on-device.
    """

    name = "cupy"
    is_device = True

    def __init__(self, dtype: str = "float64") -> None:
        super().__init__(dtype)
        import cupy  # deferred: only reached when registered

        self._cp = cupy
        self.float_dtype = getattr(cupy, dtype)
        self.int_dtype = cupy.int64
        self.bool_dtype = cupy.bool_

    def asarray(self, x, dtype: Optional[str] = "float"):
        return self._cp.asarray(x, dtype=self._dtype(dtype))

    def zeros(self, shape, dtype: Optional[str] = "float"):
        return self._cp.zeros(shape, dtype=self._dtype(dtype))

    def ones(self, shape, dtype: Optional[str] = "float"):
        return self._cp.ones(shape, dtype=self._dtype(dtype))

    def empty(self, shape, dtype: Optional[str] = "float"):
        return self._cp.empty(shape, dtype=self._dtype(dtype))

    def full(self, shape, value, dtype: Optional[str] = "float"):
        return self._cp.full(shape, value, dtype=self._dtype(dtype))

    def eye(self, n: int):
        return self._cp.eye(n, dtype=self.float_dtype)

    def arange(self, *args):
        return self._cp.arange(*args)

    def zeros_like(self, a):
        return self._cp.zeros_like(a)

    def stack(self, seq, axis: int = 0):
        return self._cp.stack(seq, axis=axis)

    def concatenate(self, seq, axis: int = 0):
        return self._cp.concatenate(seq, axis=axis)

    def where(self, cond, a, b):
        return self._cp.where(cond, a, b)

    def broadcast_to(self, a, shape):
        return self._cp.broadcast_to(a, shape)

    def tile(self, a, reps):
        return self._cp.tile(a, reps)

    def repeat(self, a, n: int, axis: int):
        return self._cp.repeat(a, n, axis=axis)

    def sqrt(self, a):
        return self._cp.sqrt(a)

    def abs(self, a):
        return self._cp.abs(a)

    def isfinite(self, a):
        return self._cp.isfinite(a)

    def maximum(self, a, b):
        return self._cp.maximum(a, b)

    def minimum(self, a, b):
        return self._cp.minimum(a, b)

    def clip(self, a, lo, hi):
        return self._cp.clip(a, lo, hi)

    def matmul(self, a, b):
        return self._cp.matmul(a, b)

    def einsum(self, spec: str, *ops):
        return self._cp.einsum(spec, *ops)

    def logical_not(self, a):
        return self._cp.logical_not(a)

    def sum(self, a, axis=None):
        return self._cp.sum(a, axis=axis)

    def max(self, a, axis=None):
        return self._cp.max(a, axis=axis)

    def min(self, a, axis=None):
        return self._cp.min(a, axis=axis)

    def all(self, a, axis=None):
        return self._cp.all(a, axis=axis)

    def any(self, a, axis=None):
        return self._cp.any(a, axis=axis)

    def flatnonzero(self, a):
        return self._cp.flatnonzero(a)

    def transpose_last2(self, a):
        return self._cp.swapaxes(a, -1, -2)

    def errstate(self):
        return nullcontext()

    def from_host(self, x, dtype: Optional[str] = "float"):
        self.upload_count += 1
        return self._cp.asarray(_np.asarray(x), dtype=self._dtype(dtype))

    def to_host(self, a) -> _np.ndarray:
        self.sync_count += 1
        return self._cp.asnumpy(a)

    def scalar(self, a):
        if isinstance(a, (bool, int, float)):
            return a
        self.sync_count += 1
        return a.item()

    def ufuncs(self) -> Dict[str, object]:
        cp = self._cp
        return {
            "sin": cp.sin,
            "cos": cp.cos,
            "tan": cp.tan,
            "asin": cp.arcsin,
            "acos": cp.arccos,
            "atan": cp.arctan,
            "exp": cp.exp,
            "log": cp.log,
            "sqrt": cp.sqrt,
            "tanh": cp.tanh,
        }


class TorchBackend(ArrayBackend):
    """torch tensors (auto-registered when importable; CUDA when present).

    The shim translates the numpy-isms the hot loop relies on: ``axis`` →
    ``dim``, scalar broadcasting in ``maximum``/``where``, ``swapaxes`` →
    ``transpose(-1, -2)``.  Device selection: ``REPRO_TORCH_DEVICE`` when
    set, else ``cuda`` when available, else ``cpu`` (the CI parity leg).
    """

    name = "torch"
    is_device = True

    def __init__(self, dtype: str = "float64") -> None:
        super().__init__(dtype)
        import torch  # deferred: only reached when registered

        self._torch = torch
        self.float_dtype = torch.float64 if dtype == "float64" else torch.float32
        self.int_dtype = torch.int64
        self.bool_dtype = torch.bool
        dev = os.environ.get("REPRO_TORCH_DEVICE")
        if dev is None:
            dev = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = torch.device(dev)

    # -- helpers -----------------------------------------------------------

    def _tensor(self, v, dtype=None):
        """Coerce a python scalar / numpy value to an on-device tensor."""
        t = self._torch
        if t.is_tensor(v):
            return v
        return t.as_tensor(
            v, dtype=dtype or self.float_dtype, device=self.device
        )

    # -- creation / conversion --------------------------------------------

    def asarray(self, x, dtype: Optional[str] = "float"):
        return self._torch.as_tensor(
            x, dtype=self._dtype(dtype), device=self.device
        )

    def zeros(self, shape, dtype: Optional[str] = "float"):
        return self._torch.zeros(
            shape, dtype=self._dtype(dtype), device=self.device
        )

    def ones(self, shape, dtype: Optional[str] = "float"):
        return self._torch.ones(
            shape, dtype=self._dtype(dtype), device=self.device
        )

    def empty(self, shape, dtype: Optional[str] = "float"):
        return self._torch.empty(
            shape, dtype=self._dtype(dtype), device=self.device
        )

    def full(self, shape, value, dtype: Optional[str] = "float"):
        return self._torch.full(
            shape, value, dtype=self._dtype(dtype), device=self.device
        )

    def eye(self, n: int):
        return self._torch.eye(n, dtype=self.float_dtype, device=self.device)

    def arange(self, *args):
        return self._torch.arange(*args, device=self.device)

    def zeros_like(self, a):
        return self._torch.zeros_like(a)

    def stack(self, seq, axis: int = 0):
        return self._torch.stack([self._tensor(a) for a in seq], dim=axis)

    def concatenate(self, seq, axis: int = 0):
        return self._torch.cat(list(seq), dim=axis)

    def where(self, cond, a, b):
        t = self._torch
        if t.is_tensor(a) or t.is_tensor(b):
            ref = a if t.is_tensor(a) else b
            a = self._tensor(a, dtype=ref.dtype)
            b = self._tensor(b, dtype=ref.dtype)
        else:
            a, b = self._tensor(a), self._tensor(b)
        return t.where(cond, a, b)

    def broadcast_to(self, a, shape):
        return self._torch.broadcast_to(self._tensor(a), shape)

    def tile(self, a, reps):
        return self._torch.tile(self._tensor(a), tuple(_np.atleast_1d(reps)))

    def repeat(self, a, n: int, axis: int):
        return self._torch.repeat_interleave(a, n, dim=axis)

    def copy(self, a):
        return a.clone()

    def reshape(self, a, shape):
        return a.reshape(tuple(shape))

    def astype(self, a, dtype: str):
        return a.to(self._dtype(dtype))

    # -- elementwise math --------------------------------------------------

    def sqrt(self, a):
        return self._torch.sqrt(self._tensor(a))

    def abs(self, a):
        return self._torch.abs(a)

    def isfinite(self, a):
        return self._torch.isfinite(a)

    def maximum(self, a, b):
        t = self._torch
        ref = a if t.is_tensor(a) else b
        return t.maximum(self._tensor(a, dtype=ref.dtype), self._tensor(b, dtype=ref.dtype))

    def minimum(self, a, b):
        t = self._torch
        ref = a if t.is_tensor(a) else b
        return t.minimum(self._tensor(a, dtype=ref.dtype), self._tensor(b, dtype=ref.dtype))

    def clip(self, a, lo, hi):
        return self._torch.clamp(a, min=lo, max=hi)

    def matmul(self, a, b):
        return self._torch.matmul(a, b)

    def einsum(self, spec: str, *ops):
        return self._torch.einsum(spec, *ops)

    def logical_not(self, a):
        return self._torch.logical_not(a)

    # -- reductions --------------------------------------------------------

    def sum(self, a, axis=None):
        a = self._tensor(a)
        return self._torch.sum(a) if axis is None else self._torch.sum(a, dim=axis)

    def max(self, a, axis=None):
        a = self._tensor(a)
        return self._torch.max(a) if axis is None else self._torch.amax(a, dim=axis)

    def min(self, a, axis=None):
        a = self._tensor(a)
        return self._torch.min(a) if axis is None else self._torch.amin(a, dim=axis)

    def all(self, a, axis=None):
        if axis is None:
            return self._torch.all(a)
        if isinstance(axis, tuple):
            out = a
            for ax in sorted(axis, reverse=True):
                out = self._torch.all(out, dim=ax)
            return out
        return self._torch.all(a, dim=axis)

    def any(self, a, axis=None):
        return self._torch.any(a) if axis is None else self._torch.any(a, dim=axis)

    def flatnonzero(self, a):
        return self._torch.nonzero(a, as_tuple=False).reshape(-1)

    def transpose_last2(self, a):
        return a.transpose(-1, -2)

    def errstate(self):
        return nullcontext()

    # -- host bridge -------------------------------------------------------

    def from_host(self, x, dtype: Optional[str] = "float"):
        self.upload_count += 1
        return self._torch.as_tensor(
            _np.asarray(x), dtype=self._dtype(dtype), device=self.device
        )

    def to_host(self, a) -> _np.ndarray:
        self.sync_count += 1
        return a.detach().cpu().numpy()

    def scalar(self, a):
        if isinstance(a, (bool, int, float)):
            return a
        self.sync_count += 1
        return a.item()

    def ufuncs(self) -> Dict[str, object]:
        t = self._torch
        return {
            "sin": t.sin,
            "cos": t.cos,
            "tan": t.tan,
            "asin": t.asin,
            "acos": t.acos,
            "atan": t.atan,
            "exp": t.exp,
            "log": t.log,
            "sqrt": t.sqrt,
            "tanh": t.tanh,
        }


class JaxBackend(ArrayBackend):
    """jax.numpy arrays (auto-registered when importable).

    jax mirrors the numpy namespace, so only creation dtypes, the host
    bridge, and a handful of structural ops need rebinding.  Two caveats
    shape the integration:

    * float64 requires the ``jax_enable_x64`` flag, flipped here on first
      construction of a float64 backend (jax's default is float32);
    * jax arrays are immutable, so only seam-pure consumers run on this
      backend — the masked-lockstep QP/ADMM loops qualify, but
      :class:`~repro.batch.ipm.BatchSolver`'s host-side scatter updates do
      not; it raises through jax's own ``TypeError`` if attempted.
    """

    name = "jax"
    is_device = True

    def __init__(self, dtype: str = "float64") -> None:
        super().__init__(dtype)
        import jax  # deferred: only reached when registered
        import jax.numpy as jnp

        if dtype == "float64":
            jax.config.update("jax_enable_x64", True)
        self._jax = jax
        self._jnp = jnp
        self.float_dtype = getattr(jnp, dtype)
        self.int_dtype = jnp.int64 if dtype == "float64" else jnp.int32
        self.bool_dtype = jnp.bool_

    def asarray(self, x, dtype: Optional[str] = "float"):
        return self._jnp.asarray(x, dtype=self._dtype(dtype))

    def zeros(self, shape, dtype: Optional[str] = "float"):
        return self._jnp.zeros(shape, dtype=self._dtype(dtype))

    def ones(self, shape, dtype: Optional[str] = "float"):
        return self._jnp.ones(shape, dtype=self._dtype(dtype))

    def empty(self, shape, dtype: Optional[str] = "float"):
        # jax has no uninitialized arrays; zeros is the conservative twin.
        return self._jnp.zeros(shape, dtype=self._dtype(dtype))

    def full(self, shape, value, dtype: Optional[str] = "float"):
        return self._jnp.full(shape, value, dtype=self._dtype(dtype))

    def eye(self, n: int):
        return self._jnp.eye(n, dtype=self.float_dtype)

    def arange(self, *args):
        return self._jnp.arange(*args)

    def zeros_like(self, a):
        return self._jnp.zeros_like(a)

    def stack(self, seq, axis: int = 0):
        return self._jnp.stack(seq, axis=axis)

    def concatenate(self, seq, axis: int = 0):
        return self._jnp.concatenate(seq, axis=axis)

    def where(self, cond, a, b):
        return self._jnp.where(cond, a, b)

    def broadcast_to(self, a, shape):
        return self._jnp.broadcast_to(a, shape)

    def tile(self, a, reps):
        return self._jnp.tile(a, reps)

    def repeat(self, a, n: int, axis: int):
        return self._jnp.repeat(a, n, axis=axis)

    def copy(self, a):
        return self._jnp.array(a, copy=True)

    def reshape(self, a, shape):
        return self._jnp.reshape(a, shape)

    def astype(self, a, dtype: str):
        return a.astype(self._dtype(dtype))

    def sqrt(self, a):
        return self._jnp.sqrt(a)

    def abs(self, a):
        return self._jnp.abs(a)

    def isfinite(self, a):
        return self._jnp.isfinite(a)

    def maximum(self, a, b):
        return self._jnp.maximum(a, b)

    def minimum(self, a, b):
        return self._jnp.minimum(a, b)

    def clip(self, a, lo, hi):
        return self._jnp.clip(a, lo, hi)

    def matmul(self, a, b):
        return self._jnp.matmul(a, b)

    def einsum(self, spec: str, *ops):
        return self._jnp.einsum(spec, *ops)

    def logical_not(self, a):
        return self._jnp.logical_not(a)

    def sum(self, a, axis=None):
        return self._jnp.sum(a, axis=axis)

    def max(self, a, axis=None):
        return self._jnp.max(a, axis=axis)

    def min(self, a, axis=None):
        return self._jnp.min(a, axis=axis)

    def all(self, a, axis=None):
        return self._jnp.all(a, axis=axis)

    def any(self, a, axis=None):
        return self._jnp.any(a, axis=axis)

    def flatnonzero(self, a):
        return self._jnp.flatnonzero(a)

    def transpose_last2(self, a):
        return self._jnp.swapaxes(a, -1, -2)

    def errstate(self):
        return nullcontext()

    def from_host(self, x, dtype: Optional[str] = "float"):
        self.upload_count += 1
        return self._jnp.asarray(_np.asarray(x), dtype=self._dtype(dtype))

    def to_host(self, a) -> _np.ndarray:
        self.sync_count += 1
        return _np.asarray(a)

    def scalar(self, a):
        if isinstance(a, (bool, int, float)):
            return a
        self.sync_count += 1
        return a.item()

    def ufuncs(self) -> Dict[str, object]:
        jnp = self._jnp
        return {
            "sin": jnp.sin,
            "cos": jnp.cos,
            "tan": jnp.tan,
            "asin": jnp.arcsin,
            "acos": jnp.arccos,
            "atan": jnp.arctan,
            "exp": jnp.exp,
            "log": jnp.log,
            "sqrt": jnp.sqrt,
            "tanh": jnp.tanh,
        }


class CountingBackend(ArrayBackend):
    """A numpy-backed *pretend device*: every op delegates to an inner
    backend, but ``is_device`` is True and every host crossing is counted.

    This is the instrument behind the no-per-iteration-host-sync
    acceptance gate: the parity suite runs the masked lockstep QP loop
    through a ``CountingBackend`` and asserts the sync counter does not
    grow with the iteration count — without needing a GPU (or torch) in
    the test environment.
    """

    is_device = True

    def __init__(self, inner: Optional[ArrayBackend] = None) -> None:
        inner = inner or NumpyBackend()
        super().__init__(inner.dtype_name)
        self._inner = inner
        self.name = f"counting[{inner.name}]"
        self.float_dtype = inner.float_dtype
        self.int_dtype = inner.int_dtype
        self.bool_dtype = inner.bool_dtype

    def __getattr__(self, attr):
        # Fallback for ops not overridden below: delegate to the inner
        # backend (only reached for names not defined on the base class).
        return getattr(self._inner, attr)

    def from_host(self, x, dtype: Optional[str] = "float"):
        self.upload_count += 1
        return self._inner.from_host(x, dtype)

    def to_host(self, a) -> _np.ndarray:
        self.sync_count += 1
        return self._inner.to_host(a)

    def scalar(self, a):
        if isinstance(a, (bool, int, float)):
            return a
        self.sync_count += 1
        return self._inner.scalar(a)

    def errstate(self):
        # Warnings policy belongs to the wrapped backend: the counting
        # wrapper only pretends to be a device for host-bridge accounting,
        # and its numpy inner would otherwise spew warnings from frozen
        # lanes' masked-away garbage arithmetic.
        return self._inner.errstate()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_FACTORIES: Dict[str, Callable[[str], ArrayBackend]] = {}
_INSTANCES: Dict[tuple, ArrayBackend] = {}


def register_backend(name: str, factory: Callable[[str], ArrayBackend]) -> None:
    """Register ``factory(dtype) -> ArrayBackend`` under ``name``."""
    _FACTORIES[name] = factory


def available_backends() -> List[str]:
    """Registered backend names, numpy always first."""
    return list(_FACTORIES)


def _importable(module: str) -> bool:
    import importlib.util

    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


register_backend("numpy", NumpyBackend)
if _importable("cupy"):  # pragma: no cover - GPU environments only
    register_backend("cupy", CupyBackend)
if _importable("torch"):
    register_backend("torch", TorchBackend)
if _importable("jax"):  # pragma: no cover - jax environments only
    register_backend("jax", JaxBackend)


def get_backend(
    spec: Union[str, ArrayBackend, None] = None,
    dtype: Optional[str] = None,
) -> ArrayBackend:
    """Resolve a backend: instance passthrough, name, env, or numpy.

    ``spec`` may be an :class:`ArrayBackend` (returned as-is), a
    registered name (``"torch"``), or a name with a dtype suffix
    (``"torch:float32"``).  ``None`` consults ``REPRO_ARRAY_BACKEND``.
    ``dtype`` (or ``REPRO_ARRAY_DTYPE``) selects the float width; an
    explicit suffix on the name wins.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    name = spec if spec is not None else os.environ.get("REPRO_ARRAY_BACKEND")
    name = name or "numpy"
    if ":" in name:
        name, dtype = name.split(":", 1)
    if dtype is None:
        dtype = os.environ.get("REPRO_ARRAY_DTYPE", "float64")
    if name not in _FACTORIES:
        raise SolverError(
            f"unknown array backend {name!r}; registered: "
            f"{available_backends()} (cupy/torch register only when "
            "importable)"
        )
    key = (name, dtype)
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[name](dtype)
    return _INSTANCES[key]


#: The always-on host (numpy, float64) backend: the boundary converter for
#: code that must hand numpy arrays to the scalar/serve layers.
HOST = get_backend("numpy")
