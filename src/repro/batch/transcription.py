"""Vectorized linearization: evaluate compiled stage functions batch-wide.

The scalar :class:`~repro.mpc.transcription.TranscribedProblem` evaluates
its generated stage functions one knot at a time with Python floats.  For
a batch of ``B`` instances of the *same* problem that is ``B x N`` Python
calls per linearization — the dominant cost of a batched SQP iteration.

:class:`VectorizedFunction` removes it: every
:class:`~repro.symbolic.compile.CompiledFunction` carries its generated
source, and the generated body is pure arithmetic plus a small closed set
of ``math`` calls.  Re-executing that source against an array-backend
namespace (``sin -> xp.sin``, ``asin -> xp.arcsin``, ... — see
:meth:`repro.batch.backend.ArrayBackend.ufuncs`) yields a callable that
accepts ``(B, K)``-shaped columns and evaluates all ``B x K`` stage
points in one pass — the "vectorized fast path where the
``CompiledFunction`` supports it" of the batching subsystem, on whichever
backend the caller selected (numpy, cupy, torch).  Any function whose
source fails to vectorize (or a future op with no ufunc twin) drops the
whole linearizer to a per-lane loop fallback over the scalar problem
methods, which is slower but bit-equal by construction (the fallback
round-trips through host arrays on device backends).

:class:`BatchLinearizer` exposes the batched twins of every evaluation
method the SQP layer needs (`objective`, gradients, Gauss-Newton Hessian,
constraint stacks and Jacobians, cold-start guesses), with identical
stacking order to the scalar path so the stage-ordered band structure and
permutations of PR 1 carry over unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from repro.errors import TranscriptionError, VectorizationError
from repro.mpc.transcription import TranscribedProblem
from repro.symbolic.compile import _INFIX, CompiledFunction

from .backend import ArrayBackend, get_backend

__all__ = ["VectorizedFunction", "vectorize_compiled", "BatchLinearizer"]

RefLike = Optional[object]

# fused function names emitted by repro.codegen for one problem
_RUN_FULL = "fused_run_full"
_RUN_VALS = "fused_run_vals"
_TERM_FULL = "fused_term_full"
_TERM_VALS = "fused_term_vals"


class VectorizedFunction:
    """A compiled stage function re-bound to a backend's ufunc namespace.

    Calling with columns of shape ``S`` (one array per input variable)
    returns an ``S + (n_outputs,)`` array.  Outputs that the generated
    source returns as bare constants or pass-through inputs are broadcast
    to the batch shape.  Floating-point warnings are suppressed — NaN/inf
    propagate to the solver's divergence guards exactly as on the scalar
    path.
    """

    def __init__(self, fn: CompiledFunction, backend=None) -> None:
        self.scalar = fn
        self.xp = get_backend(backend)
        self.n_outputs = fn.n_outputs
        name = fn.source.split("(", 1)[0].split()[-1]
        namespace: Dict[str, object] = dict(self.xp.ufuncs())
        # Surface unsupported primitives here, at bind time, instead of as
        # a NameError on the first batched call: the linearizer's loop
        # fallback keys on exactly this error type.
        missing = sorted(
            op
            for op in fn.op_counts
            if op not in _INFIX and op != "neg" and op not in namespace
        )
        if missing:
            raise VectorizationError(
                f"{name}: no ufunc twin on backend {self.xp.name!r} for "
                f"{missing}"
            )
        try:
            exec(compile(fn.source, f"<vectorized:{name}>", "exec"), namespace)
            self._func = namespace[name]
        except (SyntaxError, KeyError) as exc:
            raise VectorizationError(
                f"{name}: generated source failed to rebind: {exc}"
            ) from exc

    def __call__(self, cols: Sequence) -> object:
        xp = self.xp
        shape = tuple(cols[0].shape) if cols else ()
        with xp.errstate():
            outs = self._func(*cols)
        stacked = [xp.broadcast_to(xp.asarray(o), shape) for o in outs]
        return (
            xp.stack(stacked, axis=-1)
            if stacked
            else xp.zeros(shape + (0,))
        )


def vectorize_compiled(fn: CompiledFunction, backend=None) -> VectorizedFunction:
    """Build the backend-vectorized twin of a compiled stage function."""
    return VectorizedFunction(fn, backend)


class BatchLinearizer:
    """Batched evaluation of one :class:`TranscribedProblem` over ``B`` lanes.

    All methods accept stacked arguments with a leading batch axis
    (``Z: (B, nz)``, ``x_init: (B, nx)``) and return the batched stack of
    what the scalar method returns per lane, in the same row order, as
    arrays of the selected backend.  Requires ``move_block == 1`` (the
    serve path always transcribes with per-step inputs; blocked knots
    would break the contiguous state/input reshape fast paths).
    """

    def __init__(self, problem: TranscribedProblem, backend=None) -> None:
        if problem.move_block != 1:
            raise TranscriptionError(
                "BatchLinearizer requires move_block == 1, got "
                f"{problem.move_block}"
            )
        self.problem = problem
        self.xp = get_backend(backend)
        self.N = problem.N
        self.nx = problem.nx
        self.nu = problem.nu
        self.nz = problem.nz
        self.nref = problem.nref
        self._base = (self.N + 1) * self.nx
        self.vectorized = True
        #: why the loop fallback is active ("" while vectorized)
        self.fallback_reason = ""
        try:
            names = (
                "_F", "_A", "_B",
                "_L", "_L_grad", "_P_run_jac",
                "_Phi", "_Phi_grad", "_P_term_jac",
                "_h_state", "_h_state_jac",
                "_h_input", "_h_input_jac",
                "_h_term", "_h_term_jac",
                "_g_state", "_g_state_jac",
                "_g_input", "_g_input_jac",
                "_g_term", "_g_term_jac",
            )
            self._v = {
                nm: vectorize_compiled(getattr(problem, nm), self.xp)
                for nm in names
            }
        except VectorizationError as exc:
            # Only a genuine can't-vectorize condition drops to the loop
            # fallback; any other exception is a bug and must propagate.
            self._v = {}
            self.vectorized = False
            self.fallback_reason = str(exc)

        # Fused codegen kernel: when the problem's codegen seam decided a
        # fused tier, bind its module to this backend and serve whole-
        # horizon group stacks from one generated call per stage family.
        self._fused = None
        self._fused_pts: "OrderedDict[tuple, dict]" = OrderedDict()
        self.codegen_stats = None
        if self.vectorized:
            try:
                kernels = problem.codegen_kernels()
                if kernels is not None and kernels.active:
                    self._fused = kernels.backend_kernel(self.xp)
                    self.codegen_stats = kernels.stats
            except Exception:
                self._fused = None

    # -- shared plumbing ---------------------------------------------------

    def _split(self, Z):
        xp = self.xp
        Z = xp.asarray(Z)
        lanes = int(Z.shape[0])
        xs = xp.reshape(Z[:, : self._base], (lanes, self.N + 1, self.nx))
        us = xp.reshape(Z[:, self._base :], (lanes, self.N, self.nu))
        return xs, us

    def normalize_ref(self, ref: RefLike, lanes: int):
        """Normalize per-lane references to one ``(B, N+1, nref)`` stack.

        Accepts ``None`` (only for reference-free tasks), one shared array
        of shape ``(nref,)`` or ``(N+1, nref)``, or a per-lane sequence of
        such arrays.
        """
        xp = self.xp
        if self.nref == 0:
            return None
        if (
            hasattr(ref, "ndim")
            and ref.ndim == 3
            and tuple(ref.shape) == (lanes, self.N + 1, self.nref)
        ):
            return xp.asarray(ref)  # already a normalized stack

        def one(r):
            if r is None:
                raise TranscriptionError(
                    f"task {self.problem.task.name!r} requires reference "
                    f"values {self.problem.task.references}"
                )
            r = xp.asarray(r)
            if tuple(r.shape) == (self.nref,):
                return xp.tile(r, (self.N + 1, 1))
            if tuple(r.shape) == (self.N + 1, self.nref):
                return r
            raise TranscriptionError(
                f"reference values must have shape ({self.nref},) or "
                f"({self.N + 1}, {self.nref}), got {tuple(r.shape)}"
            )

        if ref is None or hasattr(ref, "ndim"):
            return xp.tile(one(ref), (lanes, 1, 1))
        rows = [one(r) for r in ref]
        if len(rows) != lanes:
            raise TranscriptionError(
                f"got {len(rows)} per-lane references for {lanes} lanes"
            )
        return xp.stack(rows)

    def _ref_lane(self, R, lane: int):
        return None if R is None else self.xp.to_host(R[lane])

    def _loop_stack(self, rows: List):
        """Stack per-lane host results back onto the backend."""
        xp = self.xp
        return xp.stack([xp.asarray(r) for r in rows])

    def _run_cols(self, xs, us, R, ks) -> List:
        cols = [xs[:, ks, i] for i in range(self.nx)]
        cols += [us[:, ks, j] for j in range(self.nu)]
        if self.nref:
            cols += [R[:, ks, r] for r in range(self.nref)]
        return cols

    def _dyn_cols(self, xs, us, ks) -> List:
        cols = [xs[:, ks, i] for i in range(self.nx)]
        cols += [us[:, ks, j] for j in range(self.nu)]
        return cols

    def _term_cols(self, xs, R) -> List:
        cols = [xs[:, self.N, i] for i in range(self.nx)]
        if self.nref:
            cols += [R[:, self.N, r] for r in range(self.nref)]
        return cols

    def _state_sl(self, k: int) -> slice:
        return slice(k * self.nx, (k + 1) * self.nx)

    def _input_sl(self, k: int) -> slice:
        return slice(self._base + k * self.nu, self._base + (k + 1) * self.nu)

    def _ks(self, lo: int, hi: int):
        return self.xp.arange(lo, hi)

    # -- fused-kernel plumbing ---------------------------------------------

    def _fused_point(self, Z, ref):
        """Per-``(Z, ref)`` identity cache of fused whole-horizon stacks.

        The batch SQP loop passes the *same* array objects to all six
        linearization methods of one iteration, so object identity is a
        sound cache key; the anchor tuple holds strong references so ids
        cannot be recycled while an entry lives.  Callers that mutate ``Z``
        in place between calls would defeat this — the solver layers never
        do (every step builds new arrays).
        """
        if self._fused is None:
            return None
        key = (id(Z), id(ref))
        ent = self._fused_pts.get(key)
        if ent is None:
            ent = {"_anchor": (Z, ref)}
            self._fused_pts[key] = ent
            while len(self._fused_pts) > 2:
                self._fused_pts.popitem(last=False)
        else:
            self._fused_pts.move_to_end(key)
        return ent

    def _fused_groups(self, ent, fn_name, cols_fn):
        # a *_full evaluation is a superset of the matching *_vals one
        full_of = {_RUN_VALS: _RUN_FULL, _TERM_VALS: _TERM_FULL}
        for nm in (full_of.get(fn_name, fn_name), fn_name):
            got = ent.get(nm)
            if got is not None:
                if self.codegen_stats is not None:
                    self.codegen_stats.cache_hits += 1
                return got
        if self.codegen_stats is not None:
            self.codegen_stats.cache_misses += 1
        ent[fn_name] = self._fused.call(fn_name, cols_fn())
        return ent[fn_name]

    def _fused_run(self, ent, xs, us, R, full: bool):
        ks = self._ks(0, self.N)
        return self._fused_groups(
            ent,
            _RUN_FULL if full else _RUN_VALS,
            lambda: self._run_cols(xs, us, R, ks),
        )

    def _fused_term(self, ent, xs, R, full: bool):
        return self._fused_groups(
            ent,
            _TERM_FULL if full else _TERM_VALS,
            lambda: self._term_cols(xs, R),
        )

    # -- objective ---------------------------------------------------------

    def objective(self, Z, ref: RefLike = None):
        xp = self.xp
        Z = xp.asarray(Z)
        lanes = int(Z.shape[0])
        R = self.normalize_ref(ref, lanes)
        if not self.vectorized:
            Zh = xp.to_host(Z)
            return xp.asarray(
                [
                    self.problem.objective(Zh[i], self._ref_lane(R, i))
                    for i in range(lanes)
                ]
            )
        xs, us = self._split(Z)
        ent = self._fused_point(Z, ref)
        if ent is not None:
            run = self._fused_run(ent, xs, us, R, full=False)["cost_run"][..., 0]
            term = self._fused_term(ent, xs, R, full=False)["cost_term"][..., 0]
        else:
            ks = self._ks(0, self.N)
            run = self._v["_L"](self._run_cols(xs, us, R, ks))[..., 0]
            term = self._v["_Phi"](self._term_cols(xs, R))[..., 0]
        return xp.sum(run, axis=1) + term

    def objective_gradient(self, Z, ref: RefLike = None):
        xp = self.xp
        Z = xp.asarray(Z)
        lanes = int(Z.shape[0])
        R = self.normalize_ref(ref, lanes)
        if not self.vectorized:
            Zh = xp.to_host(Z)
            return self._loop_stack(
                [
                    self.problem.objective_gradient(Zh[i], self._ref_lane(R, i))
                    for i in range(lanes)
                ]
            )
        xs, us = self._split(Z)
        ent = self._fused_point(Z, ref)
        if ent is not None:
            gs = self._fused_run(ent, xs, us, R, full=True)["cost_run_grad"]
            tg = self._fused_term(ent, xs, R, full=True)["cost_term_grad"]
        else:
            ks = self._ks(0, self.N)
            gs = self._v["_L_grad"](self._run_cols(xs, us, R, ks))  # (B, N, nxu)
            tg = self._v["_Phi_grad"](self._term_cols(xs, R))
        grad = xp.zeros((lanes, self.nz))
        grad[:, : self.N * self.nx] += xp.reshape(
            gs[:, :, : self.nx], (lanes, -1)
        )
        grad[:, self._base :] += xp.reshape(gs[:, :, self.nx :], (lanes, -1))
        grad[:, self.N * self.nx : self._base] += tg
        return grad

    def objective_gauss_newton(self, Z, ref: RefLike = None):
        xp = self.xp
        Z = xp.asarray(Z)
        lanes = int(Z.shape[0])
        R = self.normalize_ref(ref, lanes)
        if not self.vectorized:
            Zh = xp.to_host(Z)
            return self._loop_stack(
                [
                    self.problem.objective_gauss_newton(
                        Zh[i], self._ref_lane(R, i)
                    )
                    for i in range(lanes)
                ]
            )
        xs, us = self._split(Z)
        ent = self._fused_point(Z, ref)
        nxu = self.nx + self.nu
        H = xp.zeros((lanes, self.nz, self.nz))
        n_run = len(self.problem.w_run)
        n_term = len(self.problem.w_term)
        if n_run:
            if ent is not None:
                Jp = self._fused_run(ent, xs, us, R, full=True)["pen_run_jac"]
            else:
                ks = self._ks(0, self.N)
                Jp = self._v["_P_run_jac"](self._run_cols(xs, us, R, ks))
            Jp = xp.reshape(Jp, (lanes, self.N, n_run, nxu))
            blk = 2.0 * xp.einsum(
                "bkrp,r,bkrq->bkpq", Jp, xp.asarray(self.problem.w_run), Jp
            )
            for k in range(self.N):
                sx, su = self._state_sl(k), self._input_sl(k)
                H[:, sx, sx] += blk[:, k, : self.nx, : self.nx]
                H[:, sx, su] += blk[:, k, : self.nx, self.nx :]
                H[:, su, sx] += blk[:, k, self.nx :, : self.nx]
                H[:, su, su] += blk[:, k, self.nx :, self.nx :]
        if n_term:
            if ent is not None:
                Jp = self._fused_term(ent, xs, R, full=True)["pen_term_jac"]
            else:
                Jp = self._v["_P_term_jac"](self._term_cols(xs, R))
            Jp = xp.reshape(Jp, (lanes, n_term, self.nx))
            sN = self._state_sl(self.N)
            H[:, sN, sN] += 2.0 * xp.einsum(
                "brp,r,brq->bpq", Jp, xp.asarray(self.problem.w_term), Jp
            )
        return H

    # -- constraints -------------------------------------------------------

    def equality_constraints(self, Z, x_init, ref: RefLike = None):
        xp = self.xp
        Z = xp.asarray(Z)
        X0 = xp.asarray(x_init)
        lanes = int(Z.shape[0])
        R = self.normalize_ref(ref, lanes)
        if not self.vectorized:
            Zh, X0h = xp.to_host(Z), xp.to_host(X0)
            return self._loop_stack(
                [
                    self.problem.equality_constraints(
                        Zh[i], X0h[i], self._ref_lane(R, i)
                    )
                    for i in range(lanes)
                ]
            )
        p = self.problem
        xs, us = self._split(Z)
        ent = self._fused_point(Z, ref)
        parts = [xs[:, 0] - X0]
        if ent is not None:
            g = self._fused_run(ent, xs, us, R, full=False)
            F = g["dyn_step"]  # (B, N, nx)
            parts.append(xp.reshape(xs[:, 1:] - F, (lanes, -1)))
            if p._eq_state_rows and self.N > 1:
                parts.append(xp.reshape(g["eq_state"][:, 1:], (lanes, -1)))
            if p._eq_input_rows:
                parts.append(xp.reshape(g["eq_input"], (lanes, -1)))
            if p._eq_term_rows:
                parts.append(
                    self._fused_term(ent, xs, R, full=False)["eq_term"]
                )
            return xp.concatenate(parts, axis=1)
        ks = self._ks(0, self.N)
        F = self._v["_F"](self._dyn_cols(xs, us, ks))  # (B, N, nx)
        parts.append(xp.reshape(xs[:, 1:] - F, (lanes, -1)))
        if p._eq_state_rows and self.N > 1:
            ks_in = self._ks(1, self.N)
            vals = self._v["_g_state"](self._run_cols(xs, us, R, ks_in))
            parts.append(xp.reshape(vals, (lanes, -1)))
        if p._eq_input_rows:
            vals = self._v["_g_input"](self._run_cols(xs, us, R, ks))
            parts.append(xp.reshape(vals, (lanes, -1)))
        if p._eq_term_rows:
            parts.append(self._v["_g_term"](self._term_cols(xs, R)))
        return xp.concatenate(parts, axis=1)

    def equality_jacobian(self, Z, ref: RefLike = None):
        xp = self.xp
        Z = xp.asarray(Z)
        lanes = int(Z.shape[0])
        R = self.normalize_ref(ref, lanes)
        if not self.vectorized:
            Zh = xp.to_host(Z)
            return self._loop_stack(
                [
                    self.problem.equality_jacobian(Zh[i], self._ref_lane(R, i))
                    for i in range(lanes)
                ]
            )
        p = self.problem
        xs, us = self._split(Z)
        ent = self._fused_point(Z, ref)
        fr = (
            self._fused_run(ent, xs, us, R, full=True)
            if ent is not None
            else None
        )
        nx, nu, nxu = self.nx, self.nu, self.nx + self.nu
        ks = self._ks(0, self.N)
        G = xp.zeros((lanes, p.n_eq, self.nz))
        G[:, :nx, :nx] = xp.eye(nx)
        if fr is not None:
            A = xp.reshape(fr["dyn_jac_x"], (lanes, self.N, nx, nx))
            Bm = xp.reshape(fr["dyn_jac_u"], (lanes, self.N, nx, nu))
        else:
            A = xp.reshape(
                self._v["_A"](self._dyn_cols(xs, us, ks)),
                (lanes, self.N, nx, nx),
            )
            Bm = xp.reshape(
                self._v["_B"](self._dyn_cols(xs, us, ks)),
                (lanes, self.N, nx, nu),
            )
        row = nx
        for k in range(self.N):
            rows = slice(row, row + nx)
            G[:, rows, self._state_sl(k + 1)] = xp.eye(nx)
            G[:, rows, self._state_sl(k)] = -A[:, k]
            G[:, rows, self._input_sl(k)] = -Bm[:, k]
            row += nx
        if p._eq_state_rows and self.N > 1:
            if fr is not None:
                J = xp.reshape(
                    fr["eq_state_jac"], (lanes, self.N, p._eq_state_rows, nxu)
                )[:, 1:]
            else:
                ks_in = self._ks(1, self.N)
                J = self._v["_g_state_jac"](self._run_cols(xs, us, R, ks_in))
                J = xp.reshape(J, (lanes, self.N - 1, p._eq_state_rows, nxu))
            for i, k in enumerate(range(1, self.N)):
                rows = slice(row, row + p._eq_state_rows)
                G[:, rows, self._state_sl(k)] = J[:, i, :, :nx]
                G[:, rows, self._input_sl(k)] = J[:, i, :, nx:]
                row += p._eq_state_rows
        if p._eq_input_rows:
            if fr is not None:
                J = fr["eq_input_jac"]
            else:
                J = self._v["_g_input_jac"](self._run_cols(xs, us, R, ks))
            J = xp.reshape(J, (lanes, self.N, p._eq_input_rows, nxu))
            for k in range(self.N):
                rows = slice(row, row + p._eq_input_rows)
                G[:, rows, self._state_sl(k)] = J[:, k, :, :nx]
                G[:, rows, self._input_sl(k)] = J[:, k, :, nx:]
                row += p._eq_input_rows
        if p._eq_term_rows:
            if ent is not None:
                J = self._fused_term(ent, xs, R, full=True)["eq_term_jac"]
            else:
                J = self._v["_g_term_jac"](self._term_cols(xs, R))
            J = xp.reshape(J, (lanes, p._eq_term_rows, nx))
            G[:, row : row + p._eq_term_rows, self._state_sl(self.N)] = J
            row += p._eq_term_rows
        return G

    def inequality_constraints(self, Z, ref: RefLike = None):
        xp = self.xp
        Z = xp.asarray(Z)
        lanes = int(Z.shape[0])
        R = self.normalize_ref(ref, lanes)
        if not self.vectorized:
            Zh = xp.to_host(Z)
            return self._loop_stack(
                [
                    self.problem.inequality_constraints(
                        Zh[i], self._ref_lane(R, i)
                    )
                    for i in range(lanes)
                ]
            )
        p = self.problem
        if p.n_ineq == 0:
            return xp.zeros((lanes, 0))
        xs, us = self._split(Z)
        ent = self._fused_point(Z, ref)
        parts = []
        if ent is not None:
            g = self._fused_run(ent, xs, us, R, full=False)
            if p._h_state_rows and self.N > 1:
                parts.append(xp.reshape(g["ineq_state"][:, 1:], (lanes, -1)))
            if p._h_input_rows:
                parts.append(xp.reshape(g["ineq_input"], (lanes, -1)))
            if p._h_term_rows:
                parts.append(
                    self._fused_term(ent, xs, R, full=False)["ineq_term"]
                )
            return (
                xp.concatenate(parts, axis=1)
                if parts
                else xp.zeros((lanes, 0))
            )
        if p._h_state_rows and self.N > 1:
            ks_in = self._ks(1, self.N)
            vals = self._v["_h_state"](self._run_cols(xs, us, R, ks_in))
            parts.append(xp.reshape(vals, (lanes, -1)))
        if p._h_input_rows:
            ks = self._ks(0, self.N)
            vals = self._v["_h_input"](self._run_cols(xs, us, R, ks))
            parts.append(xp.reshape(vals, (lanes, -1)))
        if p._h_term_rows:
            parts.append(self._v["_h_term"](self._term_cols(xs, R)))
        return (
            xp.concatenate(parts, axis=1) if parts else xp.zeros((lanes, 0))
        )

    def inequality_jacobian(self, Z, ref: RefLike = None):
        xp = self.xp
        Z = xp.asarray(Z)
        lanes = int(Z.shape[0])
        R = self.normalize_ref(ref, lanes)
        if not self.vectorized:
            Zh = xp.to_host(Z)
            return self._loop_stack(
                [
                    self.problem.inequality_jacobian(
                        Zh[i], self._ref_lane(R, i)
                    )
                    for i in range(lanes)
                ]
            )
        p = self.problem
        nx, nxu = self.nx, self.nx + self.nu
        J = xp.zeros((lanes, p.n_ineq, self.nz))
        if p.n_ineq == 0:
            return J
        xs, us = self._split(Z)
        ent = self._fused_point(Z, ref)
        fr = (
            self._fused_run(ent, xs, us, R, full=True)
            if ent is not None
            else None
        )
        row = 0
        if p._h_state_rows and self.N > 1:
            if fr is not None:
                blk = xp.reshape(
                    fr["ineq_state_jac"],
                    (lanes, self.N, p._h_state_rows, nxu),
                )[:, 1:]
            else:
                ks_in = self._ks(1, self.N)
                blk = self._v["_h_state_jac"](self._run_cols(xs, us, R, ks_in))
                blk = xp.reshape(
                    blk, (lanes, self.N - 1, p._h_state_rows, nxu)
                )
            for i, k in enumerate(range(1, self.N)):
                rows = slice(row, row + p._h_state_rows)
                J[:, rows, self._state_sl(k)] = blk[:, i, :, :nx]
                J[:, rows, self._input_sl(k)] = blk[:, i, :, nx:]
                row += p._h_state_rows
        if p._h_input_rows:
            if fr is not None:
                blk = fr["ineq_input_jac"]
            else:
                ks = self._ks(0, self.N)
                blk = self._v["_h_input_jac"](self._run_cols(xs, us, R, ks))
            blk = xp.reshape(blk, (lanes, self.N, p._h_input_rows, nxu))
            for k in range(self.N):
                rows = slice(row, row + p._h_input_rows)
                J[:, rows, self._state_sl(k)] = blk[:, k, :, :nx]
                J[:, rows, self._input_sl(k)] = blk[:, k, :, nx:]
                row += p._h_input_rows
        if p._h_term_rows:
            if ent is not None:
                blk = self._fused_term(ent, xs, R, full=True)["ineq_term_jac"]
            else:
                blk = self._v["_h_term_jac"](self._term_cols(xs, R))
            blk = xp.reshape(blk, (lanes, p._h_term_rows, nx))
            J[:, row : row + p._h_term_rows, self._state_sl(self.N)] = blk
        return J

    # -- initialization ----------------------------------------------------

    def initial_guess(self, x_init):
        xp = self.xp
        X0 = xp.asarray(x_init)
        lanes = int(X0.shape[0])
        if not self.vectorized:
            X0h = xp.to_host(X0)
            return self._loop_stack(
                [self.problem.initial_guess(X0h[i]) for i in range(lanes)]
            )
        p = self.problem
        u0_h = [float(v) for v in p.model.trim_inputs()]
        u0 = xp.asarray(u0_h)
        us = xp.tile(u0, (lanes, self.N, 1))
        if not p.model.rollout_guess:
            xs = xp.repeat(X0[:, None, :], self.N + 1, axis=1)
        else:
            lo, hi = p.model.state_bounds()
            lo = xp.maximum(xp.asarray(lo), -1e6)
            hi = xp.minimum(xp.asarray(hi), 1e6)
            xs = xp.empty((lanes, self.N + 1, self.nx))
            xs[:, 0] = X0
            u_cols = [xp.full((lanes,), u0_h[j]) for j in range(self.nu)]
            for k in range(self.N):
                cols = [xs[:, k, i] for i in range(self.nx)] + u_cols
                xs[:, k + 1] = xp.clip(self._v["_F"](cols), lo, hi)
        return xp.concatenate(
            [xp.reshape(xs, (lanes, -1)), xp.reshape(us, (lanes, -1))], axis=1
        )
