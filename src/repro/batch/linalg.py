"""Batched banded Cholesky factorization over ``(B, n, n)`` stacks.

This is the lane-parallel twin of :mod:`repro.mpc.banded`: the same
blocked bidiagonal factorization (diagonal tiles ``D_k`` and sub-diagonal
couplings ``C_k``), but with a leading batch axis so one sweep factors
``B`` independent KKT systems at once.  All inner products run as batched
``matmul``/``einsum`` contractions, which is where the throughput of the
``repro.batch`` subsystem comes from — and every contraction routes
through the :mod:`~repro.batch.backend` seam (``xp``), so the same sweep
runs on numpy, cupy, or torch arrays without touching this file.

Storage is tile-only: the factorization keeps the ``(B, K, nb, nb)``
``D``/``D⁻¹``/``C`` tile stacks and indexes the input ``A`` block-wise as
it sweeps.  It never materializes a padded ``(B, npad, npad)`` copy of
``A`` — in banded mode that copy was the memory wall (at B=4096 on the
Quadrotor N=30 problem it dwarfed the tiles it was scaffolding for).

Failure semantics differ from the scalar path by design.  The scalar
:class:`~repro.mpc.banded.BandedCholeskyFactor` raises
:class:`~repro.errors.SolverError` on a non-positive pivot; in a batch a
single bad lane must not poison its neighbours, so the batched factor
never raises on pivot failure.  Instead each lane carries an ``ok`` flag:
a failed lane gets a safe placeholder pivot (its factors are garbage and
must be discarded by the caller), while every other lane's arithmetic is
untouched — all operations are lane-diagonal, so no information crosses
the batch axis.  A lane whose factor tiles come out non-finite (overflow
during the sweep slipping past the pivot checks) is flagged the same way:
``ok`` certifies finite, positive-definite factors, never silent garbage.
Floating-point warnings are **not** blanket-suppressed: failed lanes'
garbage operands are zeroed as the sweep goes (so they cannot warn), and
a genuine overflow in a *healthy* lane is allowed to surface — solves on
an already-degraded factor are the one place warnings are muted, and only
when a flagged lane is actually present.  :func:`robust_factor_batch`
wraps this with the same escalating-regularization retry ladder as
``repro.mpc.qp._robust_factor``, re-factoring only the failed lanes on
each attempt.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional, Tuple

from repro.errors import SolverError
from repro.mpc.banded import (
    flop_counts_banded_cholesky,
    flop_counts_banded_substitution,
)
from repro.mpc.linalg import flop_counts_cholesky, flop_counts_substitution

from .backend import ArrayBackend, get_backend

__all__ = ["BatchCholeskyFactor", "robust_factor_batch"]


def _cholesky_tiles(xp: ArrayBackend, M):
    """Batched dense Cholesky of a ``(B, m, m)`` tile stack.

    Returns ``(L, ok)`` where lanes with a non-positive or non-finite
    pivot are flagged ``ok=False`` and continue with a placeholder pivot
    of 1.0 so the remaining lanes factor normally.  Sub-diagonal columns
    of lanes already flagged are zeroed as they are produced: their
    factors are discarded garbage either way, and bounded placeholders
    keep failed lanes from emitting the floating-point warnings that
    belong to healthy-lane overflow alone.
    """
    lanes, m = int(M.shape[0]), int(M.shape[1])
    L = xp.zeros_like(M)
    ok = xp.ones((lanes,), dtype="bool")
    for j in range(m):
        row = L[:, j, :j]
        acc = M[:, j, j] - xp.einsum("bk,bk->b", row, row)
        good = xp.isfinite(acc) & (acc > 0.0)
        ok = ok & good
        piv = xp.sqrt(xp.where(good, acc, 1.0))
        L[:, j, j] = piv
        if j + 1 < m:
            below = M[:, j + 1 :, j] - xp.einsum(
                "bik,bk->bi", L[:, j + 1 :, :j], row
            )
            below = xp.where(ok[:, None], below, 0.0)
            L[:, j + 1 :, j] = below / piv[:, None]
    return L, ok


def _triangular_inverse(xp: ArrayBackend, L):
    """Batched inverse of lower-triangular ``(B, m, m)`` tiles via forward
    substitution (mirrors the scalar path's ``Dinv``).

    Row ``i`` of the inverse is nonzero only on columns ``0..i``, so the
    substitution contracts over the filled ``(:i, :i)`` prefix alone —
    no identity matrix is materialized (this runs K times per factor,
    per interior-point iteration) and no zero-padded columns are swept.
    """
    lanes, m = int(L.shape[0]), int(L.shape[1])
    X = xp.zeros_like(L)
    for i in range(m):
        piv = L[:, i, i]
        if i:
            r = 0.0 - xp.einsum("bk,bkc->bc", L[:, i, :i], X[:, :i, :i])
            X[:, i, :i] = r / piv[:, None]
        X[:, i, i] = 1.0 / piv
    return X


class BatchCholeskyFactor:
    """Blocked Cholesky factorization of ``B`` banded SPD systems at once.

    Parameters
    ----------
    A : (B, n, n) array
        Stack of symmetric positive-definite matrices sharing one sparsity
        envelope (same ``band`` for every lane).
    band : int or None
        Half bandwidth shared by all lanes.  ``None`` selects a single
        dense block (the batched equivalent of a dense factorization).
    reg : float or (B,) array
        Diagonal regularization, scalar or per-lane.
    backend : str or ArrayBackend, optional
        The array namespace to factor under (default: the process-wide
        selection, see :func:`repro.batch.backend.get_backend`).

    Lanes whose matrix is non-finite, loses positive definiteness, or
    overflows into non-finite factor tiles are flagged in :attr:`ok`;
    their factor tiles are placeholders and any ``solve`` output for
    those lanes is meaningless.
    """

    MIN_BLOCK = 16

    def __init__(
        self,
        A,
        band: Optional[int] = None,
        reg=0.0,
        backend=None,
    ) -> None:
        xp = self.xp = get_backend(backend)
        A = xp.asarray(A)
        if A.ndim != 3 or A.shape[1] != A.shape[2]:
            raise SolverError(
                f"expected a (B, n, n) stack, got shape {tuple(A.shape)}"
            )
        self.lanes, self.n = int(A.shape[0]), int(A.shape[1])
        self.band = None if band is None else int(min(int(band), max(self.n - 1, 0)))
        reg_vec = xp.copy(xp.broadcast_to(xp.asarray(reg), (self.lanes,)))
        self.reg = reg_vec

        finite = xp.all(xp.isfinite(A), axis=(1, 2))
        self.ok = xp.copy(finite)

        n = self.n
        if self.band is None:
            nb = max(n, 1)
        else:
            nb = min(max(self.band, self.MIN_BLOCK), max(n, 1))
        K = max(1, -(-n // nb))
        npad = K * nb
        self.nb, self.K, self.npad = nb, K, npad

        lanes = self.lanes
        eye_nb = xp.eye(nb)
        reg_fill = xp.where(finite, reg_vec, 0.0)[:, None]

        def diag_tile(k: int):
            """Block ``(k, k)`` of the padded, regularized matrix — built
            from ``A`` directly, never from a dense padded copy."""
            s = k * nb
            e = min(s + nb, n)
            w = e - s
            if w == nb:
                T = xp.copy(A[:, s:e, s:e])
            else:
                T = xp.zeros((lanes, nb, nb))
                T[:, :w, :w] = A[:, s:e, s:e]
                pad = xp.arange(w, nb)
                T[:, pad, pad] = 1.0
            # Non-finite lanes get the identity tile so their (discarded)
            # factors stay bounded; their ok flag is already off.
            T = xp.where(finite[:, None, None], T, eye_nb)
            dd = xp.arange(w)
            T[:, dd, dd] = T[:, dd, dd] + reg_fill
            return T

        def sub_tile(k: int):
            """Block ``(k+1, k)`` — the sub-diagonal coupling ``E_k``."""
            s = (k + 1) * nb
            e = min(s + nb, n)
            w = e - s
            if w == nb:
                E = A[:, s:e, s - nb : s]
            else:
                E = xp.zeros((lanes, nb, nb))
                E[:, :w, :] = A[:, s:e, s - nb : s]
            return xp.where(finite[:, None, None], E, 0.0)

        D = xp.empty((lanes, K, nb, nb))
        Dinv = xp.empty((lanes, K, nb, nb))
        C = xp.empty((lanes, max(K - 1, 0), nb, nb))
        M = diag_tile(0)
        for k in range(K):
            Lkk, okk = _cholesky_tiles(xp, M)
            self.ok = self.ok & okk
            D[:, k] = Lkk
            Dinv[:, k] = _triangular_inverse(xp, Lkk)
            if k + 1 < K:
                Ck = xp.matmul(sub_tile(k), xp.transpose_last2(Dinv[:, k]))
                C[:, k] = Ck
                M = diag_tile(k + 1) - xp.matmul(Ck, xp.transpose_last2(Ck))
        self._D, self._Dinv, self._C = D, Dinv, C

        # Overflow during the sweep can slip past the pivot checks (e.g. a
        # tiny pivot inflating D⁻¹ past the float ceiling in the final
        # block, where no later pivot re-checks it).  ok certifies finite
        # factors — garbage must freeze the lane, never solve silently.
        tiles_ok = xp.all(xp.isfinite(D), axis=(1, 2, 3)) & xp.all(
            xp.isfinite(Dinv), axis=(1, 2, 3)
        )
        if K > 1:
            tiles_ok = tiles_ok & xp.all(xp.isfinite(C), axis=(1, 2, 3))
        self.ok = self.ok & tiles_ok

        # Solves on a batch with flagged lanes run the flagged lanes'
        # placeholder tiles too; mute warnings then (and only then) — on
        # an all-healthy batch, overflow in a solve must stay audible.
        self._suppress = (not xp.is_device) and not bool(
            xp.scalar(xp.all(self.ok))
        )

    # -- solves -----------------------------------------------------------

    @property
    def banded(self) -> bool:
        return self.band is not None

    def _errstate(self):
        return self.xp.errstate() if self._suppress else nullcontext()

    def _prep_rhs(self, b):
        xp = self.xp
        b = xp.asarray(b)
        squeeze = b.ndim == 2
        if squeeze:
            b = b[:, :, None]
        if b.ndim != 3 or b.shape[0] != self.lanes or b.shape[1] != self.n:
            raise SolverError(
                f"rhs shape {tuple(b.shape)} incompatible with "
                f"({self.lanes}, {self.n})"
            )
        return b, squeeze

    def forward(self, b):
        xp = self.xp
        b3, squeeze = self._prep_rhs(b)
        y = xp.zeros((self.lanes, self.npad, int(b3.shape[2])))
        y[:, : self.n] = b3
        nb = self.nb
        with self._errstate():
            for k in range(self.K):
                s = k * nb
                blk = y[:, s : s + nb]
                if k:
                    blk = blk - xp.matmul(self._C[:, k - 1], y[:, s - nb : s])
                y[:, s : s + nb] = xp.matmul(self._Dinv[:, k], blk)
        out = y[:, : self.n]
        return out[:, :, 0] if squeeze else out

    def backward(self, b):
        xp = self.xp
        b3, squeeze = self._prep_rhs(b)
        x = xp.zeros((self.lanes, self.npad, int(b3.shape[2])))
        x[:, : self.n] = b3
        nb = self.nb
        with self._errstate():
            for k in range(self.K - 1, -1, -1):
                s = k * nb
                blk = x[:, s : s + nb]
                if k + 1 < self.K:
                    blk = blk - xp.matmul(
                        xp.transpose_last2(self._C[:, k]),
                        x[:, s + nb : s + 2 * nb],
                    )
                x[:, s : s + nb] = xp.matmul(
                    xp.transpose_last2(self._Dinv[:, k]), blk
                )
        out = x[:, : self.n]
        return out[:, :, 0] if squeeze else out

    def solve(self, b):
        """Solve ``A_i x_i = b_i`` for every lane ``i`` in one sweep."""
        return self.backward(self.forward(b))

    # -- flop meters (per lane; every lane shares one structure) ----------

    def factor_flops(self) -> int:
        """Flops one lane's factorization would cost on the scalar path."""
        if self.band is not None:
            counts = flop_counts_banded_cholesky(self.n, self.band)
        else:
            counts = flop_counts_cholesky(self.n)
        return int(sum(counts.values()))

    def solve_flops(self, nrhs: int = 1) -> int:
        """Flops one lane's forward+backward substitution costs."""
        if self.band is not None:
            counts = flop_counts_banded_substitution(self.n, self.band, nrhs)
        else:
            counts = flop_counts_substitution(self.n, nrhs)
        return 2 * int(sum(counts.values()))


def robust_factor_batch(
    A,
    reg: float,
    band: Optional[int] = None,
    attempts: int = 16,
    backend=None,
    active=None,
):
    """Factor a batch with the per-lane escalating-regularization ladder.

    Mirrors ``repro.mpc.qp._robust_factor``: on a failed lane the
    regularization escalates as ``max(reg * 100, 1e-12)`` and only the
    failed lanes are re-factored (their tiles are scattered back into the
    full-batch factor, so already-healthy lanes keep bit-identical
    factors).  Lanes with non-finite input fail immediately and are never
    retried, matching the scalar fail-fast guard; ``active=False`` lanes
    (a masked lockstep caller's frozen lanes) are likewise never retried.

    The ladder's early exit reads one scalar per attempt, so device-mode
    callers that must stay sync-free pass ``attempts=1`` — a single
    factorization sweep with no retry and therefore no host round-trip
    (the lockstep deviation documented in :mod:`repro.batch.qp`).

    Returns ``(factor, reg_used, retries)``; lanes still failing after
    ``attempts`` tries are left with ``factor.ok == False`` for the caller
    to freeze out, instead of raising like the scalar path.
    """
    xp = get_backend(backend)
    A = xp.asarray(A)
    lanes = int(A.shape[0])
    current = xp.full((lanes,), float(reg))
    retries = xp.zeros((lanes,), dtype="int")
    factor = BatchCholeskyFactor(A, band=band, reg=current, backend=xp)
    hopeless = ~xp.all(xp.isfinite(A), axis=(1, 2))
    if active is not None:
        hopeless = hopeless | ~active
    for _ in range(attempts - 1):
        failed = ~factor.ok & ~hopeless
        if not bool(xp.scalar(xp.any(failed))):
            break
        retries[failed] = retries[failed] + 1
        current[failed] = xp.maximum(current[failed] * 100.0, 1e-12)
        sub = BatchCholeskyFactor(
            A[failed], band=band, reg=current[failed], backend=xp
        )
        factor._D[failed] = sub._D
        factor._Dinv[failed] = sub._Dinv
        if factor._C.shape[1]:
            factor._C[failed] = sub._C
        factor.ok[failed] = sub.ok
        factor.reg[failed] = sub.reg
        factor._suppress = factor._suppress or sub._suppress
    return factor, current, retries
