"""Batched banded Cholesky factorization over ``(B, n, n)`` stacks.

This is the lane-parallel twin of :mod:`repro.mpc.banded`: the same
blocked bidiagonal factorization (diagonal tiles ``D_k`` and sub-diagonal
couplings ``C_k``), but with a leading batch axis so one sweep factors
``B`` independent KKT systems at once.  All inner products run as batched
``matmul``/``einsum`` contractions, which is where the throughput of the
``repro.batch`` subsystem comes from: the per-element Python overhead of
the scalar path is amortized across every lane in the batch.

Failure semantics differ from the scalar path by design.  The scalar
:class:`~repro.mpc.banded.BandedCholeskyFactor` raises
:class:`~repro.errors.SolverError` on a non-positive pivot; in a batch a
single bad lane must not poison its neighbours, so the batched factor
never raises on pivot failure.  Instead each lane carries an ``ok`` flag:
a failed lane gets a safe placeholder pivot (its factors are garbage and
must be discarded by the caller), while every other lane's arithmetic is
untouched — all operations are lane-diagonal, so no information crosses
the batch axis.  :func:`robust_factor_batch` wraps this with the same
escalating-regularization retry ladder as ``repro.mpc.qp._robust_factor``,
re-factoring only the failed lanes on each attempt.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.mpc.banded import (
    flop_counts_banded_cholesky,
    flop_counts_banded_substitution,
)
from repro.mpc.linalg import flop_counts_cholesky, flop_counts_substitution

__all__ = ["BatchCholeskyFactor", "robust_factor_batch"]


def _cholesky_tiles(M: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Batched dense Cholesky of a ``(B, m, m)`` tile stack.

    Returns ``(L, ok)`` where lanes with a non-positive or non-finite
    pivot are flagged ``ok=False`` and continue with a placeholder pivot
    of 1.0 so the remaining lanes factor normally.
    """
    lanes, m = M.shape[0], M.shape[1]
    L = np.zeros_like(M)
    ok = np.ones(lanes, dtype=bool)
    for j in range(m):
        row = L[:, j, :j]
        acc = M[:, j, j] - np.einsum("bk,bk->b", row, row)
        good = np.isfinite(acc) & (acc > 0.0)
        ok &= good
        piv = np.sqrt(np.where(good, acc, 1.0))
        L[:, j, j] = piv
        if j + 1 < m:
            below = M[:, j + 1 :, j] - np.einsum("bik,bk->bi", L[:, j + 1 :, :j], row)
            L[:, j + 1 :, j] = below / piv[:, None]
    return L, ok


def _triangular_inverse(L: np.ndarray) -> np.ndarray:
    """Batched inverse of lower-triangular ``(B, m, m)`` tiles via forward
    substitution on the identity (mirrors the scalar path's ``Dinv``)."""
    lanes, m = L.shape[0], L.shape[1]
    X = np.zeros_like(L)
    eye = np.eye(m)
    for i in range(m):
        r = eye[i] - np.einsum("bk,bkc->bc", L[:, i, :i], X[:, :i, :])
        X[:, i, :] = r / L[:, i, i, None]
    return X


class BatchCholeskyFactor:
    """Blocked Cholesky factorization of ``B`` banded SPD systems at once.

    Parameters
    ----------
    A : (B, n, n) array
        Stack of symmetric positive-definite matrices sharing one sparsity
        envelope (same ``band`` for every lane).
    band : int or None
        Half bandwidth shared by all lanes.  ``None`` selects a single
        dense block (the batched equivalent of a dense factorization).
    reg : float or (B,) array
        Diagonal regularization, scalar or per-lane.

    Lanes whose matrix is non-finite or loses positive definiteness are
    flagged in :attr:`ok`; their factor tiles are placeholders and any
    ``solve`` output for those lanes is meaningless.
    """

    MIN_BLOCK = 16

    def __init__(
        self,
        A: np.ndarray,
        band: Optional[int] = None,
        reg: "float | np.ndarray" = 0.0,
    ) -> None:
        A = np.asarray(A, dtype=float)
        if A.ndim != 3 or A.shape[1] != A.shape[2]:
            raise SolverError(f"expected a (B, n, n) stack, got shape {A.shape}")
        self.lanes, self.n = int(A.shape[0]), int(A.shape[1])
        self.band = None if band is None else int(min(int(band), max(self.n - 1, 0)))
        reg_vec = np.broadcast_to(np.asarray(reg, dtype=float), (self.lanes,)).copy()
        self.reg = reg_vec

        finite = np.isfinite(A).all(axis=(1, 2))
        self.ok = finite.copy()

        n = self.n
        if self.band is None:
            nb = max(n, 1)
        else:
            nb = min(max(self.band, self.MIN_BLOCK), max(n, 1))
        K = max(1, -(-n // nb))
        npad = K * nb
        self.nb, self.K, self.npad = nb, K, npad

        Ap = np.zeros((self.lanes, npad, npad))
        # Non-finite lanes get the identity so their (discarded) tiles do
        # not trip floating-point warnings; their ok flag is already off.
        Ap[:, :n, :n] = np.where(finite[:, None, None], A, np.eye(n))
        diag = np.arange(n)
        Ap[:, diag, diag] += np.where(finite, reg_vec, 0.0)[:, None]
        pad = np.arange(n, npad)
        Ap[:, pad, pad] = 1.0

        D = np.empty((self.lanes, K, nb, nb))
        Dinv = np.empty((self.lanes, K, nb, nb))
        C = np.empty((self.lanes, max(K - 1, 0), nb, nb))
        with np.errstate(all="ignore"):
            M = Ap[:, :nb, :nb].copy()
            for k in range(K):
                Lkk, okk = _cholesky_tiles(M)
                self.ok &= okk
                D[:, k] = Lkk
                Dinv[:, k] = _triangular_inverse(Lkk)
                if k + 1 < K:
                    s = (k + 1) * nb
                    E = Ap[:, s : s + nb, s - nb : s]
                    Ck = E @ Dinv[:, k].transpose(0, 2, 1)
                    C[:, k] = Ck
                    M = Ap[:, s : s + nb, s : s + nb] - Ck @ Ck.transpose(0, 2, 1)
        self._D, self._Dinv, self._C = D, Dinv, C

    # -- solves -----------------------------------------------------------

    @property
    def banded(self) -> bool:
        return self.band is not None

    def _prep_rhs(self, b: np.ndarray) -> Tuple[np.ndarray, bool]:
        b = np.asarray(b, dtype=float)
        squeeze = b.ndim == 2
        if squeeze:
            b = b[:, :, None]
        if b.ndim != 3 or b.shape[0] != self.lanes or b.shape[1] != self.n:
            raise SolverError(
                f"rhs shape {b.shape} incompatible with ({self.lanes}, {self.n})"
            )
        return b, squeeze

    def forward(self, b: np.ndarray) -> np.ndarray:
        b3, squeeze = self._prep_rhs(b)
        y = np.zeros((self.lanes, self.npad, b3.shape[2]))
        y[:, : self.n] = b3
        nb = self.nb
        with np.errstate(all="ignore"):
            for k in range(self.K):
                s = k * nb
                blk = y[:, s : s + nb]
                if k:
                    blk = blk - self._C[:, k - 1] @ y[:, s - nb : s]
                y[:, s : s + nb] = self._Dinv[:, k] @ blk
        out = y[:, : self.n]
        return out[:, :, 0] if squeeze else out

    def backward(self, b: np.ndarray) -> np.ndarray:
        b3, squeeze = self._prep_rhs(b)
        x = np.zeros((self.lanes, self.npad, b3.shape[2]))
        x[:, : self.n] = b3
        nb = self.nb
        with np.errstate(all="ignore"):
            for k in range(self.K - 1, -1, -1):
                s = k * nb
                blk = x[:, s : s + nb]
                if k + 1 < self.K:
                    blk = blk - self._C[:, k].transpose(0, 2, 1) @ x[:, s + nb : s + 2 * nb]
                x[:, s : s + nb] = self._Dinv[:, k].transpose(0, 2, 1) @ blk
        out = x[:, : self.n]
        return out[:, :, 0] if squeeze else out

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A_i x_i = b_i`` for every lane ``i`` in one sweep."""
        return self.backward(self.forward(b))

    # -- flop meters (per lane; every lane shares one structure) ----------

    def factor_flops(self) -> int:
        """Flops one lane's factorization would cost on the scalar path."""
        if self.band is not None:
            counts = flop_counts_banded_cholesky(self.n, self.band)
        else:
            counts = flop_counts_cholesky(self.n)
        return int(sum(counts.values()))

    def solve_flops(self, nrhs: int = 1) -> int:
        """Flops one lane's forward+backward substitution costs."""
        if self.band is not None:
            counts = flop_counts_banded_substitution(self.n, self.band, nrhs)
        else:
            counts = flop_counts_substitution(self.n, nrhs)
        return 2 * int(sum(counts.values()))


def robust_factor_batch(
    A: np.ndarray,
    reg: float,
    band: Optional[int] = None,
    attempts: int = 16,
) -> Tuple[BatchCholeskyFactor, np.ndarray, np.ndarray]:
    """Factor a batch with the per-lane escalating-regularization ladder.

    Mirrors ``repro.mpc.qp._robust_factor``: on a failed lane the
    regularization escalates as ``max(reg * 100, 1e-12)`` and only the
    failed lanes are re-factored (their tiles are scattered back into the
    full-batch factor, so already-healthy lanes keep bit-identical
    factors).  Lanes with non-finite input fail immediately and are never
    retried, matching the scalar fail-fast guard.

    Returns ``(factor, reg_used, retries)``; lanes still failing after
    ``attempts`` tries are left with ``factor.ok == False`` for the caller
    to freeze out, instead of raising like the scalar path.
    """
    A = np.asarray(A, dtype=float)
    lanes = A.shape[0]
    current = np.full(lanes, float(reg))
    retries = np.zeros(lanes, dtype=int)
    factor = BatchCholeskyFactor(A, band=band, reg=current)
    hopeless = ~np.isfinite(A).all(axis=(1, 2))
    for _ in range(attempts - 1):
        failed = ~factor.ok & ~hopeless
        if not failed.any():
            break
        retries[failed] += 1
        current[failed] = np.maximum(current[failed] * 100.0, 1e-12)
        sub = BatchCholeskyFactor(A[failed], band=band, reg=current[failed])
        factor._D[failed] = sub._D
        factor._Dinv[failed] = sub._Dinv
        if factor._C.shape[1]:
            factor._C[failed] = sub._C
        factor.ok[failed] = sub.ok
        factor.reg[failed] = sub.reg
    return factor, current, retries
