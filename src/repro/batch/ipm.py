"""Batched SQP + interior-point solver over stacked MPC instances.

:class:`BatchSolver` runs the same Gauss-Newton SQP iteration as
:class:`repro.mpc.ipm.InteriorPointSolver` — same linearization, same
scaled Sl1QP subproblem with the stage-interleaved banded permutation,
same L1 exact-penalty watchdog line search, same Levenberg adaptation and
best-iterate restore — but over ``B`` lanes at once:

* linearization runs through :class:`~repro.batch.transcription.
  BatchLinearizer` (one vectorized sweep instead of ``B`` Python loops);
* the QP subproblems of all active lanes are solved by one
  :func:`~repro.batch.qp.solve_qp_batch` call sharing a single
  factorization sweep per interior-point iteration;
* every lane carries its own penalty ``rho``, damping ``lm``, merit
  window, KKT history, and budget clock; lanes freeze individually on
  convergence, divergence, or budget exhaustion (continuous-batching
  semantics), and frozen lanes are excluded from all later work.

Array ops route through the :mod:`repro.batch.backend` seam.  The
host-sync contract on a device backend: the heavy tensors (Hessians,
Jacobians, constraint stacks, QP iterates) live on the device from
linearization through the entire QP loop; per SQP iteration the solver
materializes only the small per-lane reductions the Python bookkeeping
needs (the KKT residual vector, the scaled gradient for the descent test,
one merit value per line-search trial).  The inner QP loop itself runs
with **zero** per-iteration host syncs (see :mod:`repro.batch.qp`).
Small SQP state (iterates ``Z``, multipliers, penalties, clocks) is
host-resident — it is touched lane-wise by watchdog windows and budget
ladders, which are Python decisions.

Per-lane results come back as ordinary :class:`~repro.mpc.ipm.IPMResult`
objects, so the serve layer's classification ladder consumes a batched
lane exactly like a scalar solve.  Intentional deviations from the scalar
path, each forced by batching:

* only the Gauss-Newton Hessian model is supported (the exact/hybrid
  contraction is stage-sequential; non-GN robots fall back to scalar
  solves in the serve integration);
* a lane whose QP cannot be factorized freezes as ``"diverged"`` instead
  of raising, because one lane must not abort the batch;
* ``result.solve_time`` is the *batch* wall clock for every lane — that
  is the latency each lane actually experienced waiting for the group;
* state validation is batch-level: any non-finite ``x_init`` or
  reference raises before the solve starts, as on the scalar path, so
  callers (the serve engine) pre-filter poisoned lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.errors import SolverError, StateValidationError
from repro.mpc.budget import SolveBudget
from repro.mpc.health import SolverHealth
from repro.mpc.ipm import IPMOptions, IPMResult, InteriorPointSolver
from repro.mpc.transcription import TranscribedProblem

from .backend import HOST, ArrayBackend, get_backend
from .qp import solve_qp_batch
from .transcription import BatchLinearizer

__all__ = ["BatchSolveReport", "BatchSolver"]


@dataclass
class BatchSolveReport:
    """Occupancy telemetry of one batched solve (feeds ``FleetMetrics``)."""

    lanes: int = 0
    #: outer (SQP) lane-iterations worked / available
    sqp_lane_iterations: int = 0
    sqp_lane_slots: int = 0
    #: inner (QP) lane-iterations worked / available
    qp_lane_iterations: int = 0
    qp_lane_slots: int = 0

    @property
    def sqp_efficiency(self) -> float:
        return (
            self.sqp_lane_iterations / self.sqp_lane_slots
            if self.sqp_lane_slots
            else 1.0
        )

    @property
    def qp_efficiency(self) -> float:
        return (
            self.qp_lane_iterations / self.qp_lane_slots
            if self.qp_lane_slots
            else 1.0
        )


def _maxabs_rows(xp: ArrayBackend, v):
    if int(v.shape[1]) == 0:
        return xp.zeros((int(v.shape[0]),))
    return xp.max(xp.abs(v), axis=1)


def _kkt_batch(xp: ArrayBackend, grad, G, g_eq, J, h, nu, lam):
    """Batched twin of ``repro.mpc.ipm._kkt_residual`` (same scaling)."""
    s_max = 100.0
    n_mult = int(nu.shape[1]) + int(lam.shape[1])
    if n_mult:
        mult_mean = (
            xp.sum(xp.abs(nu), axis=1) + xp.sum(xp.abs(lam), axis=1)
        ) / n_mult
    else:
        mult_mean = xp.zeros((int(nu.shape[0]),))
    sd = xp.maximum(s_max, mult_mean) / s_max

    r_dual = grad + xp.matmul(xp.transpose_last2(G), nu[:, :, None])[:, :, 0]
    if int(lam.shape[1]):
        r_dual = (
            r_dual
            + xp.matmul(xp.transpose_last2(J), lam[:, :, None])[:, :, 0]
        )
        primal_ineq = (
            xp.max(xp.maximum(h, 0.0), axis=1)
            if int(h.shape[1])
            else xp.zeros((int(h.shape[0]),))
        )
        comp = _maxabs_rows(xp, lam * h) / sd
        dual_feas = xp.max(xp.maximum(-lam, 0.0), axis=1) / sd
    else:
        primal_ineq = comp = dual_feas = xp.zeros((int(grad.shape[0]),))
    return xp.maximum_reduce(
        [
            _maxabs_rows(xp, r_dual) / sd,
            _maxabs_rows(xp, g_eq),
            primal_ineq,
            comp,
            dual_feas,
        ]
    )


class BatchSolver:
    """Vectorized multi-instance solver for one transcribed problem.

    All lanes share the problem structure (robot + horizon + task); each
    lane brings its own measured state, reference, warm start, and budget.
    ``backend`` selects the array namespace for the heavy math (default:
    the process-wide selection — ``REPRO_ARRAY_BACKEND`` or numpy);
    ``qp_method`` the inner QP solver (``"ipm"`` — the batched
    interior-point of :mod:`repro.batch.qp` — or ``"admm"`` — the
    device-resident first-order iteration of
    :mod:`repro.firstorder.batch`; default: ``options.qp.method``).
    """

    def __init__(
        self,
        problem: TranscribedProblem,
        options: Optional[IPMOptions] = None,
        backend=None,
        qp_method: Optional[str] = None,
    ):
        self.problem = problem
        self.options = options or IPMOptions()
        if self.options.hessian != "gauss_newton":
            raise SolverError(
                "BatchSolver supports only the Gauss-Newton Hessian model; "
                f"got hessian={self.options.hessian!r}"
            )
        self.qp_method = qp_method or self.options.qp.method
        if self.qp_method not in ("ipm", "admm"):
            raise SolverError(
                f"qp_method must be 'ipm' or 'admm', got {self.qp_method!r}"
            )
        self.xp = get_backend(backend)
        # Structure donor: reuses the scalar solver's stage-interleaved
        # permutations and band hints so both paths condense identically.
        self._donor = InteriorPointSolver(problem, self.options)
        self.lin = BatchLinearizer(problem, backend=self.xp)
        #: cumulative statistics with the scalar solver's keys, so fleet
        #: telemetry absorbs a batch solver like any other
        self.stats: Dict[str, float] = {
            "solves": 0,
            "sqp_iterations": 0,
            "qp_iterations": 0,
            "linearize_time": 0.0,
            "factorize_time": 0.0,
            "substitute_time": 0.0,
            "factor_flops": 0,
            "substitute_flops": 0,
            "factorizations": 0,
            "banded_factorizations": 0,
            # linearize-phase codegen record (kernel tier, cache counters);
            # None while the batch linearizer runs without fused kernels
            "codegen": None,
        }
        self.last_report: Optional[BatchSolveReport] = None

    # -- serve adapter -----------------------------------------------------

    def solve_payloads(self, payloads: Sequence[Dict[str, object]]):
        """Solve a group of ``ControlSession.solve_payload`` dicts.

        The payload schema is the same one the process-pool workers
        consume, so the batched backend slots into the engine's existing
        dispatch plumbing.
        """
        X0 = HOST.stack([HOST.asarray(pl["x"]) for pl in payloads])
        refs = [pl.get("ref") for pl in payloads]
        budgets = [
            SolveBudget(
                wall_clock=pl.get("deadline_s"),
                sqp_iterations=pl.get("max_sqp_iterations"),
                qp_iterations=pl.get("max_qp_iterations"),
            )
            for pl in payloads
        ]
        return self.solve(
            X0,
            refs=refs if self.problem.nref else None,
            z_warm=[pl.get("z_warm") for pl in payloads],
            nu_warm=[pl.get("nu_warm") for pl in payloads],
            lam_warm=[pl.get("lam_warm") for pl in payloads],
            budgets=budgets,
        )

    # -- the batched solve -------------------------------------------------

    def solve(
        self,
        x_init,
        refs=None,
        z_warm: Optional[Sequence] = None,
        nu_warm: Optional[Sequence] = None,
        lam_warm: Optional[Sequence] = None,
        budgets: Optional[Sequence[Optional[SolveBudget]]] = None,
    ):
        """Solve ``B`` instances; returns ``(results, report)``.

        ``results`` is a list of per-lane :class:`IPMResult`; ``report`` a
        :class:`BatchSolveReport` with lane-occupancy telemetry.
        """
        t_solve = perf_counter()
        p = self.problem
        opt = self.options
        xp = self.xp
        X0 = HOST.asarray(x_init)
        if X0.ndim != 2 or X0.shape[1] != p.nx:
            raise SolverError(
                f"x_init must be (B, {p.nx}), got shape {tuple(X0.shape)}"
            )
        lanes = int(X0.shape[0])
        if not bool(HOST.scalar(HOST.all(HOST.isfinite(X0)))):
            raise StateValidationError(
                "batched x_init contains non-finite entries; "
                "pre-filter poisoned lanes before batching"
            )
        R_dev = self.lin.normalize_ref(refs, lanes)
        R = None if R_dev is None else xp.to_host(R_dev)
        if R is not None and not bool(HOST.scalar(HOST.all(HOST.isfinite(R)))):
            raise StateValidationError(
                "batched reference contains non-finite entries"
            )

        healths = [SolverHealth() for _ in range(lanes)]

        # Per-lane warm starts (scalar validation rules, applied lane-wise).
        Z = xp.to_host(self.lin.initial_guess(X0))
        if z_warm is not None:
            for lane, zw in enumerate(z_warm):
                if zw is None:
                    continue
                zw = HOST.asarray(zw)
                if tuple(zw.shape) != (p.nz,):
                    raise SolverError(
                        f"warm start has shape {tuple(zw.shape)}, "
                        f"expected ({p.nz},)"
                    )
                if bool(HOST.scalar(HOST.all(HOST.isfinite(zw)))):
                    Z[lane] = zw
                else:
                    healths[lane].warm_start_reseeded = True
                    healths[lane].note("warm_start_reseeded")
        Z[:, p.state_slice(0)] = X0

        m = p.n_ineq
        NU = HOST.zeros((lanes, p.n_eq))
        if nu_warm is not None:
            for lane, nw in enumerate(nu_warm):
                if nw is None:
                    continue
                arr = HOST.asarray(nw)
                if tuple(arr.shape) == (p.n_eq,):
                    if bool(HOST.scalar(HOST.all(HOST.isfinite(arr)))):
                        NU[lane] = arr
                    else:
                        healths[lane].warm_start_reseeded = True
                        healths[lane].note("nu_warm_reseeded")
        LAM = HOST.zeros((lanes, m))
        if lam_warm is not None:
            for lane, lw in enumerate(lam_warm):
                if lw is None:
                    continue
                arr = HOST.asarray(lw)
                if tuple(arr.shape) == (m,):
                    arr = HOST.maximum(arr, 0.0)
                    if bool(HOST.scalar(HOST.all(HOST.isfinite(arr)))):
                        LAM[lane] = arr
                    else:
                        healths[lane].warm_start_reseeded = True
                        healths[lane].note("lam_warm_reseeded")

        rho = HOST.full((lanes,), opt.penalty_init)
        lm = HOST.full((lanes,), opt.regularization)
        soft = (
            p.soft_inequality_mask() if m else HOST.zeros((0,), dtype="bool")
        )
        hard = ~soft
        n_soft = int(soft.sum())
        nz = p.nz
        scale = p.variable_scales()
        # Device-resident scaling constants, uploaded once per solve.
        scale_dev = xp.asarray(scale)
        scale_outer = scale_dev[None, None, :] * scale_dev[None, :, None]
        dg = xp.arange(nz)

        clocks = [
            (
                budgets[lane].start()
                if budgets is not None and budgets[lane] is not None
                else None
            )
            for lane in range(lanes)
        ]
        max_outer = HOST.full((lanes,), opt.max_iterations, dtype="int")
        qp_caps: List[Optional[int]] = [None] * lanes
        if budgets is not None:
            for lane, bud in enumerate(budgets):
                if bud is None:
                    continue
                if bud.sqp_iterations is not None:
                    max_outer[lane] = min(
                        int(max_outer[lane]), bud.sqp_iterations
                    )
                qp_caps[lane] = bud.qp_iterations

        histories: List[List[float]] = [[] for _ in range(lanes)]
        windows: List[List[float]] = [[] for _ in range(lanes)]
        converged = HOST.zeros((lanes,), dtype="bool")
        diverged = HOST.zeros((lanes,), dtype="bool")
        budget_hit = HOST.zeros((lanes,), dtype="bool")
        cap_frozen = HOST.zeros((lanes,), dtype="bool")
        active = HOST.ones((lanes,), dtype="bool")
        iterations = HOST.zeros((lanes,), dtype="int")
        qp_total = HOST.zeros((lanes,), dtype="int")
        best_kkt = HOST.full((lanes,), float("inf"))
        bestZ, bestNU, bestLAM = Z.copy(), NU.copy(), LAM.copy()
        have_cert = HOST.zeros((lanes,), dtype="bool")
        CERT_NU = HOST.zeros_like(NU)
        CERT_LAM = HOST.zeros_like(LAM)

        report = BatchSolveReport(lanes=lanes)
        # ADMM warm state, full-lane host buffers (x/z/y iterates + adapted
        # rho), sliced per sub-batch; lazily sized from the first QP result.
        admm_state: Optional[dict] = None

        def _freeze_cap(lane: int) -> None:
            active[lane] = False
            cap_frozen[lane] = True
            iterations[lane] = int(max_outer[lane])

        global_max = int(max_outer.max()) if lanes else 0
        for it in range(1, global_max + 1):
            idx = HOST.flatnonzero(active)
            if not idx.size:
                break
            # Loop-top budget ladder (scalar order: cap bound, then clock).
            for lane in idx:
                lane = int(lane)
                if it > max_outer[lane]:
                    _freeze_cap(lane)
                elif clocks[lane] is not None and (
                    clocks[lane].expired()
                    or clocks[lane].qp_exhausted(int(qp_total[lane]))
                ):
                    active[lane] = False
                    budget_hit[lane] = True
                    iterations[lane] = it - 1
            idx = HOST.flatnonzero(active)
            if not idx.size:
                break
            iterations[idx] = it
            report.sqp_lane_iterations += int(idx.size)
            report.sqp_lane_slots += lanes

            Za = Z[idx]
            X0a = X0[idx]
            Ra = R[idx] if R is not None else None

            t_lin = perf_counter()
            grad = self.lin.objective_gradient(Za, Ra)
            H = self.lin.objective_gauss_newton(Za, Ra)
            g_eq = self.lin.equality_constraints(Za, X0a, Ra)
            G = self.lin.equality_jacobian(Za, Ra)
            h = self.lin.inequality_constraints(Za, Ra)
            J = self.lin.inequality_jacobian(Za, Ra)
            self.stats["linearize_time"] += perf_counter() - t_lin

            Hs = H * scale_outer
            Hs[:, dg, dg] += xp.asarray(lm[idx])[:, None]
            grad_s = grad * scale_dev
            Gs = G * scale_dev[None, None, :]
            Js = J * scale_dev[None, None, :] if m else J

            # The per-iteration host materialization: one small reduction
            # vector (KKT) plus the gradient rows for the descent test.
            kkt_dev = _kkt_batch(
                xp, grad, G, g_eq, J, h,
                xp.asarray(NU[idx]), xp.asarray(LAM[idx]),
            )
            certs = have_cert[idx]
            if certs.any():
                kkt_cert = _kkt_batch(
                    xp, grad, G, g_eq, J, h,
                    xp.asarray(CERT_NU[idx]), xp.asarray(CERT_LAM[idx]),
                )
                kkt_dev = xp.where(
                    xp.asarray(certs, dtype="bool"),
                    xp.minimum(kkt_dev, kkt_cert),
                    kkt_dev,
                )
            kkt = xp.to_host(kkt_dev)
            grad_h = xp.to_host(grad)
            for k_l, lane in enumerate(idx):
                lane = int(lane)
                histories[lane].append(float(kkt[k_l]))
                if kkt[k_l] < best_kkt[lane]:
                    best_kkt[lane] = kkt[k_l]
                    bestZ[lane] = Z[lane]
                    bestNU[lane] = NU[lane]
                    bestLAM[lane] = LAM[lane]
                if kkt[k_l] < opt.tolerance:
                    converged[lane] = True
                    active[lane] = False
                elif len(histories[lane]) > 1:
                    if histories[lane][-1] > histories[lane][-2]:
                        lm[lane] = min(lm[lane] * 10.0, 1e2)
                    else:
                        lm[lane] = max(lm[lane] / 3.0, opt.regularization)

            work = active[idx]
            if not work.any():
                continue
            w = HOST.flatnonzero(work)
            gl = idx[w]  # global lane ids of the working sub-batch
            k = int(gl.size)
            w_dev = xp.asarray(w, dtype="int")

            qp_args, qperm = self._subproblem_batch(
                Hs[w_dev],
                grad_s[w_dev],
                Gs[w_dev],
                Js[w_dev] if m else J[w_dev],
                g_eq[w_dev],
                h[w_dev],
            )
            qp_max = (
                opt.qp.admm_max_iterations
                if self.qp_method == "admm"
                else opt.qp.max_iterations
            )
            caps = HOST.asarray(
                [
                    min(
                        qp_max,
                        qp_caps[int(lane)] - int(qp_total[int(lane)]),
                    )
                    if qp_caps[int(lane)] is not None
                    else qp_max
                    for lane in gl
                ],
                dtype="int",
            )
            lane_deadlines = [
                clocks[int(lane)].deadline
                for lane in gl
                if clocks[int(lane)] is not None
                and clocks[int(lane)].deadline is not None
            ]
            deadline = min(lane_deadlines) if lane_deadlines else None

            if self.qp_method == "admm":
                # Lazy import: repro.firstorder.batch reaches back into
                # repro.batch for the seam, so a module-level import here
                # would close an import cycle.
                from repro.firstorder.batch import solve_qp_admm_batch

                warm_in = None
                if admm_state is not None:
                    warm_in = {
                        "x": admm_state["x"][gl],
                        "z": admm_state["z"][gl],
                        "y": admm_state["y"][gl],
                        "rho": admm_state["rho"][gl],
                    }
                qp = solve_qp_admm_batch(
                    *[
                        xp.to_host(a) if a is not None else None
                        for a in qp_args[:6]
                    ],
                    opt.qp,
                    deadline=deadline,
                    iteration_caps=caps,
                    backend=xp,
                    warm=warm_in,
                )
                if qp.warm is not None:
                    if admm_state is None:
                        admm_state = {
                            "x": HOST.zeros(
                                (lanes, int(qp.warm["x"].shape[1]))
                            ),
                            "z": HOST.zeros(
                                (lanes, int(qp.warm["z"].shape[1]))
                            ),
                            "y": HOST.zeros(
                                (lanes, int(qp.warm["y"].shape[1]))
                            ),
                            "rho": HOST.full((lanes,), opt.qp.admm_rho),
                        }
                    admm_state["x"][gl] = qp.warm["x"]
                    admm_state["z"][gl] = qp.warm["z"]
                    admm_state["y"][gl] = qp.warm["y"]
                    admm_state["rho"][gl] = qp.warm["rho"]

                # ---- method-health fallback ladder (lane-scatter rescue) --
                # Lanes whose first-order run ended stalled, diverged, or
                # failed (and that the rescue polish could not repair) are
                # gathered and re-solved through the batched interior-point
                # path, then scattered back before the post-QP ladder
                # classifies them.  Deadline-stopped lanes are left alone —
                # rescue work past a deadline breaks the budget contract.
                # Warm-start hygiene: the stalled ADMM iterate must never
                # seed a later solve, so rescued rows of ``admm_state`` are
                # reset to the cold-start pattern (zeros + configured rho).
                if opt.qp.admm_fallback:
                    resc = []
                    for k_l in range(k):
                        lane = int(gl[k_l])
                        cond = qp.stats[k_l].conditioning
                        wants = qp.status[k_l] == "failed" or (
                            cond is not None and cond.needs_fallback
                        )
                        if not wants or bool(qp.budget_exhausted[k_l]):
                            continue
                        if clocks[lane] is not None and clocks[lane].expired():
                            continue
                        if qp_caps[lane] is not None:
                            left = (
                                qp_caps[lane]
                                - int(qp_total[lane])
                                - int(qp.iterations[k_l])
                            )
                            if left < 1:
                                continue
                        resc.append(k_l)
                    if resc:
                        r_dev = xp.asarray(
                            HOST.asarray(resc, dtype="int"), dtype="int"
                        )
                        r_caps = HOST.asarray(
                            [
                                min(
                                    opt.qp.max_iterations,
                                    qp_caps[int(gl[k_l])]
                                    - int(qp_total[int(gl[k_l])])
                                    - int(qp.iterations[k_l]),
                                )
                                if qp_caps[int(gl[k_l])] is not None
                                else opt.qp.max_iterations
                                for k_l in resc
                            ],
                            dtype="int",
                        )
                        rqp = solve_qp_batch(
                            *[
                                a[r_dev] if a is not None else None
                                for a in qp_args[:6]
                            ],
                            opt.qp,
                            bandwidth=qp_args[6],
                            deadline=deadline,
                            iteration_caps=r_caps,
                            backend=xp,
                        )
                        report.qp_lane_iterations += rqp.batch.lane_iterations
                        report.qp_lane_slots += rqp.batch.lane_slots
                        for j, k_l in enumerate(resc):
                            lane = int(gl[k_l])
                            healths[lane].method_fallbacks += 1
                            healths[lane].note(f"admm_fallback_it{it}")
                            if admm_state is not None:
                                admm_state["x"][lane] = 0.0
                                admm_state["z"][lane] = 0.0
                                admm_state["y"][lane] = 0.0
                                admm_state["rho"][lane] = opt.qp.admm_rho
                            qp.x[k_l] = rqp.x[j]
                            qp.nu[k_l] = rqp.nu[j]
                            qp.lam[k_l] = rqp.lam[j]
                            qp.slacks[k_l] = rqp.slacks[j]
                            qp.converged[k_l] = rqp.converged[j]
                            qp.residual[k_l] = rqp.residual[j]
                            qp.status[k_l] = rqp.status[j]
                            qp.budget_exhausted[k_l] = rqp.budget_exhausted[j]
                            qp.iterations[k_l] = int(qp.iterations[k_l]) + int(
                                rqp.iterations[j]
                            )
                            qs, rs = qp.stats[k_l], rqp.stats[j]
                            qs.factorize_time += rs.factorize_time
                            qs.substitute_time += rs.substitute_time
                            qs.factor_flops += rs.factor_flops
                            qs.substitute_flops += rs.substitute_flops
                            qs.factorizations += rs.factorizations
                            qs.banded_factorizations += rs.banded_factorizations
                            qs.retries += rs.retries
                            qs.regularization_max = max(
                                qs.regularization_max, rs.regularization_max
                            )
            else:
                qp = solve_qp_batch(
                    *qp_args[:6],
                    opt.qp,
                    bandwidth=qp_args[6],
                    deadline=deadline,
                    iteration_caps=caps,
                    backend=xp,
                )

            qp_x = HOST.asarray(qp.x)
            qp_nu = HOST.asarray(qp.nu)
            qp_lam = HOST.asarray(qp.lam)
            nq = int(qp_x.shape[1])
            if qperm is not None:
                X_qp = HOST.empty((k, nq))
                X_qp[:, qperm] = qp_x
            else:
                X_qp = qp_x
            if n_soft:
                D = X_qp[:, :nz] * scale
                n_hard = m - n_soft
                NU_QP = qp_nu
                LAM_QP = HOST.zeros((k, m))
                LAM_QP[:, hard] = qp_lam[:, :n_hard]
                LAM_QP[:, soft] = qp_lam[:, n_hard : n_hard + n_soft]
            else:
                D = X_qp * scale
                NU_QP, LAM_QP = qp_nu, qp_lam

            report.qp_lane_iterations += qp.batch.lane_iterations
            report.qp_lane_slots += qp.batch.lane_slots
            for k_l, lane in enumerate(gl):
                lane = int(lane)
                qp_total[lane] += int(qp.iterations[k_l])
                qs = qp.stats[k_l]
                self.stats["factorize_time"] += qs.factorize_time
                self.stats["substitute_time"] += qs.substitute_time
                self.stats["factor_flops"] += qs.factor_flops
                self.stats["substitute_flops"] += qs.substitute_flops
                self.stats["factorizations"] += qs.factorizations
                self.stats["banded_factorizations"] += qs.banded_factorizations
                healths[lane].factorization_retries += qs.retries
                healths[lane].regularization_max = max(
                    healths[lane].regularization_max, qs.regularization_max
                )

            # Per-lane post-QP ladder: factorization failure -> diverged;
            # deadline exhaustion -> budget stop (direction discarded);
            # non-finite direction -> reject + escalate damping.
            proceed = HOST.ones((k,), dtype="bool")
            for k_l, lane in enumerate(gl):
                lane = int(lane)
                if qp.status[k_l] == "failed":
                    healths[lane].note(f"qp_failed_it{it}")
                    diverged[lane] = True
                    active[lane] = False
                    proceed[k_l] = False
                    continue
                if clocks[lane] is not None and (
                    bool(qp.budget_exhausted[k_l]) or clocks[lane].expired()
                ):
                    budget_hit[lane] = True
                    active[lane] = False
                    proceed[k_l] = False
                    continue
                finite = (
                    bool(HOST.scalar(HOST.all(HOST.isfinite(D[k_l]))))
                    and bool(HOST.scalar(HOST.all(HOST.isfinite(NU_QP[k_l]))))
                    and (
                        not m
                        or bool(
                            HOST.scalar(HOST.all(HOST.isfinite(LAM_QP[k_l])))
                        )
                    )
                )
                if not finite:
                    healths[lane].steps_rejected += 1
                    healths[lane].note(f"nonfinite_step_it{it}")
                    if lm[lane] >= 1e2:
                        diverged[lane] = True
                        active[lane] = False
                    else:
                        lm[lane] = min(lm[lane] * 100.0, 1e2)
                    proceed[k_l] = False

            if not proceed.any():
                continue
            ls = HOST.flatnonzero(proceed)
            ll = gl[ls]  # lanes entering the line search
            Dl = D[ls]
            NU_l, LAM_l = NU_QP[ls], LAM_QP[ls]
            grad_l = grad_h[w][ls]

            # -- batched L1 exact-penalty merit line search ----------------
            mult_inf = HOST.maximum(
                _maxabs_rows(HOST, NU_l),
                HOST.maximum(
                    _maxabs_rows(HOST, LAM_l)
                    if m
                    else HOST.zeros((int(ls.size),)),
                    opt.penalty_init,
                ),
            )
            for k_l, lane in enumerate(ll):
                lane = int(lane)
                if rho[lane] < 2.0 * mult_inf[k_l]:
                    rho[lane] = max(rho[lane], 2.0 * mult_inf[k_l])
                    windows[lane].clear()  # the merit scale changed
            Rl = R[ll] if R is not None else None
            merit0, viol0 = self._merit_batch(Z[ll], X0[ll], Rl, rho[ll], soft)
            merit_ref = HOST.empty((int(ls.size),))
            for k_l, lane in enumerate(ll):
                lane = int(lane)
                windows[lane].append(float(merit0[k_l]))
                if len(windows[lane]) > opt.watchdog:
                    windows[lane].pop(0)
                merit_ref[k_l] = max(windows[lane])
            descent = HOST.einsum("bi,bi->b", grad_l, Dl) - viol0
            step_inf = _maxabs_rows(HOST, Dl / scale)
            with HOST.errstate():
                alpha = HOST.where(
                    step_inf > 0.0,
                    HOST.minimum(
                        1.0,
                        opt.step_clip
                        / HOST.where(step_inf > 0, step_inf, 1.0),
                    ),
                    1.0,
                )
            accepted = HOST.zeros((int(ls.size),), dtype="bool")
            floor = opt.armijo * HOST.minimum(descent, 0.0)
            for _ in range(opt.max_backtracks):
                un = HOST.flatnonzero(~accepted)
                if not un.size:
                    break
                trial = Z[ll[un]] + alpha[un, None] * Dl[un]
                Ru = Rl[un] if Rl is not None else None
                merit_t, _ = self._merit_batch(
                    trial, X0[ll[un]], Ru, rho[ll[un]], soft
                )
                passed = merit_t <= merit_ref[un] + alpha[un] * floor[un]
                accepted[un[passed]] = True
                alpha[un[~passed]] *= 0.5

            Z[ll] = Z[ll] + alpha[:, None] * Dl
            NU[ll] = NU[ll] + alpha[:, None] * (NU_l - NU[ll])
            if m:
                LAM[ll] = LAM[ll] + alpha[:, None] * (LAM_l - LAM[ll])
            CERT_NU[ll] = NU_l
            CERT_LAM[ll] = LAM_l
            have_cert[ll] = True

        # Lanes that completed their final permitted iteration without
        # freezing exhausted their cap (scalar loop-exit path).
        for lane in HOST.flatnonzero(active):
            _freeze_cap(int(lane))

        self.stats["solves"] += lanes
        self.stats["sqp_iterations"] += int(iterations.sum())
        self.stats["qp_iterations"] += int(qp_total.sum())
        if self.lin.codegen_stats is not None:
            self.stats["codegen"] = self.lin.codegen_stats.as_dict()

        wall = perf_counter() - t_solve
        objectives = xp.to_host(self.lin.objective(Z, R))
        results: List[IPMResult] = []
        for lane in range(lanes):
            hist = histories[lane]
            if (
                cap_frozen[lane]
                and not converged[lane]
                and not budget_hit[lane]
            ):
                budget_hit[lane] = max_outer[lane] < opt.max_iterations
            if (
                not converged[lane]
                and hist
                and best_kkt[lane] < 0.1 * hist[-1]
            ):
                Z[lane] = bestZ[lane]
                NU[lane] = bestNU[lane]
                LAM[lane] = bestLAM[lane]
                hist[-1] = float(best_kkt[lane])
                objectives[lane] = p.objective(
                    Z[lane], R[lane] if R is not None else None
                )
            if converged[lane]:
                status = "converged"
            elif diverged[lane]:
                status = "diverged"
            elif budget_hit[lane]:
                status = "budget_exhausted"
            else:
                status = "max_iterations"
            results.append(
                IPMResult(
                    z=Z[lane].copy(),
                    converged=bool(converged[lane]),
                    iterations=int(iterations[lane]),
                    qp_iterations=int(qp_total[lane]),
                    objective=float(objectives[lane]),
                    kkt_residual=hist[-1] if hist else float("inf"),
                    residual_history=hist,
                    nu=NU[lane].copy(),
                    lam=LAM[lane].copy() if m else None,
                    status=status,
                    solve_time=wall,
                    health=healths[lane],
                )
            )
        self.last_report = report
        return results, report

    # -- shared internals --------------------------------------------------

    def _subproblem_batch(self, Hs, grad_s, Gs, Js, g_eq, h):
        """Batched twin of ``InteriorPointSolver._subproblem_data``.

        Inputs and outputs are backend arrays; the returned permutation is
        a host index array (it is applied to host QP results too).
        """
        p = self.problem
        opt = self.options
        xp = self.xp
        donor = self._donor
        nz = p.nz
        m = p.n_ineq
        soft = (
            p.soft_inequality_mask() if m else HOST.zeros((0,), dtype="bool")
        )
        hard = ~soft
        n_soft = int(soft.sum())
        k = int(Hs.shape[0])
        if not n_soft:
            qperm = donor._qp_perm
            if qperm is None:
                return (
                    Hs,
                    grad_s,
                    Gs,
                    -g_eq,
                    Js if m else None,
                    -h if m else None,
                    None,
                ), None
            qp_dev = xp.asarray(qperm, dtype="int")
            return (
                Hs[:, qp_dev][:, :, qp_dev],
                grad_s[:, qp_dev],
                Gs[:, :, qp_dev],
                -g_eq,
                Js[:, :, qp_dev] if m else None,
                -h if m else None,
                donor._qp_bandwidth,
            ), qperm

        n_ext = nz + n_soft
        n_hard = m - n_soft
        hard_dev = xp.asarray(hard, dtype="bool")
        soft_dev = xp.asarray(soft, dtype="bool")
        H_ext = xp.zeros((k, n_ext, n_ext))
        H_ext[:, :nz, :nz] = Hs
        se = xp.arange(nz, n_ext)
        H_ext[:, se, se] = opt.soft_quadratic
        g_ext = xp.concatenate(
            [grad_s, xp.full((k, n_soft), opt.soft_penalty)], axis=1
        )
        G_ext = xp.concatenate(
            [Gs, xp.zeros((k, int(Gs.shape[1]), n_soft))], axis=2
        )
        J_ext = xp.zeros((k, m + n_soft, n_ext))
        d_ext = xp.zeros((k, m + n_soft))
        J_ext[:, :n_hard, :nz] = Js[:, hard_dev]
        d_ext[:, :n_hard] = -h[:, hard_dev]
        J_ext[:, n_hard : n_hard + n_soft, :nz] = Js[:, soft_dev]
        J_ext[:, n_hard : n_hard + n_soft, nz:] = -xp.eye(n_soft)
        d_ext[:, n_hard : n_hard + n_soft] = -h[:, soft_dev]
        J_ext[:, n_hard + n_soft :, nz:] = -xp.eye(n_soft)
        qperm = donor._qp_perm_ext
        if qperm is None:
            return (H_ext, g_ext, G_ext, -g_eq, J_ext, d_ext, None), None
        qp_dev = xp.asarray(qperm, dtype="int")
        return (
            H_ext[:, qp_dev][:, :, qp_dev],
            g_ext[:, qp_dev],
            G_ext[:, :, qp_dev],
            -g_eq,
            J_ext[:, :, qp_dev],
            d_ext,
            donor._qp_bandwidth_ext,
        ), qperm

    def _merit_batch(self, Z, X0, R, rho, soft):
        """Batched twin of ``InteriorPointSolver._merit``.

        Accepts host iterates, computes on the backend, and returns host
        merit/violation rows (the line search is a host decision ladder).
        """
        p = self.problem
        opt = self.options
        xp = self.xp
        f = self.lin.objective(Z, R)
        g = self.lin.equality_constraints(Z, X0, R)
        rho_dev = xp.asarray(rho)
        viol = rho_dev * xp.sum(xp.abs(g), axis=1)
        if p.n_ineq:
            h = self.lin.inequality_constraints(Z, R)
            hpos = xp.maximum(h, 0.0)
            hard_dev = xp.asarray(~soft, dtype="bool")
            soft_dev = xp.asarray(soft, dtype="bool")
            viol = viol + rho_dev * xp.sum(hpos[:, hard_dev], axis=1)
            viol = viol + opt.soft_penalty * xp.sum(hpos[:, soft_dev], axis=1)
        return xp.to_host(f + viol), xp.to_host(viol)
