"""Baseline platform specifications (paper Table IV) and power figures.

No ARM A57 / Xeon E3 / Tegra X2 / GTX 650 Ti / Tesla K40 hardware is
available in this reproduction, so each platform is an analytic throughput
model (see :mod:`repro.baselines.cost_model`).  The *specs* below are the
public figures from Table IV; the *active power* numbers are derived from
the paper's own measured performance-per-watt ratios (e.g. the paper's
3.4 W RoboX, 29.4x speedup and 22.1x perf/W over the ARM A57 imply the A57
burned ~2.6 W during the benchmark), cross-checked against the TDPs — the
Tegra X2 derivation lands at 7.6 W against its 7.5 W TDP and the GTX 650 Ti
at ~111 W against its 110 W TDP, which says the derivation is sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["PlatformSpec", "CPU_PLATFORMS", "GPU_PLATFORMS", "ALL_PLATFORMS"]


@dataclass(frozen=True)
class PlatformSpec:
    """One baseline platform.

    Attributes:
        name: display name (Table IV).
        kind: "cpu" or "gpu".
        cores: physical cores (CPU) or CUDA cores (GPU).
        frequency_ghz: sustained clock.
        flops_per_cycle_per_core: SIMD/FMA width in single-precision
            flops/cycle/core (NEON = 8 with FMA, AVX2+FMA = 32, CUDA = 2).
        efficiency: achieved fraction of peak on the MPC solver kernels
            (small, dependency-heavy matrices run far from peak; fitted so
            the six-benchmark geomean matches the paper's headline ratios —
            see DESIGN.md "Substitutions").
        memory_bw_gbs: sustained memory bandwidth (GB/s).
        llc_bytes: last-level cache size; working sets beyond it stream
            from DRAM and pay the bandwidth term.
        launch_overhead_us: fixed per-solver-iteration overhead (kernel
            launches + sync for GPUs, call/loop overhead for CPUs).
        active_power_w: measured-equivalent power burned during the
            benchmark (derivation in the module docstring).
        tdp_w: vendor TDP (Table IV).
        technology_nm: process node (Table IV).
        memory_gb: board/system memory (Table IV).
    """

    name: str
    kind: str
    cores: int
    frequency_ghz: float
    flops_per_cycle_per_core: float
    efficiency: float
    memory_bw_gbs: float
    llc_bytes: int
    launch_overhead_us: float
    active_power_w: float
    tdp_w: float
    technology_nm: int
    memory_gb: float

    @property
    def peak_gflops(self) -> float:
        return self.cores * self.frequency_ghz * self.flops_per_cycle_per_core

    @property
    def effective_gflops(self) -> float:
        return self.peak_gflops * self.efficiency


#: quad-core ARM Cortex-A57 cluster of the Jetson TX2 (paper runs 4 threads)
ARM_A57 = PlatformSpec(
    name="ARM Cortex A57",
    kind="cpu",
    cores=4,
    frequency_ghz=2.0,
    flops_per_cycle_per_core=8.0,  # 128-bit NEON FMA
    efficiency=0.052,
    memory_bw_gbs=25.0,
    llc_bytes=2 * 1024 * 1024,
    launch_overhead_us=6.0,
    active_power_w=2.6,
    tdp_w=2.5,
    technology_nm=16,
    memory_gb=2.0,
)

#: Intel Xeon E3-1246 v3 (Haswell, 4C/8T, AVX2+FMA; paper runs 8 threads)
XEON_E3 = PlatformSpec(
    name="Intel Xeon E3",
    kind="cpu",
    cores=4,
    frequency_ghz=3.6,
    flops_per_cycle_per_core=32.0,  # 2x 256-bit FMA
    efficiency=0.047,
    memory_bw_gbs=25.6,
    llc_bytes=8 * 1024 * 1024,
    launch_overhead_us=1.5,
    active_power_w=37.0,
    tdp_w=84.0,
    technology_nm=22,
    memory_gb=16.0,
)

TEGRA_X2 = PlatformSpec(
    name="Tegra X2",
    kind="gpu",
    cores=256,
    frequency_ghz=0.854,
    flops_per_cycle_per_core=2.0,
    efficiency=0.09,
    memory_bw_gbs=58.0,
    llc_bytes=512 * 1024,
    launch_overhead_us=42.0,
    active_power_w=7.6,
    tdp_w=7.5,
    technology_nm=28,
    memory_gb=2.0,
)

GTX_650_TI = PlatformSpec(
    name="GTX 650 Ti",
    kind="gpu",
    cores=768,
    frequency_ghz=0.928,
    flops_per_cycle_per_core=2.0,
    efficiency=0.075,
    memory_bw_gbs=86.4,
    llc_bytes=256 * 1024,
    launch_overhead_us=24.0,
    active_power_w=111.0,
    tdp_w=110.0,
    technology_nm=28,
    memory_gb=1.0,
)

TESLA_K40 = PlatformSpec(
    name="Tesla K40",
    kind="gpu",
    cores=2880,
    frequency_ghz=0.875,
    flops_per_cycle_per_core=2.0,
    efficiency=0.085,
    memory_bw_gbs=288.0,
    llc_bytes=1536 * 1024,
    launch_overhead_us=9.0,
    active_power_w=235.0,
    tdp_w=235.0,
    technology_nm=28,
    memory_gb=12.0,
)

CPU_PLATFORMS: Tuple[PlatformSpec, ...] = (ARM_A57, XEON_E3)
GPU_PLATFORMS: Tuple[PlatformSpec, ...] = (TEGRA_X2, GTX_650_TI, TESLA_K40)
ALL_PLATFORMS: Dict[str, PlatformSpec] = {
    p.name: p for p in CPU_PLATFORMS + GPU_PLATFORMS
}
