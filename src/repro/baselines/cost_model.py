"""Analytic execution-time models for the baseline platforms.

The paper times 10000 *solver iterations* per benchmark (§VIII-A); the unit
of comparison is therefore the time of one interior-point iteration.  The
cost model maps the exact per-iteration operation counts (from the Program
Translator's M-DFG, which in turn comes from the symbolic expressions the
solver actually evaluates) onto each platform:

    t_iter = max(flops / effective_flops, bytes / memory_bw)
             + launch_overhead
             (x cache-spill derating when the working set exceeds the LLC)

* ``flops`` counts every primitive op of one iteration: the derivative /
  constraint evaluation templates across the horizon plus the banded KKT
  factorization and substitutions.  Transcendentals are weighted as
  ``NONLINEAR_FLOP_WEIGHT`` flops (a `sin` costs ~10-20 flops of pipeline
  time on these cores), divisions as ``DIV_FLOP_WEIGHT``.
* ``bytes`` is the KKT working set streamed once per iteration.
* GPUs pay a fixed per-iteration launch+sync overhead — the reason small-
  horizon MPC problems run poorly on discrete GPUs (and why the paper's
  RoboX beats the Tegra/GTX at N = 32 while the 2880-core K40 still wins on
  raw throughput).

The per-platform ``efficiency`` constants are fitted so the six-benchmark
geomean speedups land near the paper's headline numbers (see DESIGN.md);
per-benchmark spread, horizon scaling, and every sensitivity trend then
*emerge* from the real operation counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.platforms import PlatformSpec
from repro.compiler.mdfg import MDFG
from repro.errors import BaselineError

__all__ = ["IterationCost", "estimate_iteration_time", "working_set_bytes"]

#: flop-equivalents of the non-FMA primitives
NONLINEAR_FLOP_WEIGHT = 14.0
DIV_FLOP_WEIGHT = 7.0
SQRT_FLOP_WEIGHT = 7.0
_WORD = 4
#: throughput derating once the working set spills the last-level cache
_SPILL_DERATE = 0.55


@dataclass
class IterationCost:
    """Breakdown of one solver iteration on one platform."""

    platform: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    flops: float
    bytes_touched: float
    cache_spilled: bool


def _weighted_flops(op_counts: Dict[str, int]) -> float:
    total = 0.0
    for op, count in op_counts.items():
        if op in ("add", "sub", "mul", "neg"):
            total += count
        elif op == "div":
            total += count * DIV_FLOP_WEIGHT
        elif op == "sqrt":
            total += count * SQRT_FLOP_WEIGHT
        else:  # transcendental
            total += count * NONLINEAR_FLOP_WEIGHT
    return total


def working_set_bytes(graph: MDFG) -> float:
    """Approximate per-iteration KKT working set (banded factor + stage data).

    Derived from the solver-kernel parameters recorded in the M-DFG.
    """
    from repro.compiler.mdfg import NodeType

    total = 0.0
    for node in graph.nodes:
        if node.type != NodeType.KERNEL:
            continue
        p = node.params
        if node.op in ("cholesky_banded", "trsolve_banded"):
            total += p["n"] * min(p.get("band", p["n"]), p["n"]) * _WORD
        elif node.op == "cholesky":
            total += p["n"] * p["n"] * _WORD
        elif node.op == "block_outer":
            total += p["blocks"] * p["dim"] * p["dim"] * _WORD
        elif node.op == "matvec":
            total += p["m"] * p["n"] * _WORD
        else:
            total += p.get("n", 0) * 2 * _WORD
    return total


def estimate_iteration_time(
    graph: MDFG, platform: PlatformSpec, calibration: float = 1.0
) -> IterationCost:
    """Estimate the time of one solver iteration on ``platform``.

    Args:
        graph: the translated M-DFG of the benchmark problem.
        platform: platform spec.
        calibration: optional multiplicative adjustment (the harness fits
            one constant per platform against the paper's geomeans).
    """
    if calibration <= 0:
        raise BaselineError(f"calibration must be positive, got {calibration}")

    flops = _weighted_flops(graph.total_op_counts())
    bytes_touched = working_set_bytes(graph)

    eff_flops = platform.effective_gflops * 1e9
    spilled = bytes_touched > platform.llc_bytes
    if spilled:
        eff_flops *= _SPILL_DERATE

    compute = flops / eff_flops
    memory = (
        bytes_touched / (platform.memory_bw_gbs * 1e9) if spilled else 0.0
    )
    overhead = platform.launch_overhead_us * 1e-6

    seconds = (max(compute, memory) + overhead) * calibration
    return IterationCost(
        platform=platform.name,
        seconds=seconds,
        compute_seconds=compute * calibration,
        memory_seconds=memory * calibration,
        overhead_seconds=overhead * calibration,
        flops=flops,
        bytes_touched=bytes_touched,
        cache_spilled=spilled,
    )
