"""Baseline platform models and reference implementations (paper §VIII-A)."""

from repro.baselines.cost_model import (
    IterationCost,
    estimate_iteration_time,
    working_set_bytes,
)
from repro.baselines.platforms import (
    ALL_PLATFORMS,
    ARM_A57,
    CPU_PLATFORMS,
    GPU_PLATFORMS,
    GTX_650_TI,
    PlatformSpec,
    TEGRA_X2,
    TESLA_K40,
    XEON_E3,
)
from repro.baselines.reference_solver import (
    reference_kkt_step,
    reference_qp_objective,
    reference_solve_qp,
)

__all__ = [
    "PlatformSpec",
    "ALL_PLATFORMS",
    "CPU_PLATFORMS",
    "GPU_PLATFORMS",
    "ARM_A57",
    "XEON_E3",
    "TEGRA_X2",
    "GTX_650_TI",
    "TESLA_K40",
    "IterationCost",
    "estimate_iteration_time",
    "working_set_bytes",
    "reference_kkt_step",
    "reference_solve_qp",
    "reference_qp_objective",
]
