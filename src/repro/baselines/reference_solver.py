"""Dense NumPy reference implementations for cross-validation.

Stands in for the ACADO/HPMPC software stack of the paper's CPU baseline:
an independent, dense-linear-algebra implementation of the same QP
subproblem and KKT step, built on ``numpy.linalg`` instead of the
from-scratch kernels.  Tests solve the same problems with both paths and
require matching answers — guarding the hand-written Cholesky/substitution
and the condensed Schur elimination against silent numerical bugs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import BaselineError

__all__ = ["reference_kkt_step", "reference_solve_qp", "reference_qp_objective"]


def reference_kkt_step(
    Phi: np.ndarray,
    G: np.ndarray,
    rhs1: np.ndarray,
    rhs2: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the saddle system ``[[Phi, G^T], [G, 0]] [dx, dnu] = [rhs1, rhs2]``
    by forming the full KKT matrix and calling ``numpy.linalg.solve``.
    """
    n = Phi.shape[0]
    p = G.shape[0]
    K = np.zeros((n + p, n + p))
    K[:n, :n] = Phi
    K[:n, n:] = G.T
    K[n:, :n] = G
    sol = np.linalg.solve(K, np.concatenate([rhs1, rhs2]))
    return sol[:n], sol[n:]


def reference_solve_qp(
    H: np.ndarray,
    g: np.ndarray,
    G: Optional[np.ndarray],
    b: Optional[np.ndarray],
    J: Optional[np.ndarray],
    d: Optional[np.ndarray],
    tol: float = 1e-9,
    max_iterations: int = 200,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense long-step barrier method for the convex QP (NumPy linalg only).

    Same problem form as :func:`repro.mpc.qp.solve_qp`; returns
    ``(x, nu, lam)``.  Deliberately a *different* algorithm (log-barrier with
    centering steps rather than Mehrotra predictor-corrector) so agreement
    between the two is meaningful.
    """
    n = g.shape[0]
    has_eq = G is not None and G.shape[0] > 0
    has_in = J is not None and J.shape[0] > 0
    p = G.shape[0] if has_eq else 0
    m = J.shape[0] if has_in else 0

    if not has_in:
        # Equality-only QP: one KKT solve.
        if has_eq:
            x, nu = reference_kkt_step(H, G, -g, b)
            return x, nu, np.zeros(0)
        return np.linalg.solve(H, -g), np.zeros(0), np.zeros(0)

    # Strictly feasible start for the inequalities w.r.t. slack variables.
    x = np.zeros(n)
    s = np.maximum(1.0, d - J @ x)
    lam = np.ones(m)
    nu = np.zeros(p)
    mu = 1.0

    for _ in range(max_iterations):
        r_dual = H @ x + g + J.T @ lam + (G.T @ nu if has_eq else 0.0)
        r_eq = (G @ x - b) if has_eq else np.zeros(0)
        r_in = J @ x + s - d
        r_comp = s * lam - mu
        residual = max(
            np.abs(r_dual).max(),
            np.abs(r_eq).max() if p else 0.0,
            np.abs(r_in).max(),
            float(s @ lam) / m,
        )
        if residual < tol and mu < tol:
            break

        w = lam / s
        Phi = H + (J.T * w) @ J
        rhs1 = -(r_dual + J.T @ (w * r_in - r_comp / s))
        if has_eq:
            dx, dnu = reference_kkt_step(Phi, G, rhs1, -r_eq)
        else:
            dx = np.linalg.solve(Phi, rhs1)
            dnu = np.zeros(0)
        ds = -r_in - J @ dx
        dlam = (-r_comp - lam * ds) / s

        alpha = 1.0
        for vec, dvec in ((s, ds), (lam, dlam)):
            neg = dvec < 0
            if np.any(neg):
                alpha = min(alpha, float(np.min(-0.99 * vec[neg] / dvec[neg])))
        x = x + alpha * dx
        nu = nu + alpha * dnu
        s = s + alpha * ds
        lam = lam + alpha * dlam
        mu = max(1e-14, 0.2 * float(s @ lam) / m)
    else:
        raise BaselineError("reference QP solver did not converge")

    return x, nu, lam


def reference_qp_objective(H: np.ndarray, g: np.ndarray, x: np.ndarray) -> float:
    """``1/2 x^T H x + g^T x`` for optimality comparisons."""
    return 0.5 * float(x @ H @ x) + float(g @ x)
