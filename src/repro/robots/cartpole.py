"""CartPole extra benchmark: cart-mounted inverted pendulum, stabilization.

Not part of Table III — this is the chaos harness's default robot: small
(4 states, 1 input), stiff enough that injected sensor/solver faults
visibly perturb the closed loop, and cheap enough that fault campaigns run
hundreds of ticks in CI.  It registers as an *extra* benchmark (resolved by
name via :func:`repro.robots.registry.resolve`) so the paper-pinned
``BENCHMARK_NAMES`` tuple stays exactly the six Table III robots.

Model: cart of mass ``M`` on a friction-less track, pole of mass ``m`` and
length ``l`` hinged on the cart, ``angle`` measured from upright.  With
``den = M + m sin^2(angle)``:

    acc       = (force + m sin(angle) (l ang_vel^2 - g cos(angle))) / den
    ang_acc   = (g sin(angle) - acc cos(angle)) / l

Task: drive the pole upright and the cart to a reference position while
penalizing force; the single physical constraint is the force bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import Penalty, Task
from repro.robots.base import RobotBenchmark
from repro.symbolic import Var, cos, sin

__all__ = ["CartPoleParams", "build_model", "build_task", "build_benchmark"]


@dataclass(frozen=True)
class CartPoleParams:
    """Physical and task parameters."""

    cart_mass: float = 1.0  # kg
    pole_mass: float = 0.2  # kg
    pole_length: float = 0.5  # m (pivot to center of mass)
    gravity: float = 9.81  # m/s^2
    force_bound: float = 12.0  # N
    pos_weight: float = 2.0
    angle_weight: float = 12.0
    vel_weight: float = 0.5
    ang_vel_weight: float = 0.5
    effort_weight: float = 0.02
    dt: float = 0.05


def build_model(params: CartPoleParams = CartPoleParams()) -> RobotModel:
    """Cart-pole dynamics with the pole angle measured from upright."""
    p = params
    angle, vel, ang_vel = Var("angle"), Var("vel"), Var("ang_vel")
    force = Var("force")
    den = p.cart_mass + p.pole_mass * sin(angle) * sin(angle)
    acc = (
        force
        + p.pole_mass
        * sin(angle)
        * (p.pole_length * ang_vel * ang_vel - p.gravity * cos(angle))
    ) / den
    ang_acc = (p.gravity * sin(angle) - acc * cos(angle)) / p.pole_length
    return RobotModel(
        name="CartPole",
        states=[
            VarSpec("pos"),
            VarSpec("angle"),
            VarSpec("vel"),
            VarSpec("ang_vel"),
        ],
        inputs=[VarSpec("force", -p.force_bound, p.force_bound)],
        dynamics={
            "pos": vel,
            "angle": ang_vel,
            "vel": acc,
            "ang_vel": ang_acc,
        },
        params={"force_bound": p.force_bound},
    )


def build_task(
    model: RobotModel, params: CartPoleParams = CartPoleParams()
) -> Task:
    """Upright stabilization with a cart position reference."""
    p = params
    pos, angle = Var("pos"), Var("angle")
    vel, ang_vel = Var("vel"), Var("ang_vel")
    force = Var("force")
    ref_pos = Var("ref_pos")
    return Task(
        name="stabilization",
        model=model,
        penalties=[
            Penalty("track_pos", pos - ref_pos, p.pos_weight, "running"),
            Penalty("upright", angle, p.angle_weight, "running"),
            Penalty("damp_vel", vel, p.vel_weight, "running"),
            Penalty("damp_ang_vel", ang_vel, p.ang_vel_weight, "running"),
            Penalty("effort", force, p.effort_weight, "running"),
        ],
        constraints=[],
        references=["ref_pos"],
    )


def build_benchmark(params: CartPoleParams = CartPoleParams()) -> RobotBenchmark:
    model = build_model(params)
    task = build_task(model, params)
    return RobotBenchmark(
        name="CartPole",
        model=model,
        task=task,
        x0=np.array([0.0, 0.15, 0.0, 0.0]),
        ref=np.array([0.0]),
        dt=params.dt,
        system_description="Cart-Mounted Inverted Pendulum",
        task_description="Upright Stabilization",
    )
