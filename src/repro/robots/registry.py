"""Registry of the six Table III benchmark robots.

The evaluation harness, tests and examples look benchmarks up by name here;
the ordering matches the paper's figures (MobileRobot, AutoVehicle, MicroSat,
Quadrotor, Manipulator, Hexacopter is the x-axis order of Figs. 5-12; Table
III lists them by size — we keep Table III order as canonical and the
harness reorders per figure).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.robots import (
    auto_vehicle,
    hexacopter,
    manipulator,
    microsat,
    mobile_robot,
    quadrotor,
)
from repro.robots.base import RobotBenchmark

__all__ = ["BENCHMARK_NAMES", "build_benchmark", "all_benchmarks"]

_BUILDERS: Dict[str, Callable[[], RobotBenchmark]] = {
    "MobileRobot": mobile_robot.build_benchmark,
    "Manipulator": manipulator.build_benchmark,
    "AutoVehicle": auto_vehicle.build_benchmark,
    "MicroSat": microsat.build_benchmark,
    "Quadrotor": quadrotor.build_benchmark,
    "Hexacopter": hexacopter.build_benchmark,
}

#: Canonical Table III ordering.
BENCHMARK_NAMES = tuple(_BUILDERS)


def build_benchmark(name: str) -> RobotBenchmark:
    """Build one benchmark by its Table III name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {list(_BUILDERS)}"
        ) from None
    return builder()


def all_benchmarks() -> List[RobotBenchmark]:
    """Build all six benchmarks in Table III order."""
    return [build_benchmark(name) for name in BENCHMARK_NAMES]
