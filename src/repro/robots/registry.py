"""Registry of the six Table III benchmark robots.

The evaluation harness, tests and examples look benchmarks up by name here;
the ordering matches the paper's figures (MobileRobot, AutoVehicle, MicroSat,
Quadrotor, Manipulator, Hexacopter is the x-axis order of Figs. 5-12; Table
III lists them by size — we keep Table III order as canonical and the
harness reorders per figure).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.robots import (
    auto_vehicle,
    cartpole,
    hexacopter,
    humanoid,
    manipulator,
    microsat,
    mobile_robot,
    quadrotor,
)
from repro.robots.base import RobotBenchmark

__all__ = [
    "BENCHMARK_NAMES",
    "EXTRA_NAMES",
    "build_benchmark",
    "all_benchmarks",
    "resolve",
]

_BUILDERS: Dict[str, Callable[[], RobotBenchmark]] = {
    "MobileRobot": mobile_robot.build_benchmark,
    "Manipulator": manipulator.build_benchmark,
    "AutoVehicle": auto_vehicle.build_benchmark,
    "MicroSat": microsat.build_benchmark,
    "Quadrotor": quadrotor.build_benchmark,
    "Hexacopter": hexacopter.build_benchmark,
}

#: Canonical Table III ordering.
BENCHMARK_NAMES = tuple(_BUILDERS)

#: Extra (non-Table-III) benchmarks: resolvable by name, excluded from the
#: paper tables/figures and from ``BENCHMARK_NAMES``.
_EXTRA_BUILDERS: Dict[str, Callable[[], RobotBenchmark]] = {
    "CartPole": cartpole.build_benchmark,
    "Humanoid": humanoid.build_benchmark,
}
EXTRA_NAMES = tuple(_EXTRA_BUILDERS)


def resolve(name: str) -> str:
    """Canonical benchmark name for ``name`` (case-insensitive, covering
    the Table III set plus the extras); raises :class:`ReproError` when
    unknown."""
    by_fold = {n.lower(): n for n in (*_BUILDERS, *_EXTRA_BUILDERS)}
    try:
        return by_fold[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; available: "
            f"{[*_BUILDERS, *_EXTRA_BUILDERS]}"
        ) from None


def build_benchmark(name: str) -> RobotBenchmark:
    """Build one benchmark by name (Table III or extra; case-insensitive)."""
    canonical = resolve(name)
    builder = _BUILDERS.get(canonical) or _EXTRA_BUILDERS[canonical]
    return builder()


def all_benchmarks() -> List[RobotBenchmark]:
    """Build all six benchmarks in Table III order."""
    return [build_benchmark(name) for name in BENCHMARK_NAMES]
