"""MicroSat benchmark: miniature satellite, orbit/attitude control.

Matches Table III: 8 states, 4 inputs, 12 penalties, 12 constraints.  The
model follows the explicit-MPC spacecraft attitude work of Hegrenaes et al.
(paper ref. [22]): quaternion attitude kinematics ``q[0..3]``, body angular
rates ``w[0..2]`` under Euler's rigid-body equations, plus an accumulated
actuator-momentum state ``hw`` that tracks reaction-wheel loading.  The four
inputs are thruster/wheel torque commands mapped to body torques through a
fixed allocation matrix.

Penalty count (12) = quaternion error (4) + rate damping (3) + control
effort (4) + momentum build-up (1).
Constraint count (12) = 8 bounded variables (4 torques, 3 rates, momentum)
+ 4 task constraints (quaternion-norm window, nadir-pointing cone, and two
paired-thruster power limits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import Constraint, Penalty, Task
from repro.robots.base import RobotBenchmark
from repro.symbolic import Var

__all__ = ["MicroSatParams", "build_model", "build_task", "build_benchmark"]


@dataclass(frozen=True)
class MicroSatParams:
    """Rigid-body and actuation parameters for a ~10 kg microsatellite."""

    jx: float = 0.07  # principal inertias (kg m^2)
    jy: float = 0.08
    jz: float = 0.05
    torque_bound: float = 0.01  # N m per actuator
    rate_bound: float = 0.5  # rad/s
    momentum_bound: float = 0.05  # N m s
    att_weight: float = 25.0
    rate_weight: float = 2.0
    effort_weight: float = 1.0
    momentum_weight: float = 5.0
    pointing_margin: float = 0.2
    dt: float = 0.25


# Fixed torque-allocation matrix: 4 actuators -> 3 body torques.  The skewed
# pyramid layout means every actuator contributes to multiple axes, which is
# what couples the 4 effort penalties to all rate states.
_ALLOCATION = (
    (1.0, -1.0, 0.4, -0.4),  # Tx coefficients over u[0..3]
    (0.4, 0.4, 1.0, -1.0),  # Ty
    (0.6, 0.6, -0.6, -0.6),  # Tz
)


def build_model(params: MicroSatParams = MicroSatParams()) -> RobotModel:
    """Quaternion kinematics + Euler rotation dynamics + momentum bookkeeping."""
    p = params
    q0, q1, q2, q3 = (Var(f"q[{i}]") for i in range(4))
    wx, wy, wz = Var("w[0]"), Var("w[1]"), Var("w[2]")
    u = [Var(f"u[{i}]") for i in range(4)]

    tx = sum((_ALLOCATION[0][i] * u[i] for i in range(4)), 0.0 * u[0])
    ty = sum((_ALLOCATION[1][i] * u[i] for i in range(4)), 0.0 * u[0])
    tz = sum((_ALLOCATION[2][i] * u[i] for i in range(4)), 0.0 * u[0])

    dynamics = {
        # Quaternion kinematics: qdot = 1/2 Omega(w) q
        "q[0]": 0.5 * (-q1 * wx - q2 * wy - q3 * wz),
        "q[1]": 0.5 * (q0 * wx - q3 * wy + q2 * wz),
        "q[2]": 0.5 * (q3 * wx + q0 * wy - q1 * wz),
        "q[3]": 0.5 * (-q2 * wx + q1 * wy + q0 * wz),
        # Euler: J wdot = T - w x (J w)
        "w[0]": (tx - (p.jz - p.jy) * wy * wz) / p.jx,
        "w[1]": (ty - (p.jx - p.jz) * wz * wx) / p.jy,
        "w[2]": (tz - (p.jy - p.jx) * wx * wy) / p.jz,
        # Accumulated actuator momentum (wheel-loading proxy).
        "hw": u[0] + u[1] + u[2] + u[3],
    }

    return RobotModel(
        name="MicroSat",
        states=[
            VarSpec("q[0]"),
            VarSpec("q[1]"),
            VarSpec("q[2]"),
            VarSpec("q[3]"),
            VarSpec("w[0]", -p.rate_bound, p.rate_bound),
            VarSpec("w[1]", -p.rate_bound, p.rate_bound),
            VarSpec("w[2]", -p.rate_bound, p.rate_bound),
            VarSpec("hw", -p.momentum_bound, p.momentum_bound),
        ],
        inputs=[
            VarSpec(f"u[{i}]", -p.torque_bound, p.torque_bound) for i in range(4)
        ],
        dynamics=dynamics,
        params={"jx": p.jx, "jy": p.jy, "jz": p.jz},
    )


def build_task(model: RobotModel, params: MicroSatParams = MicroSatParams()) -> Task:
    """Orbit-hold attitude control toward a referenced quaternion."""
    p = params
    q = [Var(f"q[{i}]") for i in range(4)]
    w = [Var(f"w[{i}]") for i in range(3)]
    u = [Var(f"u[{i}]") for i in range(4)]
    hw = Var("hw")
    ref_q = [Var(f"ref_q{i}") for i in range(4)]

    qnorm2 = q[0] * q[0] + q[1] * q[1] + q[2] * q[2] + q[3] * q[3]

    penalties = [
        Penalty(f"att_err{i}", q[i] - ref_q[i], p.att_weight, "running")
        for i in range(4)
    ]
    penalties += [
        Penalty(f"rate_damp{i}", w[i], p.rate_weight, "running") for i in range(3)
    ]
    penalties += [
        Penalty(f"effort{i}", u[i], p.effort_weight, "running") for i in range(4)
    ]
    penalties.append(Penalty("momentum", hw, p.momentum_weight, "running"))

    constraints = [
        # Quaternion norm must not drift above unity (discretization guard;
        # the kinematics conserve the norm, so only the convex upper side is
        # constrained — a lower bound would be a nonconvex thin shell).
        Constraint("q_norm", qnorm2, upper=1.05, timing="running"),
        # Nadir pointing cone: scalar part of the quaternion stays large.
        Constraint(
            "pointing_cone", q[0], lower=1.0 - p.pointing_margin, timing="terminal"
        ),
        # Paired-thruster power limits (shared power bus per pair), written
        # in per-unit form (divided by the actuator rating squared) so the
        # constraint row is O(1) — critical for solver scaling.
        Constraint(
            "power_pair_a",
            (u[0] * u[0] + u[1] * u[1]) / params.torque_bound**2,
            upper=1.5,
            timing="running",
        ),
        Constraint(
            "power_pair_b",
            (u[2] * u[2] + u[3] * u[3]) / params.torque_bound**2,
            upper=1.5,
            timing="running",
        ),
    ]

    return Task(
        name="orbitControl",
        model=model,
        penalties=penalties,
        constraints=constraints,
        references=["ref_q0", "ref_q1", "ref_q2", "ref_q3"],
    )


def build_benchmark(params: MicroSatParams = MicroSatParams()) -> RobotBenchmark:
    model = build_model(params)
    task = build_task(model, params)
    # Start tipped ~11 degrees off nadir with a small tumble.
    x0 = np.array([0.9952, 0.0872, 0.04, -0.02, 0.05, -0.04, 0.02, 0.0])
    return RobotBenchmark(
        name="MicroSat",
        model=model,
        task=task,
        x0=x0,
        ref=np.array([1.0, 0.0, 0.0, 0.0]),
        dt=params.dt,
        system_description="Miniature Satellite",
        task_description="Orbit Control",
        ipm_overrides={"hessian": "hybrid", "watchdog": 3, "max_iterations": 80},
    )
