"""AutoVehicle benchmark: four-wheel autonomous vehicle, high-speed racing.

Matches Table III: 6 states, 2 inputs, 8 penalties, 8 constraints.  The model
is the dynamic bicycle model with linear tire forces used for 1:43-scale
autonomous racing by Liniger et al. (paper ref. [20]): planar pose
``(pos[0], pos[1], yaw)`` plus body-frame velocities ``(vx, vy, yaw_rate)``,
controlled through steering angle and longitudinal acceleration.

Racing objective: maximize progress by tracking a high target speed and the
track center line, with the track's lateral walls expressed as running
position constraints ("the racing track bounds correspond to position
constraints on the car", §VIII).

Constraint count (8) = 4 bounded variables (steer, accel, vx, yaw_rate) +
4 task constraints (two track walls, front/rear tire slip-angle limits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import Constraint, Penalty, Task
from repro.robots.base import RobotBenchmark
from repro.symbolic import Var, atan, cos, sin

__all__ = ["AutoVehicleParams", "build_model", "build_task", "build_benchmark"]


@dataclass(frozen=True)
class AutoVehicleParams:
    """Dynamic bicycle-model parameters (full-size autonomous car).

    The model structure follows the optimization-based racing formulation of
    ref. [20]; the parameters are a full-size vehicle rather than the paper's
    1:43 RC car, whose ~30 ms yaw time constant would demand a much finer
    control interval than the benchmark's (same dynamics, milder stiffness).
    """

    mass: float = 1200.0
    inertia_z: float = 1800.0
    lf: float = 1.2  # CoG to front axle (m)
    lr: float = 1.3  # CoG to rear axle (m)
    cf: float = 80_000.0  # front cornering stiffness (N/rad)
    cr: float = 88_000.0  # rear cornering stiffness (N/rad)
    drag: float = 0.8  # aerodynamic drag coefficient (N s^2/m^2)
    steer_bound: float = 0.45  # rad
    accel_bound: float = 6.0  # m/s^2
    vx_min: float = 2.0  # keeps tire-slip division well-posed
    vx_max: float = 30.0
    yaw_rate_bound: float = 2.0
    track_half_width: float = 4.0
    slip_bound: float = 0.12  # rad, linear-tire validity region
    speed_weight: float = 0.5
    center_weight: float = 1.0
    heading_weight: float = 10.0
    effort_weight: float = 1.0
    lateral_weight: float = 0.1
    dt: float = 0.05


def build_model(params: AutoVehicleParams = AutoVehicleParams()) -> RobotModel:
    """Dynamic bicycle model with linear tire forces and aerodynamic drag."""
    p = params
    yaw = Var("yaw")
    vx, vy, r = Var("vx"), Var("vy"), Var("yaw_rate")
    steer, accel = Var("steer"), Var("accel")

    # Tire slip angles; vx is constrained >= vx_min so the division is safe.
    alpha_f = steer - atan((vy + p.lf * r) / vx)
    alpha_r = -atan((vy - p.lr * r) / vx)
    f_yf = p.cf * alpha_f
    f_yr = p.cr * alpha_r

    return RobotModel(
        name="AutoVehicle",
        states=[
            VarSpec("pos[0]"),
            VarSpec("pos[1]"),
            VarSpec("yaw"),
            VarSpec("vx", params.vx_min, params.vx_max),
            VarSpec("vy"),
            VarSpec("yaw_rate", -params.yaw_rate_bound, params.yaw_rate_bound),
        ],
        inputs=[
            VarSpec("steer", -params.steer_bound, params.steer_bound),
            VarSpec("accel", -params.accel_bound, params.accel_bound),
        ],
        dynamics={
            "pos[0]": vx * cos(yaw) - vy * sin(yaw),
            "pos[1]": vx * sin(yaw) + vy * cos(yaw),
            "yaw": r,
            "vx": accel + vy * r - (p.drag / p.mass) * vx * vx
            - (f_yf * sin(steer)) / p.mass,
            "vy": (f_yf * cos(steer) + f_yr) / p.mass - vx * r,
            "yaw_rate": (p.lf * f_yf * cos(steer) - p.lr * f_yr) / p.inertia_z,
        },
        params={
            "mass": p.mass,
            "inertia_z": p.inertia_z,
            "lf": p.lf,
            "lr": p.lr,
            "cf": p.cf,
            "cr": p.cr,
        },
    )


def build_task(
    model: RobotModel, params: AutoVehicleParams = AutoVehicleParams()
) -> Task:
    """High-speed racing down a referenced track segment.

    The local track frame is communicated through references: a center-line
    point ``(ref_cx, ref_cy)``, the track heading ``ref_heading`` and the
    target speed ``ref_speed``.  Lateral deviation from the center line is
    both penalized and hard-constrained to the track half-width.
    """
    p = params
    px, py, yaw = Var("pos[0]"), Var("pos[1]"), Var("yaw")
    vx, vy, r = Var("vx"), Var("vy"), Var("yaw_rate")
    steer, accel = Var("steer"), Var("accel")
    cx, cy = Var("ref_cx"), Var("ref_cy")
    heading, speed = Var("ref_heading"), Var("ref_speed")

    # Signed lateral offset from the center line (rotate into track frame).
    lateral = -(px - cx) * sin(heading) + (py - cy) * cos(heading)
    alpha_f = steer - atan((vy + p.lf * r) / vx)
    alpha_r = -atan((vy - p.lr * r) / vx)

    return Task(
        name="racing",
        model=model,
        penalties=[
            Penalty("speed", vx - speed, p.speed_weight, "running"),
            Penalty("center", lateral, p.center_weight, "running"),
            Penalty("heading", yaw - heading, p.heading_weight, "running"),
            Penalty("side_slip", vy, p.lateral_weight, "running"),
            Penalty("effort_steer", steer, p.effort_weight, "running"),
            Penalty("effort_accel", accel, p.effort_weight, "running"),
            Penalty("final_center", lateral, p.center_weight, "terminal"),
            Penalty("final_heading", yaw - heading, p.heading_weight, "terminal"),
        ],
        constraints=[
            Constraint(
                "track_left", lateral, upper=p.track_half_width, timing="running"
            ),
            Constraint(
                "track_right", lateral, lower=-p.track_half_width, timing="running"
            ),
            Constraint(
                "front_slip",
                alpha_f,
                lower=-p.slip_bound,
                upper=p.slip_bound,
                timing="running",
            ),
            Constraint(
                "rear_slip",
                alpha_r,
                lower=-p.slip_bound,
                upper=p.slip_bound,
                timing="running",
            ),
        ],
        references=["ref_cx", "ref_cy", "ref_heading", "ref_speed"],
    )


def build_benchmark(params: AutoVehicleParams = AutoVehicleParams()) -> RobotBenchmark:
    model = build_model(params)
    task = build_task(model, params)
    return RobotBenchmark(
        name="AutoVehicle",
        model=model,
        task=task,
        x0=np.array([0.0, 0.5, 0.0, 12.0, 0.0, 0.0]),
        ref=np.array([20.0, 0.0, 0.0, 18.0]),
        dt=params.dt,
        system_description="Four-Wheel Vehicle",
        task_description="High-Speed Racing",
        # The vehicle needs the exact-Hessian hybrid mode, a monotone merit
        # (watchdog=1), and per-step cold restarts in closed loop.
        ipm_overrides={
            "hessian": "hybrid",
            "watchdog": 1,
            "max_iterations": 80,
            "tolerance": 5e-4,
        },
        warm_start=False,
    )
