"""Hexacopter benchmark: six-rotor micro UAV, attitude control.

Matches Table III: 12 states, 6 inputs, 19 penalties, 10 constraints.  The
model follows the fast nonlinear attitude-tracking MPC of Kamel et al.
(paper ref. [6]): the same 12 rigid-body states as the quadrotor, but with
six rotors at 60-degree spacing and a rotation-matrix formulation of the
translational dynamics with rotor-drag terms.  The paper notes that although
Quadrotor and Hexacopter have the same number of states, "the dynamics of
the latter is more computationally intensive" — the extra mixing terms and
drag model reproduce that asymmetry here (more ops per state derivative).

Penalty count (19) = attitude error (3) + rate error (3) + position hold (3)
+ velocity damping (3) + control effort (6) + collective-thrust deviation (1).
Constraint count (10) = 8 bounded variables (6 thrusts, roll, pitch) + 2 task
constraints (collective-thrust window, yaw-rate limit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import Constraint, Penalty, Task
from repro.robots.base import RobotBenchmark
from repro.symbolic import Var, cos, sin, tan

__all__ = ["HexacopterParams", "build_model", "build_task", "build_benchmark"]


@dataclass(frozen=True)
class HexacopterParams:
    """Physical parameters of a ~1.2 kg hexacopter."""

    mass: float = 1.2
    gravity: float = 9.81
    jx: float = 9.0e-3
    jy: float = 9.0e-3
    jz: float = 16.0e-3
    arm: float = 0.22
    yaw_coeff: float = 0.018
    drag_coeff: float = 0.08  # rotor-drag on body velocity
    thrust_max: float = 4.0
    tilt_bound: float = 0.5
    yaw_rate_bound: float = 2.0
    att_weight: float = 20.0
    rate_weight: float = 3.0
    pos_weight: float = 4.0
    vel_weight: float = 1.0
    effort_weight: float = 0.02
    collective_weight: float = 0.5
    dt: float = 0.04


#: Rotor azimuths (rad) and yaw spin directions for the 6 arms.
_ROTOR_ANGLES = tuple(math.pi / 6.0 + i * math.pi / 3.0 for i in range(6))
_ROTOR_SPIN = (1.0, -1.0, 1.0, -1.0, 1.0, -1.0)


def build_model(params: HexacopterParams = HexacopterParams()) -> RobotModel:
    """12-state hexacopter with full rotation matrix and rotor drag."""
    p = params
    roll, pitch, yaw = Var("roll"), Var("pitch"), Var("yaw")
    wx, wy, wz = Var("w[0]"), Var("w[1]"), Var("w[2]")
    vx, vy, vz = Var("vel[0]"), Var("vel[1]"), Var("vel[2]")
    f = [Var(f"f[{i}]") for i in range(6)]

    f_total = f[0] + f[1] + f[2] + f[3] + f[4] + f[5]
    tau_roll = sum(
        (p.arm * math.sin(a) * fi for a, fi in zip(_ROTOR_ANGLES, f)), 0.0 * f[0]
    )
    tau_pitch = sum(
        (p.arm * math.cos(a) * fi for a, fi in zip(_ROTOR_ANGLES, f)), 0.0 * f[0]
    )
    tau_yaw = sum(
        (p.yaw_coeff * s * fi for s, fi in zip(_ROTOR_SPIN, f)), 0.0 * f[0]
    )

    # Full ZYX rotation-matrix third column (thrust direction) spelled out,
    # plus first two columns entering through the drag term — considerably
    # more trigonometric work than the quadrotor formulation.
    r13 = cos(roll) * sin(pitch) * cos(yaw) + sin(roll) * sin(yaw)
    r23 = cos(roll) * sin(pitch) * sin(yaw) - sin(roll) * cos(yaw)
    r33 = cos(roll) * cos(pitch)
    # Body-frame velocity components (for rotor drag) via R^T v.
    bvx = (
        cos(pitch) * cos(yaw) * vx
        + cos(pitch) * sin(yaw) * vy
        - sin(pitch) * vz
    )
    bvy = (
        (sin(roll) * sin(pitch) * cos(yaw) - cos(roll) * sin(yaw)) * vx
        + (sin(roll) * sin(pitch) * sin(yaw) + cos(roll) * cos(yaw)) * vy
        + sin(roll) * cos(pitch) * vz
    )

    kd = p.drag_coeff / p.mass
    dynamics = {
        "pos[0]": vx,
        "pos[1]": vy,
        "pos[2]": vz,
        "vel[0]": r13 * f_total / p.mass - kd * bvx * cos(pitch) * cos(yaw)
        - kd * bvy * (sin(roll) * sin(pitch) * cos(yaw) - cos(roll) * sin(yaw)),
        "vel[1]": r23 * f_total / p.mass - kd * bvx * cos(pitch) * sin(yaw)
        - kd * bvy * (sin(roll) * sin(pitch) * sin(yaw) + cos(roll) * cos(yaw)),
        "vel[2]": r33 * f_total / p.mass - p.gravity + kd * bvx * sin(pitch)
        - kd * bvy * sin(roll) * cos(pitch),
        "roll": wx + sin(roll) * tan(pitch) * wy + cos(roll) * tan(pitch) * wz,
        "pitch": cos(roll) * wy - sin(roll) * wz,
        "yaw": (sin(roll) * wy + cos(roll) * wz) / cos(pitch),
        "w[0]": (tau_roll + (p.jy - p.jz) * wy * wz) / p.jx,
        "w[1]": (tau_pitch + (p.jz - p.jx) * wz * wx) / p.jy,
        "w[2]": (tau_yaw + (p.jx - p.jy) * wx * wy) / p.jz,
    }

    return RobotModel(
        name="Hexacopter",
        states=[
            VarSpec("pos[0]"),
            VarSpec("pos[1]"),
            VarSpec("pos[2]"),
            VarSpec("vel[0]"),
            VarSpec("vel[1]"),
            VarSpec("vel[2]"),
            VarSpec("roll", -p.tilt_bound, p.tilt_bound),
            VarSpec("pitch", -p.tilt_bound, p.tilt_bound),
            VarSpec("yaw"),
            VarSpec("w[0]"),
            VarSpec("w[1]"),
            VarSpec("w[2]"),
        ],
        inputs=[
            VarSpec(f"f[{i}]", 0.0, p.thrust_max, trim=p.mass * p.gravity / 6.0)
            for i in range(6)
        ],
        dynamics=dynamics,
        params={
            "mass": p.mass,
            "gravity": p.gravity,
            "arm": p.arm,
            "jx": p.jx,
            "jy": p.jy,
            "jz": p.jz,
        },
    )


def build_task(
    model: RobotModel, params: HexacopterParams = HexacopterParams()
) -> Task:
    """Attitude tracking on SO(3)-adjacent Euler coordinates (ref. [6] task)."""
    p = params
    pos = [Var(f"pos[{i}]") for i in range(3)]
    vel = [Var(f"vel[{i}]") for i in range(3)]
    att = [Var("roll"), Var("pitch"), Var("yaw")]
    w = [Var(f"w[{i}]") for i in range(3)]
    f = [Var(f"f[{i}]") for i in range(6)]
    ref_att = [Var("ref_roll"), Var("ref_pitch"), Var("ref_yaw")]

    f_total = f[0] + f[1] + f[2] + f[3] + f[4] + f[5]
    hover = p.mass * p.gravity

    penalties = [
        Penalty(f"att_{n}", a - r, p.att_weight, "running")
        for n, a, r in zip(("roll", "pitch", "yaw"), att, ref_att)
    ]
    penalties += [
        Penalty(f"rate{i}", w[i], p.rate_weight, "running") for i in range(3)
    ]
    penalties += [
        Penalty(f"hold_pos{i}", pos[i], p.pos_weight, "running") for i in range(3)
    ]
    penalties += [
        Penalty(f"damp_vel{i}", vel[i], p.vel_weight, "running") for i in range(3)
    ]
    penalties += [
        Penalty(f"effort{i}", f[i], p.effort_weight, "running") for i in range(6)
    ]
    penalties.append(
        Penalty("collective", f_total - hover, p.collective_weight, "running")
    )

    return Task(
        name="attitudeControl",
        model=model,
        penalties=penalties,
        constraints=[
            Constraint(
                "collective_window",
                f_total,
                lower=0.3 * hover,
                upper=2.0 * hover,
                timing="running",
            ),
            Constraint(
                "yaw_rate",
                w[2],
                lower=-p.yaw_rate_bound,
                upper=p.yaw_rate_bound,
                timing="running",
            ),
        ],
        references=["ref_roll", "ref_pitch", "ref_yaw"],
    )


def build_benchmark(params: HexacopterParams = HexacopterParams()) -> RobotBenchmark:
    model = build_model(params)
    task = build_task(model, params)
    x0 = np.zeros(12)
    x0[6] = 0.25  # initial roll error
    x0[7] = -0.2  # initial pitch error
    return RobotBenchmark(
        name="Hexacopter",
        model=model,
        task=task,
        x0=x0,
        ref=np.array([0.0, 0.0, 0.3]),
        dt=params.dt,
        system_description="Six-Rotor Micro UAV",
        task_description="Attitude Control",
    )
