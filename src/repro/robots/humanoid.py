"""Humanoid benchmark: planar double-inverted-pendulum balance.

An extra (non-Table-III) benchmark built to be *stiff*: a standing
humanoid reduced to its sagittal-plane ankle+hip model — two inverted
links (legs, torso) actuated at the ankle and hip, balancing against
gravity.  Posture errors are penalized orders of magnitude harder than
actuation effort (a fall is catastrophic, torque is cheap), and the ankle
torque is tightly bounded (the foot is small), so the condensed QP mixes
very large and very small curvatures and constraint rows.  That norm
spread is exactly what the solver resilience layer exists for: this robot
exercises Ruiz equilibration and the ADMM rescue/polish path in
conformance and chaos runs (see DESIGN.md "solver resilience").

The dynamics are the same closed-form two-link Lagrangian as the
Manipulator benchmark, with angles measured from the *upright* vertical —
the gravity terms are destabilizing (``sin`` of the lean angles), so the
plant is open-loop unstable and the controller must actively balance.

Constraint count = 6 bounded variables (2 torques, 2 angles, 2 rates)
+ 4 task constraints (center-of-mass excursion kept over the foot in both
directions, head height kept up, hip flexion kept clear of the torso).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import pi

import numpy as np

from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import Constraint, Penalty, Task
from repro.robots.base import RobotBenchmark
from repro.symbolic import Var, cos, sin

__all__ = ["HumanoidParams", "build_model", "build_task", "build_benchmark"]


@dataclass(frozen=True)
class HumanoidParams:
    """Planar ankle+hip balance model parameters.

    The mass/length split (heavy torso on light legs) and the deliberately
    skewed weight scales (posture ≫ damping ≫ effort) are what make this
    benchmark numerically stiff.
    """

    m_legs: float = 24.0
    m_torso: float = 46.0
    l_legs: float = 0.85  # hip height (m)
    l_torso: float = 0.75  # hip-to-head (m)
    r_legs: float = 0.5  # center-of-mass offsets along each link (m)
    r_torso: float = 0.35
    i_legs: float = 1.4  # link inertias about their own CoM (kg m^2)
    i_torso: float = 1.9
    gravity: float = 9.81
    #: ankle torque is capped by the foot geometry (CoP must stay inside
    #: the support polygon) — this is the tight, hard-to-satisfy bound
    ankle_bound: float = 40.0
    hip_bound: float = 120.0
    lean_bound: float = 0.6  # rad, both joints
    rate_bound: float = 4.0  # rad/s
    #: foot half-length: CoM horizontal excursion limit (m)
    foot_half: float = 0.11
    posture_weight: float = 400.0
    damp_weight: float = 2.0
    ankle_effort_weight: float = 5e-4
    hip_effort_weight: float = 2e-3
    dt: float = 0.02


def build_model(params: HumanoidParams = HumanoidParams()) -> RobotModel:
    """Two-link *inverted* Lagrangian dynamics (angles from upright)."""
    p = params
    q1, q2 = Var("q[0]"), Var("q[1]")  # ankle lean, hip flexion
    dq1, dq2 = Var("dq[0]"), Var("dq[1]")
    t1, t2 = Var("tau[0]"), Var("tau[1]")  # ankle, hip torques

    # Mass matrix M(q) = [[a1 + 2 a2 c2, a3 + a2 c2], [a3 + a2 c2, a3]]
    a1 = (
        p.i_legs
        + p.i_torso
        + p.m_legs * p.r_legs**2
        + p.m_torso * (p.l_legs**2 + p.r_torso**2)
    )
    a2 = p.m_torso * p.l_legs * p.r_torso
    a3 = p.i_torso + p.m_torso * p.r_torso**2
    c2 = cos(q2)
    m11 = a1 + 2.0 * a2 * c2
    m12 = a3 + a2 * c2
    m22 = a3

    # Coriolis/centrifugal terms (identical structure to the arm).
    s2 = sin(q2)
    cor1 = -a2 * s2 * (2.0 * dq1 * dq2 + dq2 * dq2)
    cor2 = a2 * s2 * dq1 * dq1

    # Gravity measured from the upright vertical: ``sin`` of the lean
    # angles, *destabilizing* — leaning increases the toppling torque.
    g1 = (
        -(p.m_legs * p.r_legs + p.m_torso * p.l_legs) * p.gravity * sin(q1)
        - p.m_torso * p.r_torso * p.gravity * sin(q1 + q2)
    )
    g2 = -p.m_torso * p.r_torso * p.gravity * sin(q1 + q2)

    rhs1 = t1 - cor1 - g1
    rhs2 = t2 - cor2 - g2

    # Closed-form inverse: [[m22, -m12], [-m12, m11]] / det
    det = m11 * m22 - m12 * m12
    ddq1 = (m22 * rhs1 - m12 * rhs2) / det
    ddq2 = (m11 * rhs2 - m12 * rhs1) / det

    return RobotModel(
        name="Humanoid",
        states=[
            VarSpec("q[0]", -p.lean_bound, p.lean_bound),
            VarSpec("q[1]", -p.lean_bound, p.lean_bound),
            VarSpec("dq[0]", -p.rate_bound, p.rate_bound),
            VarSpec("dq[1]", -p.rate_bound, p.rate_bound),
        ],
        inputs=[
            VarSpec("tau[0]", -p.ankle_bound, p.ankle_bound),
            VarSpec("tau[1]", -p.hip_bound, p.hip_bound),
        ],
        dynamics={
            "q[0]": dq1,
            "q[1]": dq2,
            "dq[0]": ddq1,
            "dq[1]": ddq2,
        },
        # Open-loop unstable: a zero-torque rollout topples through the
        # lean box within the horizon, so cold starts hold the measured
        # configuration instead.
        rollout_guess=False,
        params={
            "m_legs": p.m_legs,
            "m_torso": p.m_torso,
            "l_legs": p.l_legs,
            "l_torso": p.l_torso,
            "gravity": p.gravity,
        },
    )


def build_task(
    model: RobotModel, params: HumanoidParams = HumanoidParams()
) -> Task:
    """Balance: drive both joints to a referenced posture and hold it.

    The center of mass must stay over the foot (the static-balance proxy
    for the CoP condition), the head must stay up, and the hip must not
    fold past the torso.
    """
    p = params
    q1, q2 = Var("q[0]"), Var("q[1]")
    dq1, dq2 = Var("dq[0]"), Var("dq[1]")
    t1, t2 = Var("tau[0]"), Var("tau[1]")
    rq1, rq2 = Var("ref_q0"), Var("ref_q1")

    # Forward kinematics for the balance constraints (from the ankle).
    m_total = p.m_legs + p.m_torso
    com_x = (
        p.m_legs * p.r_legs * sin(q1)
        + p.m_torso * (p.l_legs * sin(q1) + p.r_torso * sin(q1 + q2))
    ) / m_total
    head_y = p.l_legs * cos(q1) + p.l_torso * cos(q1 + q2)

    w = p.posture_weight
    return Task(
        name="balance",
        model=model,
        penalties=[
            Penalty("posture_q0", q1 - rq1, w, "running"),
            Penalty("posture_q1", q2 - rq2, w, "running"),
            Penalty("damp_dq0", dq1, p.damp_weight, "running"),
            Penalty("damp_dq1", dq2, p.damp_weight, "running"),
            Penalty("effort_ankle", t1, p.ankle_effort_weight, "running"),
            Penalty("effort_hip", t2, p.hip_effort_weight, "running"),
        ],
        constraints=[
            Constraint("com_forward", com_x, upper=p.foot_half, timing="running"),
            Constraint("com_back", com_x, lower=-p.foot_half, timing="running"),
            Constraint(
                "head_up",
                head_y,
                lower=0.8 * (p.l_legs + p.l_torso),
                timing="running",
            ),
            Constraint("hip_clearance", q1 + q2, lower=-0.8, timing="running"),
        ],
        references=["ref_q0", "ref_q1"],
    )


def build_benchmark(params: HumanoidParams = HumanoidParams()) -> RobotBenchmark:
    model = build_model(params)
    task = build_task(model, params)
    return RobotBenchmark(
        name="Humanoid",
        model=model,
        task=task,
        # Pushed posture: leaning forward at the ankle, torso pitched back,
        # with a little forward momentum — inside every box, but the
        # recovery saturates the ankle bound.
        x0=np.array([0.08, -0.05, 0.25, 0.0]),
        ref=np.array([0.0, 0.0]),
        dt=params.dt,
        system_description="Planar Humanoid (ankle+hip)",
        task_description="Balance",
    )
