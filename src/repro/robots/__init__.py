"""The six benchmark robot systems and tasks of Table III."""

from repro.robots.base import RobotBenchmark, table_iii_row
from repro.robots.registry import (
    BENCHMARK_NAMES,
    EXTRA_NAMES,
    all_benchmarks,
    build_benchmark,
    resolve,
)

__all__ = [
    "RobotBenchmark",
    "table_iii_row",
    "BENCHMARK_NAMES",
    "EXTRA_NAMES",
    "build_benchmark",
    "all_benchmarks",
    "resolve",
]
