"""MobileRobot benchmark: two-wheel differential-drive robot, trajectory tracking.

Matches Table III: 3 states, 2 inputs, 5 penalties, 2 constraints.  The model
is the unicycle used by Kuhne et al. (paper ref. [21]) and in the paper's own
DSL walkthrough (§IV-A): planar position ``pos[0..1]``, heading ``angle``,
with commanded forward velocity and angular velocity.

Task: track a time-varying reference pose ``(ref_x, ref_y, ref_angle)``
supplied externally (``reference`` datatype in the DSL) while penalizing
control effort.  The two constraints are the physical bounds on the two
control inputs (``vel`` and ``ang_vel``), exactly as in the paper's code
snippet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import Penalty, Task
from repro.robots.base import RobotBenchmark
from repro.symbolic import Var, cos, sin

__all__ = ["MobileRobotParams", "build_model", "build_task", "build_benchmark"]


@dataclass(frozen=True)
class MobileRobotParams:
    """Physical and task parameters."""

    vel_bound: float = 1.0  # m/s
    ang_vel_bound: float = 2.0  # rad/s
    track_weight: float = 10.0
    heading_weight: float = 1.0
    effort_weight: float = 0.05
    dt: float = 0.1


def build_model(params: MobileRobotParams = MobileRobotParams()) -> RobotModel:
    """Unicycle kinematics: xdot = v cos(theta), ydot = v sin(theta)."""
    vel, ang_vel = Var("vel"), Var("ang_vel")
    angle = Var("angle")
    return RobotModel(
        name="MobileRobot",
        states=[VarSpec("pos[0]"), VarSpec("pos[1]"), VarSpec("angle")],
        inputs=[
            VarSpec("vel", -params.vel_bound, params.vel_bound),
            VarSpec("ang_vel", -params.ang_vel_bound, params.ang_vel_bound),
        ],
        dynamics={
            "pos[0]": vel * cos(angle),
            "pos[1]": vel * sin(angle),
            "angle": ang_vel,
        },
        params={
            "vel_bound": params.vel_bound,
            "ang_vel_bound": params.ang_vel_bound,
        },
    )


def build_task(
    model: RobotModel, params: MobileRobotParams = MobileRobotParams()
) -> Task:
    """Trajectory tracking: follow a reference pose along the horizon."""
    px, py, angle = Var("pos[0]"), Var("pos[1]"), Var("angle")
    vel, ang_vel = Var("vel"), Var("ang_vel")
    rx, ry, rth = Var("ref_x"), Var("ref_y"), Var("ref_angle")
    w = params.track_weight
    return Task(
        name="trajectoryTracking",
        model=model,
        penalties=[
            Penalty("track_x", px - rx, w, "running"),
            Penalty("track_y", py - ry, w, "running"),
            Penalty("track_angle", angle - rth, params.heading_weight, "running"),
            Penalty("effort_vel", vel, params.effort_weight, "running"),
            Penalty("effort_ang", ang_vel, params.effort_weight, "running"),
        ],
        constraints=[],
        references=["ref_x", "ref_y", "ref_angle"],
    )


def build_benchmark(params: MobileRobotParams = MobileRobotParams()) -> RobotBenchmark:
    model = build_model(params)
    task = build_task(model, params)
    return RobotBenchmark(
        name="MobileRobot",
        model=model,
        task=task,
        x0=np.zeros(3),
        ref=np.array([1.0, 1.0, 0.0]),
        dt=params.dt,
        system_description="Two-Wheel Mobile Robot",
        task_description="Trajectory Tracking",
    )
