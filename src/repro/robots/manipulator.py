"""Manipulator benchmark: two-link arm, reaching task.

Matches Table III: 4 states, 2 inputs, 6 penalties, 10 constraints.  The
dynamics are the full two-link revolute manipulator of Murray, Li & Sastry
(paper ref. [24]): joint angles ``q[0..1]``, joint velocities ``dq[0..1]``,
joint torques as inputs.  The mass matrix is inverted symbolically (closed
form for the 2x2 case), so the state derivatives contain the trigonometric
and rational structure that gives this benchmark its comparatively heavy
dynamics (the paper calls this out in §VIII-B: despite few states, the
complexity of the dynamics gives the accelerator room to win).

Constraint count (10) = 6 bounded variables (2 torques, 2 joint angles,
2 joint velocities) + 4 task constraints (elbow clearance, end-effector
height, and two end-effector workspace walls).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import pi

import numpy as np

from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import Constraint, Penalty, Task
from repro.robots.base import RobotBenchmark
from repro.symbolic import Var, cos, sin

__all__ = ["ManipulatorParams", "build_model", "build_task", "build_benchmark"]


@dataclass(frozen=True)
class ManipulatorParams:
    """Two-link arm physical parameters (link masses/lengths, gravity)."""

    m1: float = 1.0
    m2: float = 1.0
    l1: float = 0.5  # link lengths (m)
    l2: float = 0.5
    r1: float = 0.25  # center-of-mass offsets (m)
    r2: float = 0.25
    i1: float = 0.02  # link inertias (kg m^2)
    i2: float = 0.02
    gravity: float = 9.81
    torque_bound: float = 10.0
    q_bound: float = pi
    dq_bound: float = 6.0
    reach_weight: float = 20.0
    damp_weight: float = 1.0
    effort_weight: float = 0.01
    dt: float = 0.05


def build_model(params: ManipulatorParams = ManipulatorParams()) -> RobotModel:
    """Full Lagrangian dynamics with closed-form 2x2 mass-matrix inverse."""
    p = params
    q1, q2 = Var("q[0]"), Var("q[1]")
    dq1, dq2 = Var("dq[0]"), Var("dq[1]")
    t1, t2 = Var("tau[0]"), Var("tau[1]")

    # Mass matrix M(q) = [[a1 + 2 a2 c2, a3 + a2 c2], [a3 + a2 c2, a3]]
    a1 = p.i1 + p.i2 + p.m1 * p.r1**2 + p.m2 * (p.l1**2 + p.r2**2)
    a2 = p.m2 * p.l1 * p.r2
    a3 = p.i2 + p.m2 * p.r2**2
    c2 = cos(q2)
    m11 = a1 + 2.0 * a2 * c2
    m12 = a3 + a2 * c2
    m22 = a3

    # Coriolis/centrifugal vector and gravity vector.
    s2 = sin(q2)
    cor1 = -a2 * s2 * (2.0 * dq1 * dq2 + dq2 * dq2)
    cor2 = a2 * s2 * dq1 * dq1
    g1 = (p.m1 * p.r1 + p.m2 * p.l1) * p.gravity * cos(q1) + p.m2 * p.r2 * p.gravity * cos(q1 + q2)
    g2 = p.m2 * p.r2 * p.gravity * cos(q1 + q2)

    rhs1 = t1 - cor1 - g1
    rhs2 = t2 - cor2 - g2

    # Closed-form inverse: [[m22, -m12], [-m12, m11]] / det
    det = m11 * m22 - m12 * m12
    ddq1 = (m22 * rhs1 - m12 * rhs2) / det
    ddq2 = (m11 * rhs2 - m12 * rhs1) / det

    return RobotModel(
        name="Manipulator",
        states=[
            VarSpec("q[0]", -p.q_bound, p.q_bound),
            VarSpec("q[1]", -p.q_bound, p.q_bound),
            VarSpec("dq[0]", -p.dq_bound, p.dq_bound),
            VarSpec("dq[1]", -p.dq_bound, p.dq_bound),
        ],
        inputs=[
            VarSpec("tau[0]", -p.torque_bound, p.torque_bound),
            VarSpec("tau[1]", -p.torque_bound, p.torque_bound),
        ],
        dynamics={
            "q[0]": dq1,
            "q[1]": dq2,
            "dq[0]": ddq1,
            "dq[1]": ddq2,
        },
        # Gravity-loaded arm: a zero-torque rollout swings hard into the
        # joint box, so cold starts hold the measured configuration instead.
        rollout_guess=False,
        params={
            "m1": p.m1,
            "m2": p.m2,
            "l1": p.l1,
            "l2": p.l2,
            "gravity": p.gravity,
        },
    )


def build_task(
    model: RobotModel, params: ManipulatorParams = ManipulatorParams()
) -> Task:
    """Reaching: drive the joints to a referenced configuration and stop there.

    End-effector workspace constraints keep the tip above the table plane and
    inside two vertical walls; the elbow must also clear the table.
    """
    p = params
    q1, q2 = Var("q[0]"), Var("q[1]")
    dq1, dq2 = Var("dq[0]"), Var("dq[1]")
    t1, t2 = Var("tau[0]"), Var("tau[1]")
    rq1, rq2 = Var("ref_q0"), Var("ref_q1")

    # Forward kinematics for the constraint expressions.
    elbow_y = p.l1 * sin(q1)
    tip_x = p.l1 * cos(q1) + p.l2 * cos(q1 + q2)
    tip_y = p.l1 * sin(q1) + p.l2 * sin(q1 + q2)

    reach = p.reach_weight
    return Task(
        name="reaching",
        model=model,
        penalties=[
            Penalty("reach_q0", q1 - rq1, reach, "running"),
            Penalty("reach_q1", q2 - rq2, reach, "running"),
            Penalty("damp_dq0", dq1, p.damp_weight, "running"),
            Penalty("damp_dq1", dq2, p.damp_weight, "running"),
            Penalty("effort_t0", t1, p.effort_weight, "running"),
            Penalty("effort_t1", t2, p.effort_weight, "running"),
        ],
        constraints=[
            Constraint("elbow_clearance", elbow_y, lower=-0.45, timing="running"),
            Constraint("tip_above_table", tip_y, lower=-0.45, timing="running"),
            Constraint("tip_wall_right", tip_x, upper=0.95, timing="running"),
            Constraint("tip_wall_left", tip_x, lower=-0.95, timing="running"),
        ],
        references=["ref_q0", "ref_q1"],
    )


def build_benchmark(params: ManipulatorParams = ManipulatorParams()) -> RobotBenchmark:
    model = build_model(params)
    task = build_task(model, params)
    return RobotBenchmark(
        name="Manipulator",
        model=model,
        task=task,
        x0=np.array([-pi / 4.0, pi / 6.0, 0.0, 0.0]),
        ref=np.array([pi / 3.0, -pi / 4.0]),
        dt=params.dt,
        system_description="Two-Link Manipulator",
        task_description="Reaching",
    )
