"""Common scaffolding for the six benchmark robots (Table III).

Each robot module builds a :class:`RobotModel` + :class:`Task` pair and wraps
them in a :class:`RobotBenchmark`, which also carries the default initial
state, reference values and integration step used by the examples, tests and
the benchmark harness.

Counting convention for the reproduced Table III: *Constraints* is the number
of bounded variables (the paper's "physical constraints", expressed via
``lower_bound`` / ``upper_bound`` fields in the DSL) plus the task-specific
``constraint`` declarations; *Penalties* is the number of ``penalty``
declarations.  With this convention the six robots below reproduce the
paper's table exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.mpc.model import RobotModel
from repro.mpc.task import Task
from repro.mpc.transcription import TranscribedProblem

__all__ = ["RobotBenchmark", "table_iii_row"]


@dataclass
class RobotBenchmark:
    """A fully-specified benchmark: model, task, and evaluation defaults."""

    name: str
    model: RobotModel
    task: Task
    #: default initial state for closed-loop runs
    x0: np.ndarray
    #: default reference vector (empty when the task takes no references)
    ref: np.ndarray
    #: control interval in seconds
    dt: float
    #: short description of the system/task pairing (Table III columns)
    system_description: str = ""
    task_description: str = ""
    #: recommended :class:`IPMOptions` overrides for this benchmark (e.g. the
    #: vehicle needs the exact-Hessian hybrid mode and a monotone merit)
    ipm_overrides: Dict[str, object] = field(default_factory=dict)
    #: whether shifted warm starts help this benchmark in closed loop; the
    #: vehicle converges from a fresh rollout guess but not from the shifted
    #: previous solution, so its controller cold-restarts every step
    warm_start: bool = True

    def transcribe(
        self, horizon: int = 32, integrator: str = "rk4"
    ) -> TranscribedProblem:
        """Discretize this benchmark over ``horizon`` steps (paper default 32)."""
        return TranscribedProblem(
            self.model, self.task, horizon=horizon, dt=self.dt, integrator=integrator
        )

    def make_solver(self, problem: TranscribedProblem, **extra):
        """Build an :class:`InteriorPointSolver` with this benchmark's
        recommended options (overridable via ``extra``)."""
        from repro.mpc.ipm import InteriorPointSolver, IPMOptions

        kwargs = dict(self.ipm_overrides)
        kwargs.update(extra)
        return InteriorPointSolver(problem, IPMOptions(**kwargs))

    def make_controller(self, problem: TranscribedProblem, **extra):
        """Build an :class:`MPCController` wired per this benchmark."""
        from repro.mpc.controller import MPCController

        return MPCController(
            self.make_solver(problem, **extra), warm_start=self.warm_start
        )

    @property
    def n_states(self) -> int:
        return self.model.n_states

    @property
    def n_inputs(self) -> int:
        return self.model.n_inputs

    @property
    def n_penalties(self) -> int:
        return self.task.n_penalties

    @property
    def n_constraints(self) -> int:
        bounded = sum(
            1 for spec in self.model.states + self.model.inputs if spec.is_bounded
        )
        return bounded + self.task.n_constraints


def table_iii_row(bench: RobotBenchmark) -> Dict[str, object]:
    """One row of the reproduced Table III."""
    return {
        "name": bench.name,
        "system": bench.system_description,
        "task": bench.task_description,
        "states": bench.n_states,
        "inputs": bench.n_inputs,
        "penalties": bench.n_penalties,
        "constraints": bench.n_constraints,
    }
