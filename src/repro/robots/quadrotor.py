"""Quadrotor benchmark: four-rotor micro UAV, motion planning.

Matches Table III: 12 states, 4 inputs, 10 penalties, 7 constraints.  The
model is the full 12-state Euler-angle quadrotor of Bouabdallah & Siegwart
(paper refs. [23, 27]) that also serves as the running example in §II of the
paper: inertial position and velocity, roll/pitch/yaw attitude, and body
rates, driven by the four rotor thrusts ``f[0..3]``.

Task: motion planning to a referenced waypoint while avoiding a spherical
obstacle (the balloon of Fig. 1b), with a minimum-altitude requirement.

Penalty count (10) = terminal position error (3) + terminal velocity
damping (3) + running control effort (4).
Constraint count (7) = 6 bounded variables (4 thrusts, roll, pitch) + 1 task
constraint (obstacle clearance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpc.model import RobotModel, VarSpec
from repro.mpc.task import Constraint, Penalty, Task
from repro.robots.base import RobotBenchmark
from repro.symbolic import Var, cos, sin, tan

__all__ = ["QuadrotorParams", "build_model", "build_task", "build_benchmark"]


@dataclass(frozen=True)
class QuadrotorParams:
    """Physical parameters of a ~0.5 kg micro quadrotor."""

    mass: float = 0.5
    gravity: float = 9.81
    jx: float = 4.5e-3
    jy: float = 4.5e-3
    jz: float = 8.0e-3
    arm: float = 0.17  # rotor arm length (m)
    yaw_coeff: float = 0.016  # rotor drag-torque / thrust ratio
    thrust_max: float = 3.0  # N per rotor
    tilt_bound: float = 0.6  # rad, keeps the UAV away from flipping (§II-A)
    target_weight: float = 15.0
    vel_weight: float = 2.0
    effort_weight: float = 0.02
    obstacle_center: tuple = (0.6, 0.6, 1.0)
    obstacle_radius: float = 0.3
    dt: float = 0.05


def build_model(params: QuadrotorParams = QuadrotorParams()) -> RobotModel:
    """12-state Euler-angle quadrotor with per-rotor thrust inputs."""
    p = params
    roll, pitch, yaw = Var("roll"), Var("pitch"), Var("yaw")
    wx, wy, wz = Var("w[0]"), Var("w[1]"), Var("w[2]")
    vx, vy, vz = Var("vel[0]"), Var("vel[1]"), Var("vel[2]")
    f = [Var(f"f[{i}]") for i in range(4)]

    f_total = f[0] + f[1] + f[2] + f[3]
    # Body torques from the X-configuration mixer.
    tau_roll = p.arm * (f[1] - f[3])
    tau_pitch = p.arm * (f[2] - f[0])
    tau_yaw = p.yaw_coeff * (f[0] - f[1] + f[2] - f[3])

    dynamics = {
        "pos[0]": vx,
        "pos[1]": vy,
        "pos[2]": vz,
        # Thrust direction from the ZYX Euler rotation (paper Eq. 2 pattern).
        "vel[0]": (cos(roll) * sin(pitch) * cos(yaw) + sin(roll) * sin(yaw))
        * f_total
        / p.mass,
        "vel[1]": (cos(roll) * sin(pitch) * sin(yaw) - sin(roll) * cos(yaw))
        * f_total
        / p.mass,
        "vel[2]": cos(roll) * cos(pitch) * f_total / p.mass - p.gravity,
        # Euler-angle kinematics.
        "roll": wx + sin(roll) * tan(pitch) * wy + cos(roll) * tan(pitch) * wz,
        "pitch": cos(roll) * wy - sin(roll) * wz,
        "yaw": (sin(roll) * wy + cos(roll) * wz) / cos(pitch),
        # Rigid-body rotation dynamics.
        "w[0]": (tau_roll + (p.jy - p.jz) * wy * wz) / p.jx,
        "w[1]": (tau_pitch + (p.jz - p.jx) * wz * wx) / p.jy,
        "w[2]": (tau_yaw + (p.jx - p.jy) * wx * wy) / p.jz,
    }

    return RobotModel(
        name="Quadrotor",
        states=[
            VarSpec("pos[0]"),
            VarSpec("pos[1]"),
            VarSpec("pos[2]"),
            VarSpec("vel[0]"),
            VarSpec("vel[1]"),
            VarSpec("vel[2]"),
            VarSpec("roll", -p.tilt_bound, p.tilt_bound),
            VarSpec("pitch", -p.tilt_bound, p.tilt_bound),
            VarSpec("yaw"),
            VarSpec("w[0]"),
            VarSpec("w[1]"),
            VarSpec("w[2]"),
        ],
        inputs=[
            VarSpec(f"f[{i}]", 0.0, p.thrust_max, trim=p.mass * p.gravity / 4.0)
            for i in range(4)
        ],
        dynamics=dynamics,
        params={
            "mass": p.mass,
            "gravity": p.gravity,
            "arm": p.arm,
            "jx": p.jx,
            "jy": p.jy,
            "jz": p.jz,
        },
    )


def build_task(model: RobotModel, params: QuadrotorParams = QuadrotorParams()) -> Task:
    """Waypoint motion planning with spherical obstacle avoidance (Fig. 1b)."""
    p = params
    pos = [Var(f"pos[{i}]") for i in range(3)]
    vel = [Var(f"vel[{i}]") for i in range(3)]
    f = [Var(f"f[{i}]") for i in range(4)]
    target = [Var(f"ref_pos{i}") for i in range(3)]

    ox, oy, oz = p.obstacle_center
    clearance = (
        (pos[0] - ox) * (pos[0] - ox)
        + (pos[1] - oy) * (pos[1] - oy)
        + (pos[2] - oz) * (pos[2] - oz)
    )

    penalties = [
        Penalty(f"target{i}", pos[i] - target[i], p.target_weight, "terminal")
        for i in range(3)
    ]
    penalties += [
        Penalty(f"stop_vel{i}", vel[i], p.vel_weight, "terminal") for i in range(3)
    ]
    penalties += [
        Penalty(f"effort{i}", f[i], p.effort_weight, "running") for i in range(4)
    ]

    return Task(
        name="motionPlanning",
        model=model,
        penalties=penalties,
        constraints=[
            Constraint(
                "obstacle",
                clearance,
                lower=p.obstacle_radius**2,
                timing="running",
            ),
        ],
        references=["ref_pos0", "ref_pos1", "ref_pos2"],
    )


def build_benchmark(params: QuadrotorParams = QuadrotorParams()) -> RobotBenchmark:
    model = build_model(params)
    task = build_task(model, params)
    x0 = np.zeros(12)
    x0[2] = 1.0  # hover at 1 m
    return RobotBenchmark(
        name="Quadrotor",
        model=model,
        task=task,
        x0=x0,
        ref=np.array([1.2, 1.2, 1.0]),
        dt=params.dt,
        system_description="Four-Rotor Micro UAV",
        task_description="Motion Planning",
    )
