"""RoboX DSL source programs for benchmark robots.

The six benchmarks are defined through the Python builder API (the IR both
frontends share); this module provides DSL-language equivalents for the
robots whose physics the language expresses naturally, demonstrating the
paper's claim that the DSL stays "close to the concise mathematical
expressions".  Equivalence tests verify the DSL-built dynamics match the
builder-built dynamics numerically.

The sources are parameterized the way a roboticist would write them: physics
constants arrive through ``param`` header arguments at instantiation.
"""

from __future__ import annotations

from repro.dsl import AnalysisResult, compile_program

__all__ = [
    "MOBILE_ROBOT_DSL",
    "QUADROTOR_DSL",
    "PENDULUM_DSL",
    "load_mobile_robot",
    "load_quadrotor",
]

MOBILE_ROBOT_DSL = """
// Two-wheel differential-drive robot, trajectory tracking (paper SIV).
System MobileRobot( param vel_bound, param ang_bound,
                    param track_w, param heading_w, param effort_w ) {
  state pos[2], angle;
  input vel, ang_vel;

  pos[0].dt = vel * cos(angle);
  pos[1].dt = vel * sin(angle);
  angle.dt = ang_vel;

  vel.lower_bound <= -vel_bound;
  vel.upper_bound <= vel_bound;
  ang_vel.lower_bound <= -ang_bound;
  ang_vel.upper_bound <= ang_bound;

  Task trajectoryTracking( reference ref_x, reference ref_y,
                           reference ref_angle ) {
    penalty track_x, track_y, track_angle, effort_vel, effort_ang;
    track_x.running = pos[0] - ref_x;
    track_y.running = pos[1] - ref_y;
    track_angle.running = angle - ref_angle;
    effort_vel.running = vel;
    effort_ang.running = ang_vel;
    track_x.weight <= track_w;
    track_y.weight <= track_w;
    track_angle.weight <= heading_w;
    effort_vel.weight <= effort_w;
    effort_ang.weight <= effort_w;
  }
}
reference ref_x;
reference ref_y;
reference ref_angle;
MobileRobot robot(1.0, 2.0, 10.0, 1.0, 0.05);
robot.trajectoryTracking(ref_x, ref_y, ref_angle);
"""

QUADROTOR_DSL = """
// 12-state Euler-angle quadrotor, waypoint planning with obstacle avoidance.
System Quadrotor( param mass, param gravity, param arm, param kyaw,
                  param jx, param jy, param jz,
                  param f_max, param tilt ) {
  state pos[3], vel[3], roll, pitch, yaw, w[3];
  input f[4];

  pos[0].dt = vel[0];
  pos[1].dt = vel[1];
  pos[2].dt = vel[2];

  vel[0].dt = (cos(roll) * sin(pitch) * cos(yaw) + sin(roll) * sin(yaw))
              * (f[0] + f[1] + f[2] + f[3]) / mass;
  vel[1].dt = (cos(roll) * sin(pitch) * sin(yaw) - sin(roll) * cos(yaw))
              * (f[0] + f[1] + f[2] + f[3]) / mass;
  vel[2].dt = cos(roll) * cos(pitch) * (f[0] + f[1] + f[2] + f[3]) / mass
              - gravity;

  roll.dt = w[0] + sin(roll) * tan(pitch) * w[1] + cos(roll) * tan(pitch) * w[2];
  pitch.dt = cos(roll) * w[1] - sin(roll) * w[2];
  yaw.dt = (sin(roll) * w[1] + cos(roll) * w[2]) / cos(pitch);

  w[0].dt = (arm * (f[1] - f[3]) + (jy - jz) * w[1] * w[2]) / jx;
  w[1].dt = (arm * (f[2] - f[0]) + (jz - jx) * w[2] * w[0]) / jy;
  w[2].dt = (kyaw * (f[0] - f[1] + f[2] - f[3]) + (jx - jy) * w[0] * w[1]) / jz;

  roll.lower_bound <= -tilt;
  roll.upper_bound <= tilt;
  pitch.lower_bound <= -tilt;
  pitch.upper_bound <= tilt;
  f[0].lower_bound <= 0.0;  f[0].upper_bound <= f_max;
  f[1].lower_bound <= 0.0;  f[1].upper_bound <= f_max;
  f[2].lower_bound <= 0.0;  f[2].upper_bound <= f_max;
  f[3].lower_bound <= 0.0;  f[3].upper_bound <= f_max;

  Task motionPlanning( reference ref_pos0, reference ref_pos1,
                       reference ref_pos2,
                       param target_w, param vel_w, param effort_w,
                       param obs_x, param obs_y, param obs_z,
                       param obs_r2 ) {
    penalty target0, target1, target2;
    target0.terminal = pos[0] - ref_pos0;
    target1.terminal = pos[1] - ref_pos1;
    target2.terminal = pos[2] - ref_pos2;
    target0.weight <= target_w;
    target1.weight <= target_w;
    target2.weight <= target_w;

    penalty stop0, stop1, stop2;
    stop0.terminal = vel[0];
    stop1.terminal = vel[1];
    stop2.terminal = vel[2];
    stop0.weight <= vel_w;
    stop1.weight <= vel_w;
    stop2.weight <= vel_w;

    penalty effort0, effort1, effort2, effort3;
    effort0.running = f[0];
    effort1.running = f[1];
    effort2.running = f[2];
    effort3.running = f[3];
    effort0.weight <= effort_w;
    effort1.weight <= effort_w;
    effort2.weight <= effort_w;
    effort3.weight <= effort_w;

    constraint obstacle;
    obstacle.running = (pos[0] - obs_x) * (pos[0] - obs_x)
                     + (pos[1] - obs_y) * (pos[1] - obs_y)
                     + (pos[2] - obs_z) * (pos[2] - obs_z);
    obstacle.lower_bound <= obs_r2;
  }
}
reference ref_pos0;
reference ref_pos1;
reference ref_pos2;
Quadrotor quad(0.5, 9.81, 0.17, 0.016, 0.0045, 0.0045, 0.008, 3.0, 0.6);
quad.motionPlanning(ref_pos0, ref_pos1, ref_pos2,
                    15.0, 2.0, 0.02, 0.6, 0.6, 1.0, 0.09);
"""

PENDULUM_DSL = """
// Torque-limited pendulum stabilization: the smallest useful DSL program.
System Pendulum( param g_over_l, param k, param torque_max ) {
  state theta, omega;
  input torque;
  theta.dt = omega;
  omega.dt = g_over_l * sin(theta) + k * torque;
  torque.lower_bound <= -torque_max;
  torque.upper_bound <= torque_max;

  Task stabilize( param w_angle, param w_rate, param w_effort ) {
    penalty angle_err, rate_err, effort;
    angle_err.running = theta;
    rate_err.running = omega;
    effort.running = torque;
    angle_err.weight <= w_angle;
    rate_err.weight <= w_rate;
    effort.weight <= w_effort;
  }
}
Pendulum pend(4.9, 2.0, 3.0);
pend.stabilize(10.0, 1.0, 0.05);
"""


def load_mobile_robot() -> AnalysisResult:
    """Compile the MobileRobot DSL program."""
    return compile_program(MOBILE_ROBOT_DSL)


def load_quadrotor() -> AnalysisResult:
    """Compile the Quadrotor DSL program."""
    return compile_program(QUADROTOR_DSL)
