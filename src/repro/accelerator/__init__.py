"""The RoboX accelerator: fixed-point datapath, LUTs, and cycle simulator.

The timing-level design-space model lives with the compiler
(:class:`repro.compiler.MachineConfig` / :class:`~repro.compiler.Scheduler`);
this package provides the *functional* machine: Q14.17 fixed-point ALUs,
4096-entry LUT nonlinearities, and a cycle-driven simulator that executes
assembled micro-programs through the CU pipelines, shared buses and the
compute-enabled interconnect.

High-level entry point: :func:`simulate_phase` runs one expression phase of
a compiled benchmark on the simulated silicon and returns both the computed
values and the cycle count.
"""

from typing import Dict, Optional, Tuple

from repro.accelerator.fixedpoint import (
    FRACTION_BITS,
    FXP_MAX,
    FXP_MIN,
    SCALE,
    WORD_BITS,
    FixedPointFormat,
    Q14_17,
    from_fixed,
    fxp_add,
    fxp_div,
    fxp_mul,
    fxp_neg,
    fxp_sub,
    resolution,
    to_fixed,
)
from repro.accelerator.lut import DEFAULT_LUT_ENTRIES, LookupTable, LUTBank
from repro.accelerator.program import (
    BusTransfer,
    CUOp,
    MicroProgram,
    TreeAggregate,
    assemble,
)
from repro.accelerator.simulator import AcceleratorSimulator, SimulationResult

__all__ = [
    "to_fixed",
    "from_fixed",
    "fxp_add",
    "fxp_sub",
    "fxp_mul",
    "fxp_div",
    "fxp_neg",
    "resolution",
    "FRACTION_BITS",
    "WORD_BITS",
    "SCALE",
    "FXP_MAX",
    "FXP_MIN",
    "FixedPointFormat",
    "Q14_17",
    "LookupTable",
    "LUTBank",
    "DEFAULT_LUT_ENTRIES",
    "CUOp",
    "BusTransfer",
    "TreeAggregate",
    "MicroProgram",
    "assemble",
    "AcceleratorSimulator",
    "SimulationResult",
    "simulate_phase",
]


def simulate_phase(
    problem,
    phase: str = "dynamics",
    inputs: Optional[Dict[str, float]] = None,
    n_cus: int = 16,
    cus_per_cc: int = 4,
    compute_enabled_interconnect: bool = True,
    lut_entries: int = DEFAULT_LUT_ENTRIES,
    fmt: FixedPointFormat = Q14_17,
) -> Tuple[SimulationResult, Dict[str, float]]:
    """Run one expression phase of a transcribed problem on the simulator.

    Returns ``(simulation_result, float_reference)`` where the reference is
    the double-precision evaluation of the same expressions, keyed by the
    same output labels, so callers can quantify the fixed-point error.
    ``fmt`` selects the datapath word/fraction widths (default Q14.17).

    Only ``"dynamics"`` is wired for reference comparison (its outputs map
    one-to-one onto the model's state derivatives); other phases still run
    functionally but return an empty reference dict.
    """
    from repro.compiler import map_mdfg, translate
    from repro.compiler.mdfg import NodeType

    graph = translate(problem)
    pm = map_mdfg(graph, n_cus, cus_per_cc)
    program = assemble(
        graph,
        pm,
        phase,
        compute_enabled_interconnect=compute_enabled_interconnect,
    )

    if inputs is None:
        inputs = {name: 0.1 for name in program.input_slots}
    sim = AcceleratorSimulator(lut_entries=lut_entries, fmt=fmt)
    result = sim.run(program, inputs)

    reference: Dict[str, float] = {}
    if phase == "dynamics":
        import numpy as np

        order = problem._F.variables
        vector = np.array([inputs.get(v, 0.1) for v in order])
        exact = problem._F(vector)
        # Output labels are node ids in graph order; map positionally: the
        # translator emits dynamics outputs in state order.
        out_names = sorted(
            result.outputs, key=lambda s: int(s.replace("node", ""))
        )
        for label, val in zip(out_names, exact):
            reference[label] = float(val)
    return result, reference
