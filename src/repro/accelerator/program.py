"""Micro-operation program representation and the expression assembler.

The ISA words of :mod:`repro.compiler.isa` are the *encoding*; the simulator
executes the decoded form defined here: per-CU ALU micro-ops over register
slots, ordered bus transfers, and interconnect aggregation waves.  The
assembler lowers an expression M-DFG plus its Algorithm-1 :class:`ProgramMap`
into a :class:`MicroProgram`, allocating one register slot per produced
value on its home CU.

With the compute-enabled interconnect disabled (the Figure 10 ablation), the
assembler expands every GROUP aggregation into a binary tree of CU adds plus
the gather transfers the shared bus must then carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.mapping import ProgramMap
from repro.compiler.mdfg import MDFG, NodeType
from repro.errors import AcceleratorError

__all__ = ["CUOp", "BusTransfer", "TreeAggregate", "MicroProgram", "assemble"]


@dataclass(frozen=True)
class CUOp:
    """One ALU micro-op on one CU: ``dst = op(srcs...)`` over local slots."""

    op: str
    dst: int
    srcs: Tuple[int, ...] = ()
    #: inline constant operand (replaces a src slot when set)
    imm: Optional[float] = None


@dataclass(frozen=True)
class BusTransfer:
    """Move a value between CUs (intra-CC shared bus or tree-bus)."""

    src_cu: int
    src_slot: int
    dst_cu: int
    dst_slot: int


@dataclass(frozen=True)
class TreeAggregate:
    """In-network reduction of values resident on several CUs."""

    func: str  # add | mul | min | max
    sources: Tuple[Tuple[int, int], ...]  # (cu, slot) pairs
    dst_cu: int
    dst_slot: int


@dataclass
class MicroProgram:
    """A complete statically scheduled program for the simulator."""

    n_cus: int
    cus_per_cc: int
    #: ALU micro-ops per CU, in issue order
    cu_ops: List[List[CUOp]] = field(default_factory=list)
    #: ordered bus transfers
    transfers: List[BusTransfer] = field(default_factory=list)
    #: ordered aggregation waves
    aggregates: List[TreeAggregate] = field(default_factory=list)
    #: input name -> (cu, slot) where the memory engine deposits it
    input_slots: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: output label -> (cu, slot) to read back after execution
    output_slots: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: slots per CU that the program uses
    slots_used: List[int] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self.cu_ops)


class _SlotAllocator:
    def __init__(self, n_cus: int):
        self.next_slot = [0] * n_cus

    def alloc(self, cu: int) -> int:
        slot = self.next_slot[cu]
        self.next_slot[cu] += 1
        return slot


def assemble(
    graph: MDFG,
    program_map: ProgramMap,
    phase: str,
    outputs: Optional[Sequence[int]] = None,
    compute_enabled_interconnect: bool = True,
) -> MicroProgram:
    """Lower one expression phase of ``graph`` into a :class:`MicroProgram`.

    Args:
        graph: the M-DFG.
        program_map: Algorithm-1 mapping for the same graph.
        phase: which phase's nodes to assemble (e.g. ``"dynamics"``).
        outputs: node ids whose values should be exposed as outputs
            (default: every node in the phase with no consumer in the phase).
        compute_enabled_interconnect: when False, GROUP nodes are expanded
            into CU adds + gather transfers (the ablation path).
    """
    n_cus = program_map.n_cus
    prog = MicroProgram(
        n_cus=n_cus,
        cus_per_cc=program_map.cus_per_cc,
        cu_ops=[[] for _ in range(n_cus)],
    )
    alloc = _SlotAllocator(n_cus)
    #: node id -> (cu, slot) of its value; const nodes -> float immediate
    location: Dict[int, Tuple[int, int]] = {}
    const_value: Dict[int, float] = {}

    phase_nodes = [n for n in graph.nodes if n.phase == phase]
    if not phase_nodes:
        raise AcceleratorError(f"graph has no nodes in phase {phase!r}")
    needed = {p for n in phase_nodes for p in n.parents}
    nodes = [
        n
        for n in graph.nodes
        if n.phase == phase
        or (n.type in (NodeType.INPUT, NodeType.CONST) and n.id in needed)
    ]
    phase_ids = {n.id for n in nodes}

    def ensure_local(node_id: int, home: int) -> Tuple[int, Optional[float]]:
        """Return (slot, imm) making node_id's value usable on CU `home`."""
        if node_id in const_value:
            return -1, const_value[node_id]
        cu, slot = location[node_id]
        if cu == home:
            return slot, None
        dst_slot = alloc.alloc(home)
        prog.transfers.append(BusTransfer(cu, slot, home, dst_slot))
        location_cache[(node_id, home)] = dst_slot
        return dst_slot, None

    location_cache: Dict[Tuple[int, int], int] = {}

    def local_slot(node_id: int, home: int) -> Tuple[int, Optional[float]]:
        if node_id in const_value:
            return -1, const_value[node_id]
        cached = location_cache.get((node_id, home))
        if cached is not None:
            return cached, None
        return ensure_local(node_id, home)

    def gather_to(src: Tuple[int, int], home: int) -> int:
        """Copy a remote (cu, slot) value onto ``home``; returns its slot."""
        cu, slot = src
        if cu == home:
            return slot
        dst_slot = alloc.alloc(home)
        prog.transfers.append(BusTransfer(cu, slot, home, dst_slot))
        return dst_slot

    for node in nodes:
        if node.type == NodeType.CONST:
            const_value[node.id] = float(node.label)
            continue
        if node.type == NodeType.INPUT:
            cu = program_map.placement.get(node.id, 0)
            slot = alloc.alloc(cu)
            location[node.id] = (cu, slot)
            prog.input_slots[node.label] = (cu, slot)
            continue
        if node.id not in phase_ids or node.phase != phase:
            continue

        if node.type == NodeType.GROUP:
            sources = [(location[p]) for p in node.parents if p not in const_value]
            const_parents = [const_value[p] for p in node.parents if p in const_value]
            home = program_map.placement[node.id]
            dst_slot = alloc.alloc(home)
            if compute_enabled_interconnect:
                prog.aggregates.append(
                    TreeAggregate(
                        func=node.op,
                        sources=tuple(sources),
                        dst_cu=home,
                        dst_slot=dst_slot,
                    )
                )
                result_slot = dst_slot
                # Constants folded in afterwards on the home CU.
                for c in const_parents:
                    nxt = alloc.alloc(home)
                    prog.cu_ops[home].append(
                        CUOp(node.op, nxt, (result_slot,), imm=c)
                    )
                    result_slot = nxt
                location[node.id] = (home, result_slot)
            else:
                # Ablation: gather everything to `home` and reduce on the CU.
                acc_slot = None
                for src in sources:
                    s_slot = gather_to(src, home)
                    if acc_slot is None:
                        acc_slot = s_slot
                    else:
                        nxt = alloc.alloc(home)
                        prog.cu_ops[home].append(
                            CUOp(node.op, nxt, (acc_slot, s_slot))
                        )
                        acc_slot = nxt
                for c in const_parents:
                    nxt = alloc.alloc(home)
                    prog.cu_ops[home].append(CUOp(node.op, nxt, (acc_slot,), imm=c))
                    acc_slot = nxt
                if acc_slot is None:
                    raise AcceleratorError("empty group aggregation")
                location[node.id] = (home, acc_slot)
            continue

        # SCALAR / VECTOR op on its mapped CU.
        home = program_map.placement[node.id]
        srcs: List[int] = []
        imm: Optional[float] = None
        for p in node.parents:
            slot, c = local_slot(p, home)
            if c is not None:
                if imm is not None:
                    # Two constant operands: fold on the fly via a mov.
                    tmp = alloc.alloc(home)
                    prog.cu_ops[home].append(CUOp("mov", tmp, (), imm=c))
                    srcs.append(tmp)
                else:
                    imm = c
            else:
                srcs.append(slot)
        dst = alloc.alloc(home)
        prog.cu_ops[home].append(CUOp(node.op, dst, tuple(srcs), imm=imm))
        location[node.id] = (home, dst)

    # Expose outputs.
    if outputs is None:
        consumed = {p for n in nodes for p in n.parents}
        outputs = [
            n.id
            for n in nodes
            if n.phase == phase and n.id not in consumed
        ]
    for node_id in outputs:
        if node_id in const_value:
            continue
        prog.output_slots[f"node{node_id}"] = location[node_id]

    prog.slots_used = list(alloc.next_slot)
    return prog
