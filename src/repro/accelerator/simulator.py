"""Cycle-driven functional simulator of the RoboX accelerator (paper §V).

Executes a :class:`MicroProgram` on the modeled machine:

* every CU issues at most one ALU micro-op per cycle, in program order, when
  its operands are ready; results become visible after the 3-stage pipeline
  latency (independent ops pipeline back-to-back);
* each Compute Cluster's shared bus moves one value per cycle (its transfer
  queue is statically ordered); transfers that cross clusters traverse the
  tree-bus and pay its round-trip latency;
* aggregation waves run on the compute-enabled interconnect: neighbor-hop
  reductions within a CC, tree-bus combining across CCs — each wave costs
  one hop level per tree level and occupies the participating segment;
* the memory access engine deposits program inputs before cycle 0 and its
  streaming time is reported separately (``memory_cycles``).

All datapath values are 32-bit fixed point (Q14.17) and nonlinears go
through the 4096-entry LUT bank, so the simulator doubles as the numerical
testbed for the paper's precision claim (§VIII-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.accelerator.fixedpoint import Q14_17, FixedPointFormat
from repro.accelerator.lut import DEFAULT_LUT_ENTRIES, LUTBank
from repro.accelerator.program import (
    BusTransfer,
    CUOp,
    MicroProgram,
    TreeAggregate,
)
from repro.errors import AcceleratorError

__all__ = ["SimulationResult", "AcceleratorSimulator"]

_CU_LATENCY = 3
_BUS_LATENCY = 1


@dataclass
class SimulationResult:
    """Outcome of one program execution."""

    outputs: Dict[str, float]
    outputs_raw: Dict[str, int]
    cycles: int
    memory_cycles: int
    #: per-CU issued op counts (utilization analysis)
    ops_per_cu: List[int] = field(default_factory=list)
    #: aggregation waves executed on the interconnect
    aggregation_waves: int = 0
    bus_transfers: int = 0

    @property
    def total_cycles(self) -> int:
        return self.cycles + self.memory_cycles


class AcceleratorSimulator:
    """Functional + cycle simulator for micro-programs."""

    def __init__(
        self,
        lut_entries: int = DEFAULT_LUT_ENTRIES,
        bandwidth_bytes_per_cycle: float = 16.0,
        max_cycles: int = 10_000_000,
        fmt: FixedPointFormat = Q14_17,
    ):
        self.fmt = fmt
        self.lut = LUTBank(lut_entries, fmt=fmt)
        self.bandwidth = bandwidth_bytes_per_cycle
        self.max_cycles = max_cycles

    # ---------------------------------------------------------------------------
    def run(
        self, program: MicroProgram, inputs: Dict[str, float]
    ) -> SimulationResult:
        """Execute ``program`` with named input values (floats; quantized)."""
        n_cus = program.n_cus
        cus_per_cc = program.cus_per_cc
        n_ccs = max(1, math.ceil(n_cus / cus_per_cc))

        # Register files: value + ready cycle per slot.
        slots = max(program.slots_used) + 8 if program.slots_used else 8
        value = [[0] * slots for _ in range(n_cus)]
        ready = [[None] * slots for _ in range(n_cus)]

        # Memory engine: deposit inputs (all ready at cycle 0), count its
        # streaming cycles against the off-chip bandwidth.
        missing = [k for k in program.input_slots if k not in inputs]
        if missing:
            raise AcceleratorError(f"missing program inputs: {missing}")
        for name, (cu, slot) in program.input_slots.items():
            value[cu][slot] = self.fmt.to_fixed(float(inputs[name]))
            ready[cu][slot] = 0
        memory_cycles = math.ceil(
            len(program.input_slots) * 4 / self.bandwidth
        )

        # Engine state.
        pc = [0] * n_cus  # next op index per CU
        pending_writes: List[Tuple[int, int, int, int]] = []  # (cycle, cu, slot, val)
        bus_queue: Dict[int, List[BusTransfer]] = {cc: [] for cc in range(n_ccs)}
        tree_queue: List[BusTransfer] = []
        for tr in program.transfers:
            src_cc = tr.src_cu // cus_per_cc
            dst_cc = tr.dst_cu // cus_per_cc
            if src_cc == dst_cc:
                bus_queue[src_cc].append(tr)
            else:
                tree_queue.append(tr)
        agg_queue: List[TreeAggregate] = list(program.aggregates)
        tree_busy_until = 0
        tree_depth = max(1, math.ceil(math.log2(max(n_ccs, 2))))

        ops_issued = [0] * n_cus
        waves = 0
        transfers_done = 0
        cycle = 0
        last_progress = 0

        def slot_ready(cu: int, slot: int, now: int) -> bool:
            r = ready[cu][slot]
            return r is not None and r <= now

        while True:
            progress = False

            # Retire pipeline writes due this cycle (they were scheduled with
            # their completion cycle when issued).
            still = []
            for wcycle, cu, slot, val in pending_writes:
                if wcycle <= cycle:
                    value[cu][slot] = val
                    ready[cu][slot] = wcycle
                else:
                    still.append((wcycle, cu, slot, val))
            pending_writes = still

            # CU issue.
            for cu in range(n_cus):
                if pc[cu] >= len(program.cu_ops[cu]):
                    continue
                op = program.cu_ops[cu][pc[cu]]
                if all(slot_ready(cu, s, cycle) for s in op.srcs):
                    result = self._execute(op, value[cu])
                    pending_writes.append(
                        (cycle + _CU_LATENCY, cu, op.dst, result)
                    )
                    # Mark destination as in flight so later readers wait.
                    ready[cu][op.dst] = cycle + _CU_LATENCY
                    value[cu][op.dst] = result
                    pc[cu] += 1
                    ops_issued[cu] += 1
                    progress = True

            # Intra-CC buses: one transfer per CC per cycle.  The first
            # *ready* transfer in the queue issues — equivalent to the
            # compiler having ordered the static bus schedule correctly.
            for cc in range(n_ccs):
                queue = bus_queue[cc]
                for i, tr in enumerate(queue):
                    if slot_ready(tr.src_cu, tr.src_slot, cycle):
                        queue.pop(i)
                        value[tr.dst_cu][tr.dst_slot] = value[tr.src_cu][tr.src_slot]
                        ready[tr.dst_cu][tr.dst_slot] = cycle + _BUS_LATENCY
                        transfers_done += 1
                        progress = True
                        break

            # Tree-bus: transfers and aggregation waves share the resource;
            # again the first ready item issues.
            if tree_busy_until <= cycle:
                issued = False
                for i, tr in enumerate(tree_queue):
                    if slot_ready(tr.src_cu, tr.src_slot, cycle):
                        tree_queue.pop(i)
                        latency = 2 * tree_depth
                        value[tr.dst_cu][tr.dst_slot] = value[tr.src_cu][tr.src_slot]
                        ready[tr.dst_cu][tr.dst_slot] = cycle + latency
                        tree_busy_until = cycle + 1  # pipelined hops
                        transfers_done += 1
                        progress = True
                        issued = True
                        break
                if not issued:
                    for i, agg in enumerate(agg_queue):
                        if all(
                            slot_ready(cu, slot, cycle)
                            for cu, slot in agg.sources
                        ):
                            agg_queue.pop(i)
                            raw = self._aggregate(agg, value)
                            ccs = {cu // cus_per_cc for cu, _ in agg.sources}
                            levels = math.ceil(
                                math.log2(max(len(agg.sources), 2))
                            )
                            latency = levels * (1 if len(ccs) == 1 else 2)
                            value[agg.dst_cu][agg.dst_slot] = raw
                            ready[agg.dst_cu][agg.dst_slot] = cycle + latency
                            tree_busy_until = cycle + latency
                            waves += 1
                            progress = True
                            break

            done = (
                all(pc[cu] >= len(program.cu_ops[cu]) for cu in range(n_cus))
                and not pending_writes
                and not tree_queue
                and not agg_queue
                and all(not q for q in bus_queue.values())
            )
            if done:
                break
            if progress:
                last_progress = cycle
            cycle += 1
            if cycle > self.max_cycles:
                raise AcceleratorError(
                    f"simulation exceeded {self.max_cycles} cycles (deadlock?)"
                )
            # Stall watchdog: idle cycles are legal while pipeline or
            # interconnect latencies drain, but a long span with no engine
            # making progress means the program has a dependency deadlock.
            if cycle - last_progress > 4 * _CU_LATENCY + 8 * tree_depth + 64:
                raise AcceleratorError(
                    f"simulator deadlock: no progress since cycle {last_progress}"
                )

        outputs_raw = {
            name: value[cu][slot]
            for name, (cu, slot) in program.output_slots.items()
        }
        return SimulationResult(
            outputs={k: self.fmt.from_fixed(v) for k, v in outputs_raw.items()},
            outputs_raw=outputs_raw,
            cycles=cycle,
            memory_cycles=memory_cycles,
            ops_per_cu=ops_issued,
            aggregation_waves=waves,
            bus_transfers=transfers_done,
        )

    # ---------------------------------------------------------------------------
    def _execute(self, op: CUOp, regs: List[int]) -> int:
        fmt = self.fmt
        operands = [regs[s] for s in op.srcs]
        if op.imm is not None:
            operands.append(fmt.to_fixed(op.imm))
        name = op.op
        if name == "mov":
            return operands[0]
        if name == "neg":
            return fmt.neg(operands[0])
        if name in ("add", "sub", "mul", "div"):
            if len(operands) != 2:
                raise AcceleratorError(
                    f"{name} needs 2 operands, got {len(operands)}"
                )
            fn = {"add": fmt.add, "sub": fmt.sub, "mul": fmt.mul, "div": fmt.div}[
                name
            ]
            return fn(operands[0], operands[1])
        if name == "pow":
            # pow lowers to exp/log in general; integer powers were expanded
            # by the translator, so only the LUT path remains.
            base, exponent = operands
            return fmt.to_fixed(
                self.lut.evaluate(
                    "exp",
                    fmt.from_fixed(exponent)
                    * math.log(max(fmt.from_fixed(base), 1e-9)),
                )
            )
        # Nonlinear via LUT.
        if len(operands) != 1:
            raise AcceleratorError(f"{name} needs 1 operand")
        return self.lut.evaluate_fixed(name, operands[0])

    def _aggregate(self, agg: TreeAggregate, value: List[List[int]]) -> int:
        vals = [value[cu][slot] for cu, slot in agg.sources]
        if agg.func == "add":
            acc = vals[0]
            for v in vals[1:]:
                acc = self.fmt.add(acc, v)
            return acc
        if agg.func == "mul":
            acc = vals[0]
            for v in vals[1:]:
                acc = self.fmt.mul(acc, v)
            return acc
        if agg.func == "min":
            return min(vals)
        if agg.func == "max":
            return max(vals)
        raise AcceleratorError(f"unknown aggregation {agg.func!r}")
