"""Lookup-table evaluation of nonlinear functions (paper §V / §VIII-A).

Each CU supports nonlinear operations "as lookup tables"; the evaluated
design point uses 4096-entry LUTs, which the paper found sufficient to make
the effect on solver convergence negligible.  Each table covers a bounded
input domain with uniform spacing and linear interpolation between entries
(a common hardware choice: the fractional offset multiplies the slope term
stored alongside the sample).  Out-of-domain inputs are handled by range
reduction where the function allows it (periodicity for sin/cos, argument
normalization for sqrt) and by clamping where it does not.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

import numpy as np

from repro.accelerator.fixedpoint import Q14_17, FixedPointFormat
from repro.errors import AcceleratorError

__all__ = ["LookupTable", "LUTBank", "DEFAULT_LUT_ENTRIES"]

DEFAULT_LUT_ENTRIES = 4096


class LookupTable:
    """One uniformly-sampled function table with linear interpolation."""

    def __init__(
        self,
        name: str,
        func: Callable[[float], float],
        domain: Tuple[float, float],
        entries: int = DEFAULT_LUT_ENTRIES,
    ):
        if entries < 2:
            raise AcceleratorError("a lookup table needs at least 2 entries")
        lo, hi = domain
        if not lo < hi:
            raise AcceleratorError(f"invalid LUT domain [{lo}, {hi}]")
        self.name = name
        self.domain = (float(lo), float(hi))
        self.entries = entries
        xs = np.linspace(lo, hi, entries)
        self._step = xs[1] - xs[0]
        self._samples = np.array([func(float(x)) for x in xs])

    def evaluate(self, x: float) -> float:
        """Interpolated lookup; inputs are clamped into the domain."""
        lo, hi = self.domain
        x = min(max(x, lo), hi)
        pos = (x - lo) / self._step
        idx = min(int(pos), self.entries - 2)
        frac = pos - idx
        return float(
            self._samples[idx] * (1.0 - frac) + self._samples[idx + 1] * frac
        )

    def max_abs_error(self, probe_points: int = 20001, reference=None) -> float:
        """Worst-case absolute error against the reference on a dense grid."""
        lo, hi = self.domain
        xs = np.linspace(lo, hi, probe_points)
        approx = np.array([self.evaluate(float(x)) for x in xs])
        if reference is None:
            # Rebuild from the stored samples' generator via interpolation is
            # meaningless; caller should pass the true function.
            raise AcceleratorError("max_abs_error requires the reference function")
        exact = np.array([reference(float(x)) for x in xs])
        return float(np.max(np.abs(approx - exact)))


class LUTBank:
    """The accelerator's nonlinear-function tables with range reduction.

    Note §V: "each CU only supports two such operations" — the bank models
    the full set; per-CU operation subsets are a mapping concern handled by
    the compiler (a CU is only assigned the nonlinears its two tables hold).
    """

    def __init__(
        self,
        entries: int = DEFAULT_LUT_ENTRIES,
        fmt: FixedPointFormat = Q14_17,
    ):
        self.entries = entries
        self.fmt = fmt
        two_pi = 2.0 * math.pi
        self.tables: Dict[str, LookupTable] = {
            "sin": LookupTable("sin", math.sin, (0.0, two_pi), entries),
            "cos": LookupTable("cos", math.cos, (0.0, two_pi), entries),
            "tan": LookupTable("tan", math.tan, (-1.45, 1.45), entries),
            "asin": LookupTable("asin", math.asin, (-1.0, 1.0), entries),
            "acos": LookupTable("acos", math.acos, (-1.0, 1.0), entries),
            "atan": LookupTable("atan", math.atan, (-8.0, 8.0), entries),
            "exp": LookupTable("exp", math.exp, (-8.0, 8.0), entries),
            "log": LookupTable("log", math.log, (2.0**-9, 2.0), entries),
            # sqrt over [1, 4): arguments are normalized by even powers of 2.
            "sqrt": LookupTable("sqrt", math.sqrt, (1.0, 4.0), entries),
            "tanh": LookupTable("tanh", math.tanh, (-6.0, 6.0), entries),
        }

    def evaluate(self, func: str, x: float) -> float:
        """Evaluate ``func(x)`` with range reduction + table interpolation."""
        if func in ("sin", "cos"):
            two_pi = 2.0 * math.pi
            return self.tables[func].evaluate(x % two_pi)
        if func == "sqrt":
            if x <= 0.0:
                return 0.0
            # Normalize into [1, 4) by even powers of two: sqrt(m * 4^k) =
            # 2^k sqrt(m) — a shift in hardware.
            k = 0
            m = x
            while m >= 4.0:
                m /= 4.0
                k += 1
            while m < 1.0:
                m *= 4.0
                k -= 1
            return self.tables["sqrt"].evaluate(m) * (2.0**k)
        if func == "atan":
            # atan(x) = pi/2 - atan(1/x) for |x| > table range
            lo, hi = self.tables["atan"].domain
            if x > hi:
                return math.pi / 2.0 - self.tables["atan"].evaluate(1.0 / x)
            if x < lo:
                return -math.pi / 2.0 - self.tables["atan"].evaluate(1.0 / x)
            return self.tables["atan"].evaluate(x)
        if func == "log":
            if x <= 0.0:
                raise AcceleratorError("log of non-positive value")
            # log(m * 2^k) = log(m) + k log 2 with m in [1, 2).
            k = 0
            m = x
            while m >= 2.0:
                m /= 2.0
                k += 1
            while m < 1.0:
                m *= 2.0
                k -= 1
            return self.tables["log"].evaluate(m) + k * math.log(2.0)
        if func == "tanh":
            if x > 6.0:
                return 1.0
            if x < -6.0:
                return -1.0
            return self.tables["tanh"].evaluate(x)
        if func in self.tables:
            return self.tables[func].evaluate(x)
        raise AcceleratorError(f"no lookup table for {func!r}")

    def evaluate_fixed(self, func: str, raw: int) -> int:
        """Fixed-point in, fixed-point out (the CU datapath view)."""
        return self.fmt.to_fixed(self.evaluate(func, self.fmt.from_fixed(raw)))
