"""Programmable memory access engine (paper §V, §VI "Memory instructions").

The engine actively fetches and stores data according to its own static
microprogram instead of responding to requests from compute elements.  This
module implements its functional model:

* external memory is partitioned into **namespaces** (INPUT, STATE,
  GRADIENT, HESSIAN, REFERENCE, INSTRUCTION), each subdivided into
  fixed-size **blocks** so the 16-bit offset field of a ``Load``/``Store``
  reaches the full address range via ``Set Block`` instructions;
* an integrated **shifter** realigns misaligned bursts ("the programmability
  allows dealing with misaligned data to prevent bandwidth
  under-utilization");
* executing a memory instruction stream moves words between the external
  memory image and a staging buffer (the global LD/ST buffer of Fig. 3) and
  accounts the cycles a real engine would spend: ``ceil(words x word_bytes /
  bandwidth)`` per burst, +1 cycle when the shifter engages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.isa import MemInstr, Namespace, decode
from repro.errors import AcceleratorError

__all__ = ["MemoryImage", "MemoryAccessEngine", "EngineRun"]

_WORD_BYTES = 4
#: words per namespace block (64 KiB blocks of 4-byte words)
BLOCK_WORDS = 1 << 14


class MemoryImage:
    """External memory partitioned into per-namespace block arrays."""

    VALID_NAMESPACES = (
        Namespace.INPUT,
        Namespace.STATE,
        Namespace.GRADIENT,
        Namespace.HESSIAN,
        Namespace.REFERENCE,
        Namespace.INSTRUCTION,
    )

    def __init__(self):
        self._data: Dict[Tuple[int, int], List[int]] = {}

    def _block(self, namespace: int, block: int) -> List[int]:
        if namespace not in self.VALID_NAMESPACES:
            raise AcceleratorError(f"invalid memory namespace {namespace}")
        key = (namespace, block)
        if key not in self._data:
            self._data[key] = [0] * BLOCK_WORDS
        return self._data[key]

    def read(self, namespace: int, block: int, offset: int, count: int) -> List[int]:
        if offset < 0 or offset + count > BLOCK_WORDS:
            raise AcceleratorError(
                f"read [{offset}, {offset + count}) exceeds block size "
                f"{BLOCK_WORDS}"
            )
        blk = self._block(namespace, block)
        return blk[offset : offset + count]

    def write(
        self, namespace: int, block: int, offset: int, words: Sequence[int]
    ) -> None:
        if offset < 0 or offset + len(words) > BLOCK_WORDS:
            raise AcceleratorError(
                f"write [{offset}, {offset + len(words)}) exceeds block size"
            )
        blk = self._block(namespace, block)
        blk[offset : offset + len(words)] = [int(w) for w in words]


@dataclass
class EngineRun:
    """Result of executing one memory microprogram."""

    #: words loaded into the staging buffer, in arrival order
    loaded: List[int] = field(default_factory=list)
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    shifter_engagements: int = 0
    ended: bool = False


class MemoryAccessEngine:
    """Executes encoded memory instruction streams against a MemoryImage."""

    def __init__(
        self,
        memory: Optional[MemoryImage] = None,
        bandwidth_bytes_per_cycle: float = 16.0,
    ):
        if bandwidth_bytes_per_cycle <= 0:
            raise AcceleratorError("bandwidth must be positive")
        self.memory = memory or MemoryImage()
        self.bandwidth = bandwidth_bytes_per_cycle
        #: current block pointer per namespace (Set Block state)
        self.block_pointer: Dict[int, int] = {
            ns: 0 for ns in MemoryImage.VALID_NAMESPACES
        }
        #: outgoing store queue consumed by Store instructions
        self.store_queue: List[int] = []

    def queue_stores(self, words: Sequence[int]) -> None:
        """Stage result words the compute side produced (Fig. 3 ST buffer)."""
        self.store_queue.extend(int(w) for w in words)

    def run(self, stream: Sequence[int]) -> EngineRun:
        """Execute a stream of encoded 32-bit memory instructions.

        The stream must terminate with an ``End of Code`` instruction;
        instructions after it are not executed.
        """
        result = EngineRun()
        for word in stream:
            instr = decode(word, "memory")
            if instr.kind == "end":
                result.ended = True
                break
            self._execute(instr, result)
        if not result.ended:
            raise AcceleratorError(
                "memory microprogram missing End-of-Code terminator"
            )
        return result

    # -------------------------------------------------------------------------
    def _execute(self, instr: MemInstr, result: EngineRun) -> None:
        if instr.kind == "set_block":
            if instr.namespace not in self.block_pointer:
                raise AcceleratorError(
                    f"set_block on invalid namespace {instr.namespace}"
                )
            self.block_pointer[instr.namespace] = instr.block
            result.cycles += 1
            return

        block = self.block_pointer.get(instr.namespace)
        if block is None:
            raise AcceleratorError(
                f"memory instruction uses invalid namespace {instr.namespace}"
            )

        burst_cycles = math.ceil(instr.burst * _WORD_BYTES / self.bandwidth)
        if instr.shift:
            # The shifter realigns the burst in-flight: one extra cycle, not
            # a second pass over the data.
            result.cycles += 1
            result.shifter_engagements += 1

        if instr.kind == "load":
            words = self.memory.read(
                instr.namespace, block, instr.offset, instr.burst
            )
            if instr.shift:
                words = words[instr.shift :] + words[: instr.shift]
            result.loaded.extend(words)
            result.loads += 1
            result.cycles += burst_cycles
        elif instr.kind == "store":
            if len(self.store_queue) < instr.burst:
                raise AcceleratorError(
                    f"store of {instr.burst} words but only "
                    f"{len(self.store_queue)} staged"
                )
            words = self.store_queue[: instr.burst]
            del self.store_queue[: instr.burst]
            if instr.shift:
                words = words[-instr.shift :] + words[: -instr.shift]
            self.memory.write(instr.namespace, block, instr.offset, words)
            result.stores += 1
            result.cycles += burst_cycles
        else:  # pragma: no cover - decode() limits the kinds
            raise AcceleratorError(f"unknown memory instruction {instr.kind!r}")
