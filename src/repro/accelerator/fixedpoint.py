"""32-bit fixed-point arithmetic with 17 fractional bits.

§VIII-A: "From our empirical study, we found 32-bit fixed-point with 17
fractional bits and 4096-entry LUTs were sufficient to make the effects on
convergence negligible."  This module implements that datapath: Q14.17
(1 sign + 14 integer + 17 fractional bits), with saturating add/sub/mul/div
as a hardware ALU would behave.  All operations work on Python ints or NumPy
int64 arrays holding the raw fixed-point words.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import FixedPointError

__all__ = [
    "FRACTION_BITS",
    "WORD_BITS",
    "SCALE",
    "FXP_MAX",
    "FXP_MIN",
    "to_fixed",
    "from_fixed",
    "fxp_add",
    "fxp_sub",
    "fxp_mul",
    "fxp_div",
    "fxp_neg",
    "resolution",
]

WORD_BITS = 32
FRACTION_BITS = 17
SCALE = 1 << FRACTION_BITS
FXP_MAX = (1 << (WORD_BITS - 1)) - 1
FXP_MIN = -(1 << (WORD_BITS - 1))

_Number = Union[int, np.ndarray]


def resolution() -> float:
    """Smallest representable increment (2^-17 ~ 7.6e-6)."""
    return 1.0 / SCALE


def _saturate(raw: _Number) -> _Number:
    if isinstance(raw, np.ndarray):
        return np.clip(raw, FXP_MIN, FXP_MAX)
    return max(FXP_MIN, min(FXP_MAX, raw))


def to_fixed(value) -> _Number:
    """Quantize a float (or array) to the raw Q14.17 representation.

    Values outside the representable range saturate, as the hardware would.
    """
    if isinstance(value, np.ndarray):
        if not np.all(np.isfinite(value)):
            raise FixedPointError("cannot quantize non-finite values")
        raw = np.round(value * SCALE).astype(np.int64)
        return _saturate(raw)
    if not np.isfinite(value):
        raise FixedPointError(f"cannot quantize non-finite value {value!r}")
    return int(_saturate(int(round(float(value) * SCALE))))


def from_fixed(raw: _Number) -> Union[float, np.ndarray]:
    """Convert raw Q14.17 word(s) back to float."""
    if isinstance(raw, np.ndarray):
        return raw.astype(np.float64) / SCALE
    return float(raw) / SCALE


def fxp_add(a: _Number, b: _Number) -> _Number:
    return _saturate(a + b)


def fxp_sub(a: _Number, b: _Number) -> _Number:
    return _saturate(a - b)


def fxp_neg(a: _Number) -> _Number:
    return _saturate(-a if not isinstance(a, np.ndarray) else -a)


def fxp_mul(a: _Number, b: _Number) -> _Number:
    """Fixed-point multiply: (a * b) >> FRACTION_BITS with rounding."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        wide = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
        rounded = (wide + (1 << (FRACTION_BITS - 1))) >> FRACTION_BITS
        return _saturate(rounded)
    wide = int(a) * int(b)
    rounded = (wide + (1 << (FRACTION_BITS - 1))) >> FRACTION_BITS
    return int(_saturate(rounded))


def fxp_div(a: _Number, b: _Number) -> _Number:
    """Fixed-point divide: (a << FRACTION_BITS) / b, truncating toward zero.

    Division by zero saturates to the sign-appropriate extreme (hardware
    behavior), rather than raising.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_b, b_b = np.broadcast_arrays(
            np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
        )
        zero = b_b == 0
        safe_b = np.where(zero, 1, b_b)
        # Truncating division on the widened numerator (Python-style floor
        # division would skew negative quotients).
        numer = a_b << FRACTION_BITS
        quotient = np.sign(numer) * np.sign(safe_b) * (
            np.abs(numer) // np.abs(safe_b)
        )
        quotient[zero & (a_b >= 0)] = FXP_MAX
        quotient[zero & (a_b < 0)] = FXP_MIN
        return _saturate(quotient)
    if b == 0:
        return FXP_MAX if a >= 0 else FXP_MIN
    quotient = int((int(a) << FRACTION_BITS) / b)  # true division, truncated
    return int(_saturate(quotient))
