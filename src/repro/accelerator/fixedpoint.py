"""Parameterizable fixed-point arithmetic (default: 32 bits, 17 fractional).

§VIII-A: "From our empirical study, we found 32-bit fixed-point with 17
fractional bits and 4096-entry LUTs were sufficient to make the effects on
convergence negligible."  This module implements that datapath as the
default :data:`Q14_17` instance of :class:`FixedPointFormat` (1 sign + 14
integer + 17 fractional bits), with saturating add/sub/mul/div as a hardware
ALU would behave.  All operations work on Python ints or NumPy int64 arrays
holding the raw fixed-point words.

Other word/fraction widths — the design-space axis the paper sweeps for its
precision study — are expressed as further ``FixedPointFormat`` instances;
the LUT bank, the accelerator simulator, and the conformance harness accept
a format so the same program can be replayed at any width.  The module-level
functions (``to_fixed``, ``fxp_add``, ...) remain the Q14.17 fast path that
existing callers use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import FixedPointError

__all__ = [
    "FixedPointFormat",
    "Q14_17",
    "FRACTION_BITS",
    "WORD_BITS",
    "SCALE",
    "FXP_MAX",
    "FXP_MIN",
    "to_fixed",
    "from_fixed",
    "fxp_add",
    "fxp_sub",
    "fxp_mul",
    "fxp_div",
    "fxp_neg",
    "resolution",
]

WORD_BITS = 32
FRACTION_BITS = 17
SCALE = 1 << FRACTION_BITS
FXP_MAX = (1 << (WORD_BITS - 1)) - 1
FXP_MIN = -(1 << (WORD_BITS - 1))

_Number = Union[int, np.ndarray]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format: Q(w-f-1).f.

    ``word_bits`` is the total word width (including the sign bit) and
    ``fraction_bits`` the number of fractional bits.  All arithmetic
    saturates at the word boundaries, matching the modeled ALU.  The
    evaluated RoboX design point is :data:`Q14_17`; other widths support
    the precision design-space sweep and the conformance harness's
    configurable-width accelerator path.
    """

    word_bits: int = WORD_BITS
    fraction_bits: int = FRACTION_BITS

    def __post_init__(self):
        if not 2 <= self.word_bits <= 62:
            # 62, not 64: products are formed in int64, so the raw word must
            # leave headroom for the sign during widening multiplies.
            raise FixedPointError(
                f"word_bits must lie in [2, 62], got {self.word_bits}"
            )
        if not 1 <= self.fraction_bits <= self.word_bits - 1:
            raise FixedPointError(
                f"fraction_bits must lie in [1, word_bits - 1], got "
                f"{self.fraction_bits} for a {self.word_bits}-bit word"
            )

    # -- derived constants -------------------------------------------------
    @property
    def scale(self) -> int:
        return 1 << self.fraction_bits

    @property
    def max_raw(self) -> int:
        return (1 << (self.word_bits - 1)) - 1

    @property
    def min_raw(self) -> int:
        return -(1 << (self.word_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable float value."""
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        """Most negative representable float value."""
        return self.min_raw / self.scale

    def resolution(self) -> float:
        """Smallest representable increment (2^-fraction_bits)."""
        return 1.0 / self.scale

    def __str__(self) -> str:
        return f"Q{self.word_bits - self.fraction_bits - 1}.{self.fraction_bits}"

    # -- conversions -------------------------------------------------------
    def saturate(self, raw: _Number) -> _Number:
        if isinstance(raw, np.ndarray):
            return np.clip(raw, self.min_raw, self.max_raw)
        return max(self.min_raw, min(self.max_raw, raw))

    def to_fixed(self, value) -> _Number:
        """Quantize a float (or array) to the raw representation.

        Values outside the representable range saturate, as the hardware
        would; non-finite values are rejected.
        """
        if isinstance(value, np.ndarray):
            if not np.all(np.isfinite(value)):
                raise FixedPointError("cannot quantize non-finite values")
            raw = np.round(value * self.scale).astype(np.int64)
            return self.saturate(raw)
        if not np.isfinite(value):
            raise FixedPointError(f"cannot quantize non-finite value {value!r}")
        return int(self.saturate(int(round(float(value) * self.scale))))

    def from_fixed(self, raw: _Number) -> Union[float, np.ndarray]:
        """Convert raw word(s) back to float."""
        if isinstance(raw, np.ndarray):
            return raw.astype(np.float64) / self.scale
        return float(raw) / self.scale

    # -- saturating ALU ops -------------------------------------------------
    def add(self, a: _Number, b: _Number) -> _Number:
        return self.saturate(a + b)

    def sub(self, a: _Number, b: _Number) -> _Number:
        return self.saturate(a - b)

    def neg(self, a: _Number) -> _Number:
        return self.saturate(-a)

    def mul(self, a: _Number, b: _Number) -> _Number:
        """Fixed-point multiply: (a * b) >> fraction_bits with rounding."""
        f = self.fraction_bits
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            wide = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
            rounded = (wide + (1 << (f - 1))) >> f
            return self.saturate(rounded)
        wide = int(a) * int(b)
        rounded = (wide + (1 << (f - 1))) >> f
        return int(self.saturate(rounded))

    def div(self, a: _Number, b: _Number) -> _Number:
        """Fixed-point divide: (a << fraction_bits) / b, truncating toward zero.

        Division by zero saturates to the sign-appropriate extreme (hardware
        behavior), rather than raising.
        """
        f = self.fraction_bits
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            a_b, b_b = np.broadcast_arrays(
                np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
            )
            zero = b_b == 0
            safe_b = np.where(zero, 1, b_b)
            # Truncating division on the widened numerator (Python-style floor
            # division would skew negative quotients).
            numer = a_b << f
            quotient = np.sign(numer) * np.sign(safe_b) * (
                np.abs(numer) // np.abs(safe_b)
            )
            quotient[zero & (a_b >= 0)] = self.max_raw
            quotient[zero & (a_b < 0)] = self.min_raw
            return self.saturate(quotient)
        if b == 0:
            return self.max_raw if a >= 0 else self.min_raw
        quotient = int((int(a) << f) / b)  # true division, truncated
        return int(self.saturate(quotient))


#: The paper's evaluated design point: 32-bit words, 17 fractional bits.
Q14_17 = FixedPointFormat(WORD_BITS, FRACTION_BITS)


def resolution() -> float:
    """Smallest representable increment (2^-17 ~ 7.6e-6)."""
    return 1.0 / SCALE


def _saturate(raw: _Number) -> _Number:
    if isinstance(raw, np.ndarray):
        return np.clip(raw, FXP_MIN, FXP_MAX)
    return max(FXP_MIN, min(FXP_MAX, raw))


def to_fixed(value) -> _Number:
    """Quantize a float (or array) to the raw Q14.17 representation.

    Values outside the representable range saturate, as the hardware would.
    """
    return Q14_17.to_fixed(value)


def from_fixed(raw: _Number) -> Union[float, np.ndarray]:
    """Convert raw Q14.17 word(s) back to float."""
    return Q14_17.from_fixed(raw)


def fxp_add(a: _Number, b: _Number) -> _Number:
    return _saturate(a + b)


def fxp_sub(a: _Number, b: _Number) -> _Number:
    return _saturate(a - b)


def fxp_neg(a: _Number) -> _Number:
    return _saturate(-a if not isinstance(a, np.ndarray) else -a)


def fxp_mul(a: _Number, b: _Number) -> _Number:
    """Fixed-point multiply: (a * b) >> FRACTION_BITS with rounding."""
    return Q14_17.mul(a, b)


def fxp_div(a: _Number, b: _Number) -> _Number:
    """Fixed-point divide: (a << FRACTION_BITS) / b, truncating toward zero.

    Division by zero saturates to the sign-appropriate extreme (hardware
    behavior), rather than raising.
    """
    return Q14_17.div(a, b)
