"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    The six Table III benchmarks and their model/task parameters.
``solve BENCHMARK``
    Run closed-loop MPC for one benchmark and print the trajectory summary.
``compile BENCHMARK``
    Compile one benchmark to the accelerator and print the schedule summary.
``table {3,4}``
    Print a reproduced paper table.
``figure {5,...,12}``
    Print a reproduced paper figure (9-12 sweep to N = 1024; takes longer).
``serve-sim``
    Run the multi-session serving runtime against simulated plants:
    deadline-budgeted solves, graceful degradation, fleet telemetry.
    ``--engine v2`` switches to the async continuous-batching engine
    (EDF scheduling, horizon bucketing, sharded fleets).  Exits non-zero
    when any session crashed (the serve-smoke gate).
``backends``
    List the registered array backends for the batch kernels (numpy is
    always present; torch/cupy appear when importable) and how to select
    one (``REPRO_ARRAY_BACKEND`` or ``serve-sim --array-backend``).
``chaos``
    Run a fault-injection campaign (see :mod:`repro.faults`): a scripted
    schedule of sensor/solver/serve faults against a live fleet, followed
    by recovery-invariant checks.  Exits non-zero when any invariant
    fails (the chaos-smoke gate).
``conform``
    Differential conformance harness (see :mod:`repro.conform`):
    ``conform run`` sweeps randomized cases through every registered
    numeric path against the tolerance ledger (exits non-zero on any
    disagreement; failing cases are shrunk and serialized), ``conform
    replay FILE`` re-runs a serialized failure, ``conform paths`` lists
    the registered paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RoboX reproduction: DSL-to-accelerator MPC toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table III benchmarks")

    p_solve = sub.add_parser("solve", help="run closed-loop MPC for a benchmark")
    p_solve.add_argument("benchmark", help="benchmark name (see `repro list`)")
    p_solve.add_argument("--horizon", type=int, default=16, help="MPC horizon N")
    p_solve.add_argument("--steps", type=int, default=10, help="closed-loop steps")
    p_solve.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of text",
    )

    p_compile = sub.add_parser(
        "compile", help="compile a benchmark to the accelerator"
    )
    p_compile.add_argument("benchmark")
    p_compile.add_argument("--horizon", type=int, default=32)
    p_compile.add_argument("--cus", type=int, default=256, help="compute units")
    p_compile.add_argument(
        "--cus-per-cc", type=int, default=8, help="CUs per compute cluster"
    )
    p_compile.add_argument(
        "--bandwidth",
        type=float,
        default=16.0,
        help="off-chip bandwidth in bytes/cycle",
    )
    p_compile.add_argument(
        "--no-interconnect",
        action="store_true",
        help="disable the compute-enabled interconnect (Fig. 10 ablation)",
    )

    p_table = sub.add_parser("table", help="print a reproduced paper table")
    p_table.add_argument("number", type=int, choices=(3, 4))

    p_fig = sub.add_parser("figure", help="print a reproduced paper figure")
    p_fig.add_argument("number", type=int, choices=tuple(range(5, 13)))

    p_serve = sub.add_parser(
        "serve-sim",
        help="simulate the multi-session MPC serving runtime",
    )
    p_serve.add_argument(
        "--sessions", type=int, default=20, help="fleet size (default 20)"
    )
    p_serve.add_argument(
        "--ticks", type=int, default=20, help="control periods to simulate"
    )
    p_serve.add_argument(
        "--robots",
        default=None,
        help="comma-separated benchmark names cycled across sessions "
        "(default: MobileRobot,MicroSat,Quadrotor)",
    )
    p_serve.add_argument("--horizon", type=int, default=8, help="MPC horizon N")
    p_serve.add_argument(
        "--horizons",
        default=None,
        help="comma-separated per-session horizons cycled across the fleet "
        "(overrides --horizon; mixed horizons exercise v2 bucketing)",
    )
    p_serve.add_argument(
        "--engine",
        choices=("v1", "v2"),
        default="v1",
        help="serving engine: 'v1' (per-tick group solver, default) or "
        "'v2' (async continuous batching: EDF scheduling, horizon "
        "bucketing, sharded fleets)",
    )
    p_serve.add_argument(
        "--arrival-jitter",
        type=float,
        default=0.0,
        help="per-tick probability in [0,1) that a session's request "
        "arrives late (seeded; models ragged arrivals)",
    )
    p_serve.add_argument(
        "--robot-mix",
        choices=("cycle", "sample"),
        default="cycle",
        help="how sessions draw from --robots: deterministic cycle "
        "(default) or seeded sampling",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="v2 only: number of solver shards (sessions pin by affinity)",
    )
    p_serve.add_argument(
        "--shard-backend",
        choices=("inline", "process"),
        default="inline",
        help="v2 only: where shard solves run (process = real worker "
        "processes, killable by chaos)",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="v2 only: max lanes fused into one batched solve",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="v2 only: admission-control queue depth (default: unbounded)",
    )
    p_serve.add_argument(
        "--rungs",
        default=None,
        help="v2 only: comma-separated horizon bucket rungs, e.g. 8,16,32 "
        "(default: engine ladder)",
    )
    p_serve.add_argument(
        "--deadline-ms",
        type=float,
        default=50.0,
        help="per-step solve deadline in milliseconds; 0 disables budgeting",
    )
    p_serve.add_argument(
        "--degrade-after",
        type=int,
        default=3,
        help="consecutive fallbacks before a session is marked degraded",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker pool size (0 = inline execution)",
    )
    p_serve.add_argument(
        "--backend",
        choices=("thread", "process", "batched"),
        default="thread",
        help="worker pool kind when --workers > 0, or 'batched' for "
        "in-process vectorized group solves (requires --workers 0)",
    )
    p_serve.add_argument(
        "--array-backend",
        default=None,
        metavar="NAME[:DTYPE]",
        help="array backend for --backend batched, e.g. torch, cupy, "
        "numpy:float32 (default: $REPRO_ARRAY_BACKEND, then numpy; "
        "see `repro backends`)",
    )
    p_serve.add_argument(
        "--qp-method",
        choices=("ipm", "admm"),
        default="ipm",
        help="inner QP solver for every fleet session: 'ipm' "
        "(interior-point, default) or 'admm' (first-order, cached "
        "factorization + warm-started iterations)",
    )
    p_serve.add_argument(
        "--codegen",
        choices=("auto", "on", "off", "numpy", "c"),
        default="auto",
        help="fused-kernel codegen for linearization: 'auto' (size-gated, "
        "default), 'on' (best available tier), 'off' (interpreted), or pin "
        "a tier with 'numpy'/'c'",
    )
    p_serve.add_argument(
        "--tick-budget-ms",
        type=float,
        default=None,
        help="soft per-tick wall budget driving backpressure (default: off)",
    )
    p_serve.add_argument(
        "--trace", default=None, help="write a JSONL trace to this path"
    )
    p_serve.add_argument(
        "--seed",
        type=int,
        default=None,
        help="fleet RNG seed (default: $REPRO_BENCH_SEED, then 0)",
    )
    p_serve.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of the text summary",
    )

    sub.add_parser(
        "backends",
        help="list the registered array backends for the batch kernels",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection campaign with recovery invariants",
    )
    p_chaos.add_argument(
        "--robot",
        default="cartpole",
        help="benchmark name, case-insensitive; Table III robots plus the "
        "CartPole extra (default: cartpole)",
    )
    p_chaos.add_argument(
        "--schedule",
        default="smoke",
        help="builtin fault schedule: smoke, sensor, solver, serve, mixed, "
        "resilience, shards (default: smoke)",
    )
    p_chaos.add_argument(
        "--engine",
        choices=("v1", "v2"),
        default="v1",
        help="serving engine under chaos: 'v1' (default) or 'v2' "
        "(continuous batching; pair --schedule shards with --shards >= 2)",
    )
    p_chaos.add_argument(
        "--shards",
        type=int,
        default=1,
        help="v2 only: solver shard count (shard_crash needs >= 2 for "
        "handoff)",
    )
    p_chaos.add_argument(
        "--shard-backend",
        choices=("inline", "process"),
        default="inline",
        help="v2 only: where shard solves run (process = killable workers)",
    )
    p_chaos.add_argument(
        "--sessions", type=int, default=3, help="fleet size (default 3)"
    )
    p_chaos.add_argument(
        "--ticks", type=int, default=40, help="campaign length in ticks"
    )
    p_chaos.add_argument("--horizon", type=int, default=8, help="MPC horizon N")
    p_chaos.add_argument(
        "--deadline-ms",
        type=float,
        default=50.0,
        help="per-step solve deadline in milliseconds; 0 disables budgeting",
    )
    p_chaos.add_argument(
        "--degrade-after",
        type=int,
        default=3,
        help="consecutive fallbacks before a session is marked degraded",
    )
    p_chaos.add_argument(
        "--qp-method",
        choices=("ipm", "admm"),
        default="ipm",
        help="QP method the fleet starts on; admm arms the rescue ladder "
        "(pair with --schedule resilience)",
    )
    p_chaos.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker pool size (0 = inline; the serve schedule needs a "
        "process pool to kill real workers)",
    )
    p_chaos.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="worker pool kind when --workers > 0",
    )
    p_chaos.add_argument(
        "--trace", default=None, help="write a JSONL trace to this path"
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="fault schedule / fleet RNG seed"
    )
    p_chaos.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of the text summary",
    )

    p_conform = sub.add_parser(
        "conform",
        help="differential conformance harness over the numeric paths",
    )
    conform_sub = p_conform.add_subparsers(dest="conform_command", required=True)

    c_run = conform_sub.add_parser(
        "run", help="sweep randomized cases through the registered paths"
    )
    c_run.add_argument(
        "--cases", type=int, default=25, help="case budget (default 25)"
    )
    c_run.add_argument("--seed", type=int, default=0, help="generator seed")
    c_run.add_argument(
        "--paths",
        default=None,
        help="comma-separated path names (default: all registered; see "
        "`repro conform paths`)",
    )
    c_run.add_argument(
        "--robots",
        default=None,
        help="comma-separated benchmark names, case-insensitive "
        "(default: the six Table III robots plus CartPole)",
    )
    c_run.add_argument(
        "--fxp-bits",
        default=None,
        metavar="WORD:FRACTION",
        help="fixed-point width for the accelerator path, e.g. 32:17 "
        "(default: the paper's Q14.17)",
    )
    c_run.add_argument(
        "--ledger", default=None, help="tolerance ledger path override"
    )
    c_run.add_argument(
        "--out-dir",
        default="conform/failures",
        help="directory for shrunk failure repro files",
    )
    c_run.add_argument(
        "--no-shrink",
        action="store_true",
        help="serialize failing cases without shrinking them first",
    )
    c_run.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of the text summary",
    )

    c_replay = conform_sub.add_parser(
        "replay", help="re-run a serialized failure case file"
    )
    c_replay.add_argument("file", help="repro JSON written by `conform run`")
    c_replay.add_argument(
        "--ledger", default=None, help="tolerance ledger path override"
    )
    c_replay.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable outcome instead of the text summary",
    )

    c_paths = conform_sub.add_parser(
        "paths", help="list the registered numeric paths"
    )
    c_paths.add_argument(
        "--family",
        default=None,
        help="only list paths of this family, e.g. qp, dynamics, accel",
    )

    return parser


def _parse_fxp_bits(spec):
    from repro.accelerator import FixedPointFormat, Q14_17

    if not spec:
        return Q14_17
    try:
        word, _, fraction = spec.partition(":")
        return FixedPointFormat(int(word), int(fraction))
    except ValueError:
        raise SystemExit(
            f"invalid --fxp-bits {spec!r}; expected WORD:FRACTION, e.g. 32:17"
        )


def _cmd_conform(args) -> int:
    from repro.conform import path_names, replay_file, run_conformance
    from repro.errors import ReproError
    from repro.robots import resolve

    if args.conform_command == "paths":
        from repro.conform import PATHS

        family = getattr(args, "family", None)
        shown = 0
        for name, path in PATHS.items():
            if family is not None and path.family != family:
                continue
            tag = " [baseline]" if path.baseline else ""
            print(f"{name:18s} {path.family:9s} {path.description}{tag}")
            shown += 1
        if family is not None and not shown:
            families = sorted({p.family for p in PATHS.values()})
            print(
                f"no paths in family {family!r}; families: "
                f"{', '.join(families)}",
                file=sys.stderr,
            )
            return 2
        return 0

    if args.conform_command == "replay":
        try:
            outcome = replay_file(args.file, ledger_path=args.ledger)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(outcome.to_dict(), indent=2))
        else:
            print(f"{outcome.case.case_id}: {outcome.status}")
            for c in outcome.comparisons:
                mark = "ok " if c.ok else "FAIL"
                print(
                    f"  {mark} {c.path:15s} err={c.error:9.3e} "
                    f"tol={c.tolerance:9.3e}"
                    + (f"  ({c.note})" if c.note else "")
                )
        return 0 if outcome.status in ("pass", "infeasible") else 1

    # conform run
    try:
        paths = (
            [p.strip() for p in args.paths.split(",") if p.strip()]
            if args.paths
            else None
        )
        robots = (
            [resolve(r.strip()) for r in args.robots.split(",") if r.strip()]
            if args.robots
            else None
        )
        if paths is not None:
            known = set(path_names())
            unknown = [p for p in paths if p not in known]
            if unknown:
                print(
                    f"unknown path(s) {', '.join(unknown)}; registered: "
                    f"{', '.join(sorted(known))}",
                    file=sys.stderr,
                )
                return 2
        report = run_conformance(
            n_cases=args.cases,
            seed=args.seed,
            robots=robots,
            paths=paths,
            ledger_path=args.ledger,
            fmt=_parse_fxp_bits(args.fxp_bits),
            shrink=not args.no_shrink,
            out_dir=args.out_dir,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_list() -> int:
    from repro.experiments import render_table, table3

    print(render_table(table3(), "Table III benchmarks"))
    return 0


def _cmd_solve(args) -> int:
    from repro.mpc.controller import PlantIntegrator
    from repro.robots import BENCHMARK_NAMES, build_benchmark

    if args.benchmark not in BENCHMARK_NAMES:
        print(
            f"unknown benchmark {args.benchmark!r}; choose from "
            f"{', '.join(BENCHMARK_NAMES)}",
            file=sys.stderr,
        )
        return 2

    as_json = getattr(args, "json", False)
    bench = build_benchmark(args.benchmark)
    problem = bench.transcribe(horizon=args.horizon)
    controller = bench.make_controller(problem)
    plant = PlantIntegrator(problem)
    x = bench.x0.copy()
    if not as_json:
        print(
            f"{bench.name}: {bench.system_description} / {bench.task_description}"
        )
        print(f"horizon N={args.horizon}, dt={problem.dt}s, nz={problem.nz}")
    steps = []
    for step in range(args.steps):
        t0 = perf_counter()
        u = controller.step(x, ref=bench.ref)
        solve_time = perf_counter() - t0
        x = plant.advance(x, u, problem.dt, 4)
        res = controller.last_result
        if as_json:
            steps.append(
                {
                    "step": step,
                    "objective": res.objective,
                    "iterations": res.iterations,
                    "qp_iterations": res.qp_iterations,
                    "converged": res.converged,
                    "status": res.status,
                    "kkt_residual": res.kkt_residual,
                    "solve_time_s": solve_time,
                    "input": u.tolist(),
                }
            )
        else:
            print(
                f"  step {step:3d}: iters={res.iterations:3d} "
                f"kkt={res.kkt_residual:8.2e} obj={res.objective:10.4f} "
                f"|u|max={np.abs(u).max():8.4f}"
            )
    if as_json:
        stats = controller.solver.stats
        doc = {
            "benchmark": bench.name,
            "horizon": args.horizon,
            "dt": problem.dt,
            "nz": problem.nz,
            "steps": steps,
            "final_state": x.tolist(),
            "totals": {
                "solves": stats["solves"],
                "sqp_iterations": stats["sqp_iterations"],
                "qp_iterations": stats["qp_iterations"],
                "solve_time_s": sum(s["solve_time_s"] for s in steps),
                "linearize_time_s": stats["linearize_time"],
                "factorize_time_s": stats["factorize_time"],
                "substitute_time_s": stats["substitute_time"],
                "converged_steps": sum(1 for s in steps if s["converged"]),
            },
        }
        print(json.dumps(doc, indent=2))
    else:
        print(f"final state: {np.array2string(x, precision=4)}")
    return 0


def _cmd_serve_sim(args) -> int:
    from repro.errors import ReproError
    from repro.robots import BENCHMARK_NAMES, EXTRA_NAMES
    from repro.serve import DEFAULT_ROBOTS, LoadConfig, run_load

    robots = (
        tuple(r.strip() for r in args.robots.split(",") if r.strip())
        if args.robots
        else DEFAULT_ROBOTS
    )
    known = (*BENCHMARK_NAMES, *EXTRA_NAMES)
    unknown = [r for r in robots if r not in known]
    if unknown:
        print(
            f"unknown benchmark(s) {', '.join(unknown)}; choose from "
            f"{', '.join(known)}",
            file=sys.stderr,
        )
        return 2

    if args.array_backend is not None:
        if args.backend != "batched":
            print(
                "--array-backend requires --backend batched",
                file=sys.stderr,
            )
            return 2
        from repro.batch import available_backends

        name = args.array_backend.split(":", 1)[0]
        if name not in available_backends():
            print(
                f"array backend {name!r} is not registered here "
                f"(available: {', '.join(available_backends())}); "
                "torch/cupy register automatically when importable",
                file=sys.stderr,
            )
            return 2

    def _int_list(text, flag):
        try:
            vals = tuple(int(v) for v in text.split(",") if v.strip())
        except ValueError:
            raise ReproError(f"{flag} wants comma-separated ints, got {text!r}")
        if not vals:
            raise ReproError(f"{flag} must name at least one value")
        return vals

    try:
        horizons = (
            _int_list(args.horizons, "--horizons") if args.horizons else None
        )
        rungs = _int_list(args.rungs, "--rungs") if args.rungs else None
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    config = LoadConfig(
        sessions=args.sessions,
        ticks=args.ticks,
        robots=robots,
        horizon=args.horizon,
        horizons=horizons,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms > 0 else None,
        degrade_after=args.degrade_after,
        seed=args.seed,
        arrival_jitter=args.arrival_jitter,
        robot_mix=args.robot_mix,
        engine=args.engine,
        shards=args.shards,
        shard_backend=args.shard_backend,
        rungs=rungs,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        workers=args.workers,
        backend=args.backend,
        array_backend=args.array_backend,
        qp_method=args.qp_method,
        codegen=args.codegen,
        tick_budget_s=(
            args.tick_budget_ms / 1e3 if args.tick_budget_ms else None
        ),
        trace_path=args.trace,
    )
    try:
        report = run_load(config)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        print(
            f"wall time:       {report.wall_time_s:.1f}s "
            f"({report.metrics.fleet.steps / max(report.wall_time_s, 1e-9):.1f} "
            "solves/s)"
        )
        if report.plant_resets:
            print(f"plant resets:    {report.plant_resets}")
        if report.trace_path:
            print(f"trace:           {report.trace_path}")
    if report.crashed:
        print(
            f"CRASHED sessions: {', '.join(report.crashed)}", file=sys.stderr
        )
        return 1
    return 0


def _cmd_backends() -> int:
    from repro.batch import available_backends, get_backend
    from repro.conform import PATHS

    names = available_backends()
    active = get_backend()  # resolves $REPRO_ARRAY_BACKEND / the default

    accels = ("torch", "cupy", "jax")

    def conform_paths_for(name: str) -> List[str]:
        # Suffixed paths (batch_qp_torch, batch_admm_cupy, ...) belong to
        # that backend; batch paths with no accelerator suffix run on the
        # always-present numpy reference (batch_qp_numpy_float32 included).
        if name == "numpy":
            return sorted(
                p
                for p in PATHS
                if p.startswith("batch_")
                and not any(f"_{a}" in p for a in accels)
            )
        return sorted(p for p in PATHS if f"_{name}" in p)

    for name in names:
        xp = get_backend(name)
        kind = "device" if xp.is_device else "host"
        mark = " (selected)" if name == active.name else ""
        print(f"{name:10s} {kind:6s} dtype={xp.dtype_name}{mark}")
        print(f"{'':10s} variants: {name}, {name}:float32, {name}:float64")
        paths = conform_paths_for(name)
        if paths:
            print(f"{'':10s} conform paths: {', '.join(paths)}")
    for name in ("torch", "cupy", "jax"):
        if name not in names:
            print(f"{name:10s} absent (not importable in this environment)")
    print(
        "\nselect with REPRO_ARRAY_BACKEND=NAME[:DTYPE] or "
        "`repro serve-sim --backend batched --array-backend NAME`"
    )
    return 0


def _cmd_chaos(args) -> int:
    from repro.errors import ReproError
    from repro.faults import BUILTIN_SCHEDULES, CampaignConfig, run_campaign
    from repro.robots import resolve

    try:
        robot = resolve(args.robot)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.schedule not in BUILTIN_SCHEDULES:
        print(
            f"unknown schedule {args.schedule!r}; choose from "
            f"{', '.join(BUILTIN_SCHEDULES)}",
            file=sys.stderr,
        )
        return 2

    config = CampaignConfig(
        robot=robot,
        schedule=args.schedule,
        sessions=args.sessions,
        ticks=args.ticks,
        horizon=args.horizon,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms > 0 else None,
        degrade_after=args.degrade_after,
        qp_method=args.qp_method,
        seed=args.seed,
        workers=args.workers,
        backend=args.backend,
        engine=args.engine,
        shards=args.shards,
        shard_backend=args.shard_backend,
        trace_path=args.trace,
    )
    report = run_campaign(config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        print(f"wall time:       {report.wall_time_s:.1f}s")
        if report.trace_path:
            print(f"trace:           {report.trace_path}")
    if not report.ok:
        print(
            "FAILED invariants: "
            + ", ".join(k for k, v in report.invariants.items() if not v),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_compile(args) -> int:
    from repro.compiler import MachineConfig, compile_problem
    from repro.robots import BENCHMARK_NAMES, build_benchmark

    if args.benchmark not in BENCHMARK_NAMES:
        print(
            f"unknown benchmark {args.benchmark!r}; choose from "
            f"{', '.join(BENCHMARK_NAMES)}",
            file=sys.stderr,
        )
        return 2

    machine = MachineConfig(
        n_cus=args.cus,
        cus_per_cc=min(args.cus_per_cc, args.cus),
        bandwidth_bytes_per_cycle=args.bandwidth,
        compute_enabled_interconnect=not args.no_interconnect,
    )
    bench = build_benchmark(args.benchmark)
    problem = bench.transcribe(horizon=args.horizon)
    graph, pm, sched = compile_problem(problem, machine)

    print(f"{bench.name} at N={args.horizon} on {machine.n_cus} CUs")
    print(f"  M-DFG nodes:            {len(graph)}")
    print(f"  aggregation plans:      {len(pm.aggregation)}")
    print(f"  communication volume:   {pm.communication_volume()}")
    print(f"  encoded instructions:   {sched.instruction_count}")
    print(f"  cycles / IPM iteration: {sched.cycles_per_iteration:,.0f}")
    print(
        f"  time / IPM iteration:   "
        f"{sched.seconds_per_iteration() * 1e6:.2f} us at "
        f"{machine.frequency_ghz:g} GHz"
    )
    return 0


def _cmd_table(args) -> int:
    from repro.experiments import render_table, table3, table4

    if args.number == 3:
        print(render_table(table3(), "Table III"))
    else:
        print(render_table(table4(), "Table IV"))
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import (
        figure5,
        figure6,
        figure7,
        figure8,
        figure9,
        figure10,
        figure11,
        figure12,
        render_figure,
    )

    figures = {
        5: figure5,
        6: figure6,
        7: figure7,
        8: figure8,
        9: figure9,
        10: figure10,
        11: figure11,
        12: figure12,
    }
    print(render_figure(figures[args.number]()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "serve-sim":
        return _cmd_serve_sim(args)
    if args.command == "backends":
        return _cmd_backends()
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "conform":
        return _cmd_conform(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
