"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    The six Table III benchmarks and their model/task parameters.
``solve BENCHMARK``
    Run closed-loop MPC for one benchmark and print the trajectory summary.
``compile BENCHMARK``
    Compile one benchmark to the accelerator and print the schedule summary.
``table {3,4}``
    Print a reproduced paper table.
``figure {5,...,12}``
    Print a reproduced paper figure (9-12 sweep to N = 1024; takes longer).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RoboX reproduction: DSL-to-accelerator MPC toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table III benchmarks")

    p_solve = sub.add_parser("solve", help="run closed-loop MPC for a benchmark")
    p_solve.add_argument("benchmark", help="benchmark name (see `repro list`)")
    p_solve.add_argument("--horizon", type=int, default=16, help="MPC horizon N")
    p_solve.add_argument("--steps", type=int, default=10, help="closed-loop steps")

    p_compile = sub.add_parser(
        "compile", help="compile a benchmark to the accelerator"
    )
    p_compile.add_argument("benchmark")
    p_compile.add_argument("--horizon", type=int, default=32)
    p_compile.add_argument("--cus", type=int, default=256, help="compute units")
    p_compile.add_argument(
        "--cus-per-cc", type=int, default=8, help="CUs per compute cluster"
    )
    p_compile.add_argument(
        "--bandwidth",
        type=float,
        default=16.0,
        help="off-chip bandwidth in bytes/cycle",
    )
    p_compile.add_argument(
        "--no-interconnect",
        action="store_true",
        help="disable the compute-enabled interconnect (Fig. 10 ablation)",
    )

    p_table = sub.add_parser("table", help="print a reproduced paper table")
    p_table.add_argument("number", type=int, choices=(3, 4))

    p_fig = sub.add_parser("figure", help="print a reproduced paper figure")
    p_fig.add_argument("number", type=int, choices=tuple(range(5, 13)))

    return parser


def _cmd_list() -> int:
    from repro.experiments import render_table, table3

    print(render_table(table3(), "Table III benchmarks"))
    return 0


def _cmd_solve(args) -> int:
    from repro.mpc.controller import integrate_plant
    from repro.robots import BENCHMARK_NAMES, build_benchmark

    if args.benchmark not in BENCHMARK_NAMES:
        print(
            f"unknown benchmark {args.benchmark!r}; choose from "
            f"{', '.join(BENCHMARK_NAMES)}",
            file=sys.stderr,
        )
        return 2

    bench = build_benchmark(args.benchmark)
    problem = bench.transcribe(horizon=args.horizon)
    controller = bench.make_controller(problem)
    x = bench.x0.copy()
    print(f"{bench.name}: {bench.system_description} / {bench.task_description}")
    print(f"horizon N={args.horizon}, dt={problem.dt}s, nz={problem.nz}")
    for step in range(args.steps):
        u = controller.step(x, ref=bench.ref)
        x = integrate_plant(problem, x, u)
        res = controller.last_result
        print(
            f"  step {step:3d}: iters={res.iterations:3d} "
            f"kkt={res.kkt_residual:8.2e} obj={res.objective:10.4f} "
            f"|u|max={np.abs(u).max():8.4f}"
        )
    print(f"final state: {np.array2string(x, precision=4)}")
    return 0


def _cmd_compile(args) -> int:
    from repro.compiler import MachineConfig, compile_problem
    from repro.robots import BENCHMARK_NAMES, build_benchmark

    if args.benchmark not in BENCHMARK_NAMES:
        print(
            f"unknown benchmark {args.benchmark!r}; choose from "
            f"{', '.join(BENCHMARK_NAMES)}",
            file=sys.stderr,
        )
        return 2

    machine = MachineConfig(
        n_cus=args.cus,
        cus_per_cc=min(args.cus_per_cc, args.cus),
        bandwidth_bytes_per_cycle=args.bandwidth,
        compute_enabled_interconnect=not args.no_interconnect,
    )
    bench = build_benchmark(args.benchmark)
    problem = bench.transcribe(horizon=args.horizon)
    graph, pm, sched = compile_problem(problem, machine)

    print(f"{bench.name} at N={args.horizon} on {machine.n_cus} CUs")
    print(f"  M-DFG nodes:            {len(graph)}")
    print(f"  aggregation plans:      {len(pm.aggregation)}")
    print(f"  communication volume:   {pm.communication_volume()}")
    print(f"  encoded instructions:   {sched.instruction_count}")
    print(f"  cycles / IPM iteration: {sched.cycles_per_iteration:,.0f}")
    print(
        f"  time / IPM iteration:   "
        f"{sched.seconds_per_iteration() * 1e6:.2f} us at "
        f"{machine.frequency_ghz:g} GHz"
    )
    return 0


def _cmd_table(args) -> int:
    from repro.experiments import render_table, table3, table4

    if args.number == 3:
        print(render_table(table3(), "Table III"))
    else:
        print(render_table(table4(), "Table IV"))
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import (
        figure5,
        figure6,
        figure7,
        figure8,
        figure9,
        figure10,
        figure11,
        figure12,
        render_figure,
    )

    figures = {
        5: figure5,
        6: figure6,
        7: figure7,
        8: figure8,
        9: figure9,
        10: figure10,
        11: figure11,
        12: figure12,
    }
    print(render_figure(figures[args.number]()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "figure":
        return _cmd_figure(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
