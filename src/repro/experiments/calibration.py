"""Per-platform calibration against the paper's headline geomeans.

The baseline platforms are analytic models (no real ARM/Xeon/GPU hardware —
see DESIGN.md).  To anchor absolute scale, one multiplicative constant per
platform is fitted so the *six-benchmark geomean* speedup of RoboX over that
platform at the paper's N = 32 design point equals the paper's headline
number.  Everything else — per-benchmark spread, horizon scaling, the
sensitivity studies — is then a genuine prediction of the op-count model.

Paper targets (abstract + §VIII-B):

    RoboX / ARM A57      29.4x
    RoboX / Xeon E3       7.3x
    RoboX / Tegra X2      3.5x
    RoboX / GTX 650 Ti    2.0x
    RoboX / Tesla K40     0.769x   (the K40 is 1.3x faster)
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict

from repro.baselines import ALL_PLATFORMS, estimate_iteration_time
from repro.experiments.workloads import (
    BENCHMARK_NAMES,
    PAPER_HORIZON,
    mdfg,
    robox_iteration_seconds,
)

__all__ = ["PAPER_GEOMEAN_SPEEDUPS", "platform_calibration", "calibrated_iteration_seconds"]

PAPER_GEOMEAN_SPEEDUPS: Dict[str, float] = {
    "ARM Cortex A57": 29.4,
    "Intel Xeon E3": 7.3,
    "Tegra X2": 3.5,
    "GTX 650 Ti": 2.0,
    "Tesla K40": 1.0 / 1.3,
}


def _geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


@lru_cache(maxsize=None)
def platform_calibration(platform_name: str) -> float:
    """Fitted calibration constant for one platform (memoized)."""
    platform = ALL_PLATFORMS[platform_name]
    target = PAPER_GEOMEAN_SPEEDUPS[platform_name]
    raw_speedups = []
    for name in BENCHMARK_NAMES:
        graph = mdfg(name, PAPER_HORIZON)
        t_platform = estimate_iteration_time(graph, platform).seconds
        t_robox = robox_iteration_seconds(name, PAPER_HORIZON)
        raw_speedups.append(t_platform / t_robox)
    raw = _geomean(raw_speedups)
    return target / raw


def calibrated_iteration_seconds(
    benchmark_name: str, platform_name: str, horizon: int = PAPER_HORIZON
) -> float:
    """Calibrated per-iteration time of a benchmark on a baseline platform."""
    platform = ALL_PLATFORMS[platform_name]
    graph = mdfg(benchmark_name, horizon)
    cal = platform_calibration(platform_name)
    return estimate_iteration_time(graph, platform, calibration=cal).seconds
