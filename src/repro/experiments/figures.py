"""Regeneration of every figure of the paper's evaluation (§VIII-B/C).

Each ``figureN()`` returns a :class:`FigureResult`: the per-benchmark series
the paper plots plus the geomean, so the benchmark harness can print the
same rows the paper reports and the tests can assert the expected *shape*
(who wins, by roughly what factor, where the trends bend).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.baselines import ALL_PLATFORMS
from repro.compiler import MachineConfig
from repro.experiments.calibration import calibrated_iteration_seconds
from repro.experiments.workloads import (
    BENCHMARK_NAMES,
    HORIZON_SWEEP,
    PAPER_HORIZON,
    robox_iteration_seconds,
)

__all__ = [
    "FigureResult",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "CU_SWEEP",
    "BANDWIDTH_SWEEP",
]

ROBOX_POWER_W = 3.4

#: Figure 11 sweep (paper: 1 .. 1024 CUs, doubling)
CU_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
#: Figure 12 sweep (fractions of the 16 B/cycle design-point bandwidth)
BANDWIDTH_SWEEP = (0.25, 0.5, 1.0, 1.5, 2.0, 4.0)


@dataclass
class FigureResult:
    """One reproduced figure: named series over the six benchmarks."""

    figure: str
    description: str
    #: series name -> {benchmark -> value}; the series mirror the paper's bars
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: series name -> geomean over benchmarks
    geomean: Dict[str, float] = field(default_factory=dict)

    def add_series(self, name: str, values: Dict[str, float]) -> None:
        self.series[name] = dict(values)
        self.geomean[name] = _geomean(values.values())


def _geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _robox_seconds(name: str, horizon: int = PAPER_HORIZON, **machine_kwargs):
    return robox_iteration_seconds(
        name, horizon, MachineConfig(**machine_kwargs)
    )


# -- Figures 5/6: speedup ---------------------------------------------------------------


def figure5(horizon: int = PAPER_HORIZON) -> FigureResult:
    """Speedup of the Xeon E3 and RoboX over the ARM A57 baseline."""
    result = FigureResult(
        "Figure 5",
        f"Speedup over ARM A57 baseline (N = {horizon})",
    )
    arm = {
        b: calibrated_iteration_seconds(b, "ARM Cortex A57", horizon)
        for b in BENCHMARK_NAMES
    }
    result.add_series(
        "Xeon",
        {
            b: arm[b] / calibrated_iteration_seconds(b, "Intel Xeon E3", horizon)
            for b in BENCHMARK_NAMES
        },
    )
    result.add_series(
        "RoboX",
        {b: arm[b] / _robox_seconds(b, horizon) for b in BENCHMARK_NAMES},
    )
    return result


def figure6(horizon: int = PAPER_HORIZON) -> FigureResult:
    """Speedup of the Tegra X2, Tesla K40 and RoboX over the GTX 650 Ti."""
    result = FigureResult(
        "Figure 6",
        f"Speedup over GTX 650 Ti baseline (N = {horizon})",
    )
    gtx = {
        b: calibrated_iteration_seconds(b, "GTX 650 Ti", horizon)
        for b in BENCHMARK_NAMES
    }
    for platform in ("Tegra X2", "Tesla K40"):
        result.add_series(
            platform,
            {
                b: gtx[b] / calibrated_iteration_seconds(b, platform, horizon)
                for b in BENCHMARK_NAMES
            },
        )
    result.add_series(
        "RoboX",
        {b: gtx[b] / _robox_seconds(b, horizon) for b in BENCHMARK_NAMES},
    )
    return result


# -- Figures 7/8: performance per watt -------------------------------------------------


def _ppw(seconds: float, watts: float) -> float:
    """Performance-per-watt (iterations/second/watt)."""
    return 1.0 / (seconds * watts)


def figure7(horizon: int = PAPER_HORIZON) -> FigureResult:
    """Perf-per-watt improvement of Xeon and RoboX over the ARM A57."""
    result = FigureResult(
        "Figure 7",
        f"Performance-per-Watt over ARM A57 baseline (N = {horizon})",
    )
    arm_p = ALL_PLATFORMS["ARM Cortex A57"].active_power_w
    base = {
        b: _ppw(calibrated_iteration_seconds(b, "ARM Cortex A57", horizon), arm_p)
        for b in BENCHMARK_NAMES
    }
    xeon_p = ALL_PLATFORMS["Intel Xeon E3"].active_power_w
    result.add_series(
        "Xeon",
        {
            b: _ppw(
                calibrated_iteration_seconds(b, "Intel Xeon E3", horizon), xeon_p
            )
            / base[b]
            for b in BENCHMARK_NAMES
        },
    )
    result.add_series(
        "RoboX",
        {
            b: _ppw(_robox_seconds(b, horizon), ROBOX_POWER_W) / base[b]
            for b in BENCHMARK_NAMES
        },
    )
    return result


def figure8(horizon: int = PAPER_HORIZON) -> FigureResult:
    """Perf-per-watt improvement of the GPUs and RoboX over the GTX 650 Ti."""
    result = FigureResult(
        "Figure 8",
        f"Performance-per-Watt over GTX 650 Ti baseline (N = {horizon})",
    )
    gtx_p = ALL_PLATFORMS["GTX 650 Ti"].active_power_w
    base = {
        b: _ppw(calibrated_iteration_seconds(b, "GTX 650 Ti", horizon), gtx_p)
        for b in BENCHMARK_NAMES
    }
    for platform in ("Tegra X2", "Tesla K40"):
        p_w = ALL_PLATFORMS[platform].active_power_w
        result.add_series(
            platform,
            {
                b: _ppw(calibrated_iteration_seconds(b, platform, horizon), p_w)
                / base[b]
                for b in BENCHMARK_NAMES
            },
        )
    result.add_series(
        "RoboX",
        {
            b: _ppw(_robox_seconds(b, horizon), ROBOX_POWER_W) / base[b]
            for b in BENCHMARK_NAMES
        },
    )
    return result


# -- Figure 9: horizon sweep ----------------------------------------------------------------


def figure9(horizons: Sequence[int] = HORIZON_SWEEP) -> FigureResult:
    """RoboX speedup over the ARM A57 across prediction-horizon lengths."""
    result = FigureResult(
        "Figure 9",
        "RoboX speedup over ARM A57 vs. prediction horizon",
    )
    for horizon in horizons:
        result.add_series(
            f"{horizon} steps",
            {
                b: calibrated_iteration_seconds(b, "ARM Cortex A57", horizon)
                / _robox_seconds(b, horizon)
                for b in BENCHMARK_NAMES
            },
        )
    return result


# -- Figure 10: interconnect ablation ---------------------------------------------------------


def figure10(horizon: int = 1024) -> FigureResult:
    """RoboX speedup over ARM with and without the compute-enabled
    interconnect (paper runs this at N = 1024)."""
    result = FigureResult(
        "Figure 10",
        f"Compute-enabled interconnect ablation (N = {horizon})",
    )
    arm = {
        b: calibrated_iteration_seconds(b, "ARM Cortex A57", horizon)
        for b in BENCHMARK_NAMES
    }
    result.add_series(
        "Without Compute-Enabled Interconnect",
        {
            b: arm[b]
            / _robox_seconds(b, horizon, compute_enabled_interconnect=False)
            for b in BENCHMARK_NAMES
        },
    )
    result.add_series(
        "With Compute-Enabled Interconnect",
        {b: arm[b] / _robox_seconds(b, horizon) for b in BENCHMARK_NAMES},
    )
    return result


# -- Figure 11: CU sweep ---------------------------------------------------------------------


def figure11(
    horizon: int = 1024, cu_counts: Sequence[int] = CU_SWEEP
) -> FigureResult:
    """Sensitivity of RoboX speedup over ARM to the number of CUs."""
    result = FigureResult(
        "Figure 11",
        f"Speedup over ARM A57 vs. number of CUs (N = {horizon})",
    )
    arm = {
        b: calibrated_iteration_seconds(b, "ARM Cortex A57", horizon)
        for b in BENCHMARK_NAMES
    }
    for n_cus in cu_counts:
        cus_per_cc = min(8, n_cus)
        result.add_series(
            f"{n_cus} CUs",
            {
                b: arm[b]
                / _robox_seconds(
                    b, horizon, n_cus=n_cus, cus_per_cc=cus_per_cc
                )
                for b in BENCHMARK_NAMES
            },
        )
    return result


# -- Figure 12: bandwidth sweep ----------------------------------------------------------------


def figure12(
    horizon: int = 1024, factors: Sequence[float] = BANDWIDTH_SWEEP
) -> FigureResult:
    """Sensitivity of RoboX speedup over ARM to off-chip memory bandwidth."""
    result = FigureResult(
        "Figure 12",
        f"Speedup over ARM A57 vs. off-chip bandwidth (N = {horizon})",
    )
    arm = {
        b: calibrated_iteration_seconds(b, "ARM Cortex A57", horizon)
        for b in BENCHMARK_NAMES
    }
    base_bw = MachineConfig().bandwidth_bytes_per_cycle
    for factor in factors:
        result.add_series(
            f"{factor:g} x",
            {
                b: arm[b]
                / _robox_seconds(
                    b, horizon, bandwidth_bytes_per_cycle=base_bw * factor
                )
                for b in BENCHMARK_NAMES
            },
        )
    return result
