"""Plain-text rendering of reproduced figures/tables.

Used by the benchmark harness (every bench prints the same rows/series the
paper reports) and by the EXPERIMENTS.md generator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.figures import FigureResult

__all__ = ["render_figure", "render_table", "format_ratio"]


def format_ratio(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}x"
    if value >= 10:
        return f"{value:.1f}x"
    return f"{value:.2f}x"


def render_figure(result: FigureResult, benchmarks: Sequence[str] = ()) -> str:
    """Render a FigureResult as an aligned text table."""
    if not benchmarks:
        first = next(iter(result.series.values()))
        benchmarks = list(first)
    lines = [f"{result.figure}: {result.description}"]
    header = f"{'series':<42}" + "".join(f"{b:>13}" for b in benchmarks)
    header += f"{'geomean':>13}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in result.series.items():
        row = f"{name:<42}"
        for b in benchmarks:
            row += f"{format_ratio(values[b]):>13}"
        row += f"{format_ratio(result.geomean[name]):>13}"
        lines.append(row)
    return "\n".join(lines)


def render_table(rows: List[Dict[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return title
    columns = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c, ""))) for r in rows))
        for c in columns
    }
    lines = [title] if title else []
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for r in rows:
        lines.append(
            "  ".join(_fmt(r.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
