"""Evaluation harness: regenerates every table and figure of §VIII."""

from repro.experiments.calibration import (
    PAPER_GEOMEAN_SPEEDUPS,
    calibrated_iteration_seconds,
    platform_calibration,
)
from repro.experiments.figures import (
    BANDWIDTH_SWEEP,
    CU_SWEEP,
    FigureResult,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
)
from repro.experiments.report import format_ratio, render_figure, render_table
from repro.experiments.tables import PAPER_TABLE3, table3, table4
from repro.experiments.workloads import (
    BENCHMARK_NAMES,
    HORIZON_SWEEP,
    PAPER_HORIZON,
    mdfg,
    problem,
    robox_iteration_seconds,
    schedule,
)

__all__ = [
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "FigureResult",
    "CU_SWEEP",
    "BANDWIDTH_SWEEP",
    "table3",
    "table4",
    "PAPER_TABLE3",
    "render_figure",
    "render_table",
    "format_ratio",
    "platform_calibration",
    "calibrated_iteration_seconds",
    "PAPER_GEOMEAN_SPEEDUPS",
    "BENCHMARK_NAMES",
    "PAPER_HORIZON",
    "HORIZON_SWEEP",
    "problem",
    "mdfg",
    "schedule",
    "robox_iteration_seconds",
]
