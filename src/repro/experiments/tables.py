"""Regeneration of the paper's tables (III and IV)."""

from __future__ import annotations

from typing import Dict, List

from repro.baselines import ALL_PLATFORMS
from repro.compiler import MachineConfig
from repro.robots import all_benchmarks, table_iii_row

__all__ = ["table3", "table4", "PAPER_TABLE3"]

#: the paper's Table III, for verification
PAPER_TABLE3 = {
    "MobileRobot": {"states": 3, "inputs": 2, "penalties": 5, "constraints": 2},
    "Manipulator": {"states": 4, "inputs": 2, "penalties": 6, "constraints": 10},
    "AutoVehicle": {"states": 6, "inputs": 2, "penalties": 8, "constraints": 8},
    "MicroSat": {"states": 8, "inputs": 4, "penalties": 12, "constraints": 12},
    "Quadrotor": {"states": 12, "inputs": 4, "penalties": 10, "constraints": 7},
    "Hexacopter": {"states": 12, "inputs": 6, "penalties": 19, "constraints": 10},
}


def table3() -> List[Dict[str, object]]:
    """Benchmarks and their model/task parameters (paper Table III)."""
    return [table_iii_row(b) for b in all_benchmarks()]


def table4() -> List[Dict[str, object]]:
    """Specifications of the baselines and RoboX (paper Table IV)."""
    rows: List[Dict[str, object]] = []
    for spec in ALL_PLATFORMS.values():
        rows.append(
            {
                "platform": spec.name,
                "kind": spec.kind,
                "cores": spec.cores,
                "clock_ghz": spec.frequency_ghz,
                "memory_gb": spec.memory_gb,
                "tdp_w": spec.tdp_w,
                "technology_nm": spec.technology_nm,
            }
        )
    machine = MachineConfig()
    rows.append(
        {
            "platform": "RoboX",
            "kind": "accelerator",
            "cores": machine.n_cus,
            "clock_ghz": machine.frequency_ghz,
            "memory_gb": f"{machine.onchip_sram_bytes // 1024} KB (on-chip)",
            "tdp_w": machine.total_power_watts,
            "technology_nm": 45,
            "peak_bandwidth_gbs": machine.bandwidth_bytes_per_cycle
            * machine.frequency_ghz,
            "lut_entries": 4096,
        }
    )
    return rows
