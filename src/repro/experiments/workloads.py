"""Benchmark workload construction and caching for the evaluation harness.

Building a benchmark's transcription + M-DFG + schedule is pure but not
free, and the figures sweep the same six robots over many horizons and
machine configs — so this module memoizes each (benchmark, horizon) problem
and each (benchmark, horizon, machine) schedule for the process lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.compiler import MDFG, MachineConfig, Scheduler, StaticSchedule, translate
from repro.compiler.mapping import map_mdfg
from repro.robots import BENCHMARK_NAMES, build_benchmark

__all__ = [
    "BENCHMARK_NAMES",
    "PAPER_HORIZON",
    "HORIZON_SWEEP",
    "benchmark",
    "problem",
    "mdfg",
    "schedule",
    "robox_iteration_seconds",
]

#: default prediction horizon of the paper's main results (Figs. 5-8)
PAPER_HORIZON = 32
#: Figure 9 horizon sweep
HORIZON_SWEEP = (32, 64, 128, 256, 512, 1024)


@lru_cache(maxsize=None)
def benchmark(name: str):
    return build_benchmark(name)


@lru_cache(maxsize=None)
def problem(name: str, horizon: int = PAPER_HORIZON):
    return benchmark(name).transcribe(horizon=horizon)


@lru_cache(maxsize=None)
def mdfg(name: str, horizon: int = PAPER_HORIZON) -> MDFG:
    return translate(problem(name, horizon))


@lru_cache(maxsize=None)
def _schedule_cached(
    name: str, horizon: int, machine_key: Tuple
) -> StaticSchedule:
    machine = MachineConfig(*machine_key)
    graph = mdfg(name, horizon)
    pm = map_mdfg(graph, machine.n_cus, machine.cus_per_cc)
    return Scheduler(machine).schedule(graph, pm)


def schedule(
    name: str,
    horizon: int = PAPER_HORIZON,
    machine: MachineConfig = MachineConfig(),
) -> StaticSchedule:
    """Memoized static schedule for a benchmark on a machine config."""
    key = (
        machine.n_cus,
        machine.cus_per_cc,
        machine.frequency_ghz,
        machine.bandwidth_bytes_per_cycle,
        machine.onchip_sram_bytes,
        machine.compute_enabled_interconnect,
        machine.total_power_watts,
        machine.kernel_efficiency,
    )
    return _schedule_cached(name, horizon, key)


def robox_iteration_seconds(
    name: str,
    horizon: int = PAPER_HORIZON,
    machine: MachineConfig = MachineConfig(),
) -> float:
    """Seconds per solver iteration on the RoboX accelerator."""
    return schedule(name, horizon, machine).seconds_per_iteration()
