"""Deterministic fault injection across the solver → controller → serve stack.

The chaos-engineering counterpart of :mod:`repro.serve`: seedable
:class:`FaultSchedule` windows drive injectors at three layers — sensor
(NaN/Inf measurements, dropout, spikes, actuator saturation), solver
(forced factorization failures, ill-conditioning, budget starvation), and
serve (dying pool workers, injected latency) — through the same hook points
production code exposes (:attr:`MPCController.state_fault_hook` and
friends, :attr:`InteriorPointSolver.fault_hook`,
:attr:`ServeEngine.fault_hook`).  :func:`run_campaign` scripts a whole
storm over a live fleet and asserts the recovery invariants; ``repro
chaos`` is its CLI.
"""

from repro.faults.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.faults.injectors import EngineFaultInjector, SessionFaultInjector
from repro.faults.schedule import (
    BUILTIN_SCHEDULES,
    LAYER_OF,
    SENSOR_KINDS,
    SERVE_KINDS,
    SOLVER_KINDS,
    FaultSchedule,
    FaultSpec,
    builtin_schedule,
)

__all__ = [
    "FaultSpec",
    "FaultSchedule",
    "builtin_schedule",
    "BUILTIN_SCHEDULES",
    "LAYER_OF",
    "SENSOR_KINDS",
    "SOLVER_KINDS",
    "SERVE_KINDS",
    "SessionFaultInjector",
    "EngineFaultInjector",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
]
