"""Deterministic fault schedules: what breaks, when, and for whom.

A :class:`FaultSchedule` is a declarative list of :class:`FaultSpec` windows
over campaign ticks.  Whether a given spec *fires* for a given (tick,
session) is a pure function of ``(schedule.seed, tick, session_index,
spec_index)`` — re-running a campaign with the same seed replays the exact
same fault pattern, on any backend, which is what makes chaos-test failures
reproducible.

Fault kinds by layer:

===============  =======  ====================================================
kind             layer    effect
===============  =======  ====================================================
``nan_state``    sensor   one measurement entry becomes NaN
``inf_state``    sensor   one measurement entry becomes +Inf
``dropout``      sensor   the previous measurement is served again (stale)
``spike``        sensor   additive N(0, magnitude^2) noise on the measurement
``saturate``     sensor   the applied input is clipped to [-magnitude, +magnitude]
``chol_fail``    solver   the next ``magnitude`` factorization attempts fail
``illcond``      solver   one KKT row/col is scaled by ``magnitude`` (cond blowup)
``illcond_qp``   solver   one condensed-QP Hessian row/col scaled by ``magnitude``
``admm_stall``   solver   the next ``magnitude`` ADMM solves report a stall
``budget_starve``  solver  the per-step budget is replaced by ``magnitude`` seconds
``worker_crash`` serve    the dispatched solve's worker dies mid-solve
``slow_worker``  serve    the dispatched solve is delayed by ``magnitude`` seconds
``shard_crash``  serve    the session's solver shard dies (serve2 handoff)
===============  =======  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = [
    "SENSOR_KINDS",
    "SOLVER_KINDS",
    "SERVE_KINDS",
    "LAYER_OF",
    "FaultSpec",
    "FaultSchedule",
    "BUILTIN_SCHEDULES",
    "builtin_schedule",
]

SENSOR_KINDS = ("nan_state", "inf_state", "dropout", "spike", "saturate")
SOLVER_KINDS = (
    "chol_fail",
    "illcond",
    "illcond_qp",
    "admm_stall",
    "budget_starve",
)
SERVE_KINDS = ("worker_crash", "slow_worker", "shard_crash")

#: fault kind -> injection layer ("sensor" | "solver" | "serve")
LAYER_OF: Dict[str, str] = {
    **{k: "sensor" for k in SENSOR_KINDS},
    **{k: "solver" for k in SOLVER_KINDS},
    **{k: "serve" for k in SERVE_KINDS},
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault window: ``kind`` may fire on ticks ``start <= t < stop``."""

    kind: str
    #: first tick (inclusive) the fault may fire
    start: int = 0
    #: first tick (exclusive) after which the fault is cleared
    stop: int = 1
    #: per-tick fire probability (1.0 = every tick in the window)
    probability: float = 1.0
    #: session indices the fault targets (None = every session)
    sessions: Optional[Tuple[int, ...]] = None
    #: kind-specific intensity, see the module table (defaulted per kind)
    magnitude: Optional[float] = None

    def __post_init__(self):
        if self.kind not in LAYER_OF:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; known: {sorted(LAYER_OF)}"
            )
        if self.stop <= self.start:
            raise ReproError(
                f"fault window [{self.start}, {self.stop}) is empty"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError("probability must be in [0, 1]")

    @property
    def layer(self) -> str:
        return LAYER_OF[self.kind]

    def intensity(self) -> float:
        """The magnitude with the kind's default filled in."""
        if self.magnitude is not None:
            return float(self.magnitude)
        return _DEFAULT_MAGNITUDE[self.kind]

    def targets(self, session_index: int) -> bool:
        return self.sessions is None or session_index in self.sessions

    def in_window(self, tick: int) -> bool:
        return self.start <= tick < self.stop


_DEFAULT_MAGNITUDE: Dict[str, float] = {
    "nan_state": 1.0,  # entries corrupted
    "inf_state": 1.0,
    "dropout": 1.0,
    "spike": 0.5,  # noise sigma
    "saturate": 0.1,  # input clip bound
    "chol_fail": 2.0,  # failed attempts per factorization
    "illcond": 1e-7,  # row/col scale factor
    "illcond_qp": 1e5,  # condensed-Hessian row/col scale (spread blowup)
    "admm_stall": 1.0,  # forced-stall ADMM solves per tick
    "budget_starve": 1e-4,  # replacement wall budget, seconds
    "worker_crash": 1.0,
    "slow_worker": 0.05,  # injected delay, seconds
    "shard_crash": 1.0,
}


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, seedable set of fault windows."""

    specs: Tuple[FaultSpec, ...]
    seed: int = 0
    name: str = "custom"

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def clear_tick(self) -> int:
        """First tick at which every fault window has closed."""
        return max((s.stop for s in self.specs), default=0)

    def layers(self) -> Tuple[str, ...]:
        return tuple(sorted({s.layer for s in self.specs}))

    def fires(self, tick: int, session_index: int) -> List[Tuple[int, FaultSpec]]:
        """The ``(spec_index, spec)`` pairs firing for this (tick, session).

        Deterministic: the decision RNG is keyed on
        ``(seed, tick, session_index, spec_index)`` only.
        """
        out: List[Tuple[int, FaultSpec]] = []
        for idx, spec in enumerate(self.specs):
            if not (spec.in_window(tick) and spec.targets(session_index)):
                continue
            if spec.probability >= 1.0:
                out.append((idx, spec))
                continue
            rng = np.random.default_rng(
                (self.seed, tick, session_index, idx)
            )
            if rng.random() < spec.probability:
                out.append((idx, spec))
        return out

    def rng_for(self, tick: int, session_index: int, spec_index: int):
        """Per-(tick, session, spec) RNG for fault *payloads* (which entry
        goes NaN, the spike noise draw, ...) — disjoint from the fire
        decision stream."""
        return np.random.default_rng(
            (self.seed, tick, session_index, spec_index, 0xFA17)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "clear_tick": self.clear_tick,
            "specs": [
                {
                    "kind": s.kind,
                    "start": s.start,
                    "stop": s.stop,
                    "probability": s.probability,
                    "sessions": None if s.sessions is None else list(s.sessions),
                    "magnitude": s.intensity(),
                }
                for s in self.specs
            ],
        }


def _window(ticks: int, lo: float, hi: float) -> Tuple[int, int]:
    """A [start, stop) window at fractional positions of the horizon,
    clamped so even tiny campaigns get a non-empty window that clears
    before the end."""
    clear = max(2, int(round(0.6 * ticks)))
    start = min(int(round(lo * ticks)), clear - 1)
    stop = max(start + 1, min(int(round(hi * ticks)), clear))
    return start, stop


def builtin_schedule(name: str, ticks: int = 40, seed: int = 0) -> FaultSchedule:
    """One of the named schedules, scaled to a campaign of ``ticks`` ticks.

    Every builtin clears by ~60% of the horizon, leaving the back 40% for
    the recovery invariants to be checked against.
    """
    w = lambda lo, hi: _window(ticks, lo, hi)  # noqa: E731
    if name == "smoke":
        specs = [
            FaultSpec("spike", *w(0.10, 0.30), probability=0.8),
            FaultSpec("nan_state", *w(0.20, 0.35), probability=0.5),
            FaultSpec("chol_fail", *w(0.30, 0.45), probability=0.5),
        ]
    elif name == "sensor":
        specs = [
            FaultSpec("nan_state", *w(0.05, 0.20), probability=0.6),
            FaultSpec("inf_state", *w(0.15, 0.30), probability=0.4),
            FaultSpec("dropout", *w(0.25, 0.40), probability=0.6),
            FaultSpec("spike", *w(0.30, 0.50), probability=0.8),
            FaultSpec("saturate", *w(0.40, 0.55), probability=1.0),
        ]
    elif name == "solver":
        specs = [
            FaultSpec("chol_fail", *w(0.05, 0.25), probability=0.7),
            FaultSpec("illcond", *w(0.20, 0.40), probability=0.6),
            FaultSpec("budget_starve", *w(0.35, 0.55), probability=0.8),
        ]
    elif name == "serve":
        specs = [
            FaultSpec("slow_worker", *w(0.05, 0.30), probability=0.5),
            FaultSpec("worker_crash", *w(0.30, 0.40), probability=0.3),
        ]
    elif name == "resilience":
        # Solver-resilience campaign: force ADMM stalls and genuinely
        # ill-conditioned QP data, so every recovery must come from the
        # rescue ladder (equilibration + polish + IPM fallback), never from
        # the fault simply not firing.  Pair with ``--qp-method admm``.
        specs = [
            FaultSpec("admm_stall", *w(0.05, 0.35), probability=0.8),
            FaultSpec("illcond_qp", *w(0.20, 0.45), probability=0.6),
            FaultSpec("chol_fail", *w(0.35, 0.55), probability=0.4),
        ]
    elif name == "shards":
        # Serve2 shard chaos: slow solves while shards are being shot out
        # from under the fleet, then a quiet tail for recovery.  Session
        # handoff (not just respawn) is the invariant under test — run it
        # against an engine with >= 2 shards.
        specs = [
            FaultSpec("slow_worker", *w(0.05, 0.25), probability=0.4),
            FaultSpec("shard_crash", *w(0.15, 0.40), probability=0.2),
            FaultSpec("worker_crash", *w(0.35, 0.50), probability=0.2),
        ]
    elif name == "mixed":
        specs = [
            FaultSpec("spike", *w(0.05, 0.25), probability=0.6),
            FaultSpec("nan_state", *w(0.10, 0.25), probability=0.4),
            FaultSpec("dropout", *w(0.15, 0.30), probability=0.4),
            FaultSpec("chol_fail", *w(0.25, 0.40), probability=0.5),
            FaultSpec("budget_starve", *w(0.30, 0.45), probability=0.6),
            FaultSpec("worker_crash", *w(0.40, 0.50), probability=0.25),
        ]
    else:
        raise ReproError(
            f"unknown builtin schedule {name!r}; "
            f"available: {sorted(BUILTIN_SCHEDULES)}"
        )
    return FaultSchedule(specs=tuple(specs), seed=seed, name=name)


#: names accepted by :func:`builtin_schedule` (and `repro chaos --schedule`)
BUILTIN_SCHEDULES = (
    "smoke",
    "sensor",
    "solver",
    "serve",
    "mixed",
    "resilience",
    "shards",
)
