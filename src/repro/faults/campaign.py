"""Chaos campaigns: scripted fault schedules with recovery invariants.

:func:`run_campaign` is the serving analogue of a chaos-engineering game
day: it builds a small single-robot fleet on the real
:class:`~repro.serve.engine.ServeEngine`, drives every session against its
own ground-truth plant while a :class:`~repro.faults.schedule.FaultSchedule`
corrupts measurements, sabotages factorizations, starves budgets, and kills
pool workers — then, after the schedule clears, checks the *recovery
invariants*:

* ``no_uncaught_exception`` — nothing escaped the engine tick loop.
* ``recovered_active`` — every open session re-entered ``active`` within
  ``degrade_after + recovery_slack`` ticks of the last fault window closing.
* ``bounded_state`` — every plant ends finite and within ``state_bound`` of
  its start, with no plant re-seeds after the recovery window.
* ``restarts_succeeded`` — any session the run had to crash-restart came
  back (vacuously true when nothing crashed).
* ``stalls_rescued`` — only checked for ``qp_method="admm"`` fleets whose
  schedule fired ``admm_stall`` faults: at least one ADMM->IPM rescue was
  recorded, i.e. no forced stall produced a silent bad plan.

``repro chaos`` is a thin CLI wrapper; the chaos test-suite calls
:func:`run_campaign` directly with small tick counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ServeError
from repro.faults.injectors import EngineFaultInjector, SessionFaultInjector
from repro.faults.schedule import FaultSchedule, builtin_schedule
from repro.mpc.controller import PlantIntegrator
from repro.serve.engine import EngineConfig, ServeEngine
from repro.serve.session import ACTIVE, SessionConfig
from repro.serve.telemetry import FleetMetrics, TraceWriter, render_summary

__all__ = ["CampaignConfig", "CampaignReport", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """One chaos campaign."""

    robot: str = "CartPole"
    #: a builtin schedule name or a fully-specified :class:`FaultSchedule`
    schedule: Union[str, FaultSchedule] = "smoke"
    sessions: int = 2
    ticks: int = 40
    horizon: int = 8
    deadline_s: Optional[float] = 0.05
    degrade_after: int = 3
    #: extra ticks past ``clear_tick + degrade_after`` recovery may take
    recovery_slack: int = 6
    #: ``bounded_state`` allows at most this distance from the start state
    state_bound: float = 1e3
    seed: int = 0
    workers: int = 0
    backend: str = "thread"
    #: "v1" drives the tick-batched ServeEngine; "v2" the serve2 async
    #: continuous-batching engine (the target of the ``shards`` schedule)
    engine: str = "v1"
    #: serve2 shard count (engine="v2"; >= 2 for the shard_handoff
    #: invariant — a lone shard has nowhere to hand its sessions off to)
    shards: int = 1
    shard_backend: str = "inline"
    #: QP method every session starts on; "admm" arms the rescue ladder
    #: (and the ``stalls_rescued`` invariant when the schedule stalls it)
    qp_method: str = "ipm"
    substeps: int = 2
    x0_noise: float = 0.02
    trace_path: Optional[str] = None

    def __post_init__(self):
        if self.sessions < 1:
            raise ServeError("sessions must be >= 1")
        if self.ticks < 2:
            raise ServeError("ticks must be >= 2")
        if self.engine not in ("v1", "v2"):
            raise ServeError(f"unknown engine {self.engine!r}")

    def resolved_schedule(self) -> FaultSchedule:
        if isinstance(self.schedule, FaultSchedule):
            return self.schedule
        return builtin_schedule(self.schedule, ticks=self.ticks, seed=self.seed)


@dataclass
class CampaignReport:
    """Outcome of one chaos campaign."""

    config: CampaignConfig
    schedule: Dict[str, object]
    metrics: FleetMetrics
    session_states: Dict[str, str]
    #: invariant name -> held
    invariants: Dict[str, bool]
    #: human-readable explanation for every violated invariant
    violations: List[str]
    #: first post-clear tick at which every open session was ``active``
    recovered_at_tick: Optional[int]
    #: fault kind -> times it actually fired across the fleet
    fired: Dict[str, int]
    plant_resets: int
    worker_respawns: int
    restarts_attempted: int
    restarts_succeeded: int
    wall_time_s: float
    uncaught: Optional[str] = None
    trace_path: Optional[str] = None
    tick_states: List[Dict[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every recovery invariant held (the chaos-smoke gate)."""
        return all(self.invariants.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "robot": self.config.robot,
            "engine": self.config.engine,
            "shards": self.config.shards,
            "backend": self.config.backend,
            "workers": self.config.workers,
            "sessions": self.config.sessions,
            "ticks": self.config.ticks,
            "schedule": self.schedule,
            "ok": self.ok,
            "invariants": dict(self.invariants),
            "violations": list(self.violations),
            "recovered_at_tick": self.recovered_at_tick,
            "fired": dict(self.fired),
            "plant_resets": self.plant_resets,
            "worker_respawns": self.worker_respawns,
            "restarts_attempted": self.restarts_attempted,
            "restarts_succeeded": self.restarts_succeeded,
            "uncaught": self.uncaught,
            "wall_time_s": self.wall_time_s,
            "session_states": dict(self.session_states),
            "metrics": self.metrics.to_dict(),
        }

    def summary(self) -> str:
        lines = [
            f"chaos campaign: robot={self.config.robot} "
            f"schedule={self.schedule['name']} "
            f"sessions={self.config.sessions} ticks={self.config.ticks} "
            f"backend={self.config.backend} workers={self.config.workers}",
            "faults fired:   "
            + (
                "  ".join(f"{k}={n}" for k, n in sorted(self.fired.items()))
                or "(none)"
            ),
            f"recovery:       clear_tick={self.schedule['clear_tick']}  "
            f"recovered_at={self.recovered_at_tick}  "
            f"plant_resets={self.plant_resets}  "
            f"worker_respawns={self.worker_respawns}  "
            f"restarts={self.restarts_succeeded}/{self.restarts_attempted}",
        ]
        for name, held in sorted(self.invariants.items()):
            lines.append(f"invariant:      {name:24s} {'PASS' if held else 'FAIL'}")
        for violation in self.violations:
            lines.append(f"  !! {violation}")
        lines.append("")
        lines.append(render_summary(self.metrics, self.session_states))
        return "\n".join(lines)


def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Run one chaos campaign and evaluate the recovery invariants."""
    schedule = config.resolved_schedule()
    if config.ticks <= schedule.clear_tick:
        raise ServeError(
            f"campaign ticks ({config.ticks}) must extend past the "
            f"schedule's clear_tick ({schedule.clear_tick}) so recovery "
            "can be observed"
        )
    trace = (
        TraceWriter(config.trace_path) if config.trace_path is not None else None
    )
    if config.engine == "v2":
        from repro.serve2 import AsyncServeEngine, Serve2Config

        engine = AsyncServeEngine(
            Serve2Config(
                max_sessions=config.sessions,
                shards=config.shards,
                shard_backend=config.shard_backend,
                qp_method=config.qp_method,
            ),
            trace=trace,
        )
    else:
        engine = ServeEngine(
            EngineConfig(
                max_sessions=config.sessions,
                workers=config.workers,
                backend=config.backend,
            ),
            trace=trace,
        )

    t0 = perf_counter()
    rng = np.random.default_rng(config.seed)
    sids: List[str] = []
    injectors: Dict[str, SessionFaultInjector] = {}
    x: Dict[str, np.ndarray] = {}
    x0_of: Dict[str, np.ndarray] = {}
    plant_of: Dict[str, PlantIntegrator] = {}
    dt = None
    for i in range(config.sessions):
        sid = engine.create_session(
            SessionConfig(
                robot=config.robot,
                horizon=config.horizon,
                deadline_s=config.deadline_s,
                degrade_after=config.degrade_after,
                qp_method=config.qp_method,
            )
        )
        sids.append(sid)
        bench, problem = engine.binding(config.robot, config.horizon)
        dt = problem.dt
        plant_of[sid] = PlantIntegrator(problem)
        x0 = np.asarray(bench.x0, dtype=float)
        x0_of[sid] = x0
        x[sid] = x0 + config.x0_noise * rng.standard_normal(x0.shape)
        injector = SessionFaultInjector(schedule, session_index=i)
        # Solver-layer faults run wherever the solve runs; these hooks only
        # reach inline/thread solves (the process backend's fault surface is
        # the serve layer).  Sensor faults are applied below, plant-side,
        # identically on every backend.
        injector.bind_solver(engine.get_session(sid).controller)
        injectors[sid] = injector
    if any(spec.layer == "serve" for spec in schedule.specs):
        engine.fault_hook = EngineFaultInjector(schedule, sids)

    clear = schedule.clear_tick
    recovered_at: Optional[int] = None
    plant_resets = 0
    late_plant_resets = 0
    restarts_attempted = 0
    restarts_succeeded = 0
    uncaught: Optional[str] = None
    tick_states: List[Dict[str, str]] = []
    recovery_limit = clear + config.degrade_after + config.recovery_slack

    for t in range(config.ticks):
        for injector in injectors.values():
            injector.advance(t)
        if t >= clear:
            # The operator-side recovery action: once the storm has passed,
            # restart anything the chaos actually managed to crash.
            for sid in engine.crashed_sessions():
                restarts_attempted += 1
                try:
                    engine.restart_session(sid)
                    restarts_succeeded += 1
                except Exception:  # noqa: BLE001 - counted as a violation
                    pass
        inputs = {
            sid: (injectors[sid].corrupt_state(x[sid]), None)
            for sid in sids
            if engine.sessions[sid].serving
        }
        if not inputs:
            break
        try:
            report = engine.tick(inputs)
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            uncaught = f"tick {t}: {type(exc).__name__}: {exc}"
            break
        for sid, outcome in report.outcomes.items():
            u = injectors[sid].corrupt_input(outcome.u)
            x_next = plant_of[sid].advance(x[sid], u, dt, config.substeps)
            if not np.all(np.isfinite(x_next)):
                x_next = x0_of[sid].copy()
                plant_resets += 1
                if t > recovery_limit:
                    late_plant_resets += 1
            x[sid] = x_next
        states = engine.session_states()
        tick_states.append(states)
        if recovered_at is None and t >= clear:
            open_states = [s for s in states.values() if s != "closed"]
            if open_states and all(s == ACTIVE for s in open_states):
                recovered_at = t

    engine.collect_solver_stats()
    states = engine.session_states()
    wall = perf_counter() - t0

    fired: Dict[str, int] = {}
    for injector in injectors.values():
        for kind, n in injector.fired_counts.items():
            fired[kind] = fired.get(kind, 0) + n
    if engine.fault_hook is not None:
        for kind, n in engine.fault_hook.fired_counts.items():
            fired[kind] = fired.get(kind, 0) + n

    invariants: Dict[str, bool] = {}
    violations: List[str] = []

    invariants["no_uncaught_exception"] = uncaught is None
    if uncaught is not None:
        violations.append(f"uncaught exception escaped the tick loop: {uncaught}")

    recovered = recovered_at is not None and recovered_at <= recovery_limit
    invariants["recovered_active"] = recovered
    if not recovered:
        violations.append(
            f"fleet not fully active by tick {recovery_limit} "
            f"(clear={clear}, recovered_at={recovered_at}, "
            f"final states={sorted(set(states.values()))})"
        )

    bounded = late_plant_resets == 0
    for sid in sids:
        drift = float(np.linalg.norm(x[sid] - x0_of[sid]))
        if not np.all(np.isfinite(x[sid])) or drift > config.state_bound:
            bounded = False
            violations.append(
                f"session {sid} plant state unbounded after recovery "
                f"(drift {drift:.3g} vs bound {config.state_bound:.3g})"
            )
    if late_plant_resets:
        violations.append(
            f"{late_plant_resets} plant re-seed(s) after the recovery "
            f"window closed (tick > {recovery_limit})"
        )
    invariants["bounded_state"] = bounded

    invariants["restarts_succeeded"] = restarts_succeeded == restarts_attempted
    if restarts_succeeded != restarts_attempted:
        violations.append(
            f"{restarts_attempted - restarts_succeeded} session restart(s) "
            "failed"
        )

    # Solver-resilience invariant: when the schedule forced ADMM stalls on
    # an ADMM fleet, every one of them must have been answered by the rescue
    # ladder (an in-solve IPM retry, visible as method_fallbacks) — a stall
    # that produced a plan without a rescue is a silent bad plan.
    if config.qp_method == "admm" and fired.get("admm_stall", 0) > 0:
        rescued = engine.metrics.fleet.method_fallbacks > 0
        invariants["stalls_rescued"] = rescued
        if not rescued:
            violations.append(
                f"{fired['admm_stall']} forced ADMM stall(s) fired but no "
                "ADMM->IPM rescue was recorded (method_fallbacks == 0)"
            )

    # Serve2 sharding invariant: every shard the chaos shot down must have
    # handed its sessions to a surviving shard — a crash that only
    # respawned (without re-pinning the orphans) would strand the fleet on
    # dead capacity for a tick.
    if config.engine == "v2" and fired.get("shard_crash", 0) > 0:
        handed_off = engine.metrics.shard_handoffs > 0
        invariants["shard_handoff"] = handed_off
        if not handed_off:
            violations.append(
                f"{fired['shard_crash']} shard crash(es) fired but no "
                "session handoff was recorded (shard_handoffs == 0; "
                "does the campaign run >= 2 shards?)"
            )

    result = CampaignReport(
        config=config,
        schedule=schedule.to_dict(),
        metrics=engine.metrics,
        session_states=states,
        invariants=invariants,
        violations=violations,
        recovered_at_tick=recovered_at,
        fired=fired,
        plant_resets=plant_resets,
        worker_respawns=engine.worker_respawns,
        restarts_attempted=restarts_attempted,
        restarts_succeeded=restarts_succeeded,
        wall_time_s=wall,
        uncaught=uncaught,
        trace_path=config.trace_path,
        tick_states=tick_states,
    )
    if trace is not None:
        trace.emit(
            "summary",
            ok=result.ok,
            invariants=invariants,
            fired=fired,
            recovered_at=recovered_at,
            wall_time_s=wall,
        )
        trace.close()
    engine.shutdown()
    return result
