"""Fault injectors: bind a :class:`FaultSchedule` to the real hook points.

Two injector classes, one per side of the serving boundary:

* :class:`SessionFaultInjector` — per-session, covers the **sensor** layer
  (corrupt measurements / applied inputs) and the **solver** layer (forced
  factorization failures, ill-conditioning, budget starvation).  It *is*
  the duck-typed ``fault_hook`` object the solver consults
  (``transform_matrix`` / ``force_failure``) and provides the callables
  :class:`~repro.mpc.controller.MPCController` hooks expect.
* :class:`EngineFaultInjector` — fleet-wide, covers the **serve** layer:
  consulted once per dispatched solve and answers with a directive the
  engine (or, via the payload, the pool worker) executes — kill this
  worker, or delay this solve.

Both are clocked externally: the campaign calls ``advance(tick)`` /
passes the tick in, so the same schedule replays identically on any
backend.  Solver-layer hooks act in the process that runs the solve; with
the ``process`` backend the solve happens in a pool worker, so campaigns
that want solver faults run ``inline``/``thread`` (the serve layer is the
process backend's fault surface).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpc.budget import SolveBudget
from repro.faults.schedule import FaultSchedule, FaultSpec

__all__ = ["SessionFaultInjector", "EngineFaultInjector"]


class SessionFaultInjector:
    """Sensor- and solver-layer faults for one session/controller."""

    def __init__(self, schedule: FaultSchedule, session_index: int = 0):
        self.schedule = schedule
        self.session_index = session_index
        self.tick = -1
        self._fired: List[Tuple[int, FaultSpec]] = []
        self._last_clean: Optional[np.ndarray] = None
        self._force_failures = 0
        #: (scale, rng) of the active illcond fault, if any
        self._illcond: Optional[Tuple[float, object]] = None
        #: (scale, rng) of the active illcond_qp fault, if any
        self._illcond_qp: Optional[Tuple[float, object]] = None
        #: ADMM solves left to force into a stall this tick
        self._stall_solves = 0
        self._starve_s: Optional[float] = None
        #: counters for assertions/telemetry: kind -> times fired
        self.fired_counts: Dict[str, int] = {}

    # -- clocking -------------------------------------------------------------
    def advance(self, tick: int) -> None:
        """Enter a new tick: draw this tick's fire decisions."""
        self.tick = tick
        self._fired = self.schedule.fires(tick, self.session_index)
        self._force_failures = 0
        self._illcond = None
        self._illcond_qp = None
        self._stall_solves = 0
        self._starve_s = None
        for idx, spec in self._fired:
            self.fired_counts[spec.kind] = self.fired_counts.get(spec.kind, 0) + 1
            if spec.kind == "chol_fail":
                self._force_failures += max(1, int(spec.intensity()))
            elif spec.kind == "illcond":
                self._illcond = (
                    spec.intensity(),
                    self.schedule.rng_for(tick, self.session_index, idx),
                )
            elif spec.kind == "illcond_qp":
                self._illcond_qp = (
                    spec.intensity(),
                    self.schedule.rng_for(tick, self.session_index, idx),
                )
            elif spec.kind == "admm_stall":
                self._stall_solves += max(1, int(spec.intensity()))
            elif spec.kind == "budget_starve":
                self._starve_s = spec.intensity()

    def _payload_rng(self, spec_index: int):
        return self.schedule.rng_for(self.tick, self.session_index, spec_index)

    # -- sensor layer ---------------------------------------------------------
    def corrupt_state(self, x: np.ndarray) -> np.ndarray:
        """Apply this tick's sensor faults to a measurement (pure w.r.t. the
        clean input: the stale copy kept for ``dropout`` is the *clean*
        measurement, so a dropout never replays corruption)."""
        clean = np.asarray(x, dtype=float).copy()
        out = clean.copy()
        for idx, spec in self._fired:
            if spec.kind == "dropout":
                if self._last_clean is not None:
                    out = self._last_clean.copy()
            elif spec.kind in ("nan_state", "inf_state"):
                rng = self._payload_rng(idx)
                count = min(out.size, max(1, int(spec.intensity())))
                hit = rng.choice(out.size, size=count, replace=False)
                out[hit] = np.nan if spec.kind == "nan_state" else np.inf
            elif spec.kind == "spike":
                rng = self._payload_rng(idx)
                out = out + spec.intensity() * rng.standard_normal(out.shape)
        self._last_clean = clean
        return out

    def corrupt_input(self, u: np.ndarray) -> np.ndarray:
        """Apply this tick's actuator faults to the input actually applied."""
        out = np.asarray(u, dtype=float)
        for _, spec in self._fired:
            if spec.kind == "saturate":
                bound = spec.intensity()
                out = np.clip(out, -bound, bound)
        return out

    # -- solver layer (controller hooks + _robust_factor protocol) -----------
    def corrupt_budget(
        self, budget: Optional[SolveBudget]
    ) -> Optional[SolveBudget]:
        if self._starve_s is None:
            return budget
        return SolveBudget(wall_clock=self._starve_s)

    def transform_matrix(self, A: np.ndarray) -> np.ndarray:
        if self._illcond is None or A.shape[0] < 2:
            return A
        scale, rng = self._illcond
        k = int(rng.integers(A.shape[0]))
        out = A.copy()
        out[k, :] *= scale
        out[:, k] *= scale  # congruence: symmetry (and PSD-ness) preserved
        return out

    def force_failure(self) -> bool:
        if self._force_failures > 0:
            self._force_failures -= 1
            return True
        return False

    def transform_qp(self, H: np.ndarray) -> np.ndarray:
        """Consulted by ``solve_qp`` on the condensed Hessian: an active
        ``illcond_qp`` fault scales one row/col (congruence, so the matrix
        stays symmetric PSD) to blow up the norm spread the equilibration
        gate watches."""
        if self._illcond_qp is None or H.shape[0] < 2:
            return H
        scale, rng = self._illcond_qp
        k = int(rng.integers(H.shape[0]))
        out = H.copy()
        out[k, :] *= scale
        out[:, k] *= scale
        return out

    def force_stall(self) -> bool:
        """Consulted once per ADMM solve: ``True`` forces the solve to
        report a stall, which must drive the rescue ladder (never a silent
        bad plan)."""
        if self._stall_solves > 0:
            self._stall_solves -= 1
            return True
        return False

    # -- wiring ---------------------------------------------------------------
    def bind(self, controller) -> None:
        """Install every hook on a controller (inline solve paths): sensor
        faults on the measurement/input, starvation on the budget, and this
        object as the solver's factorization fault hook."""
        controller.state_fault_hook = self.corrupt_state
        controller.input_fault_hook = self.corrupt_input
        self.bind_solver(controller)

    def bind_solver(self, controller) -> None:
        """Install only the solver-layer hooks.  The chaos campaign uses
        this and applies sensor faults itself (on the plant-side
        measurement/input), which keeps sensor semantics identical across
        engine backends."""
        controller.budget_fault_hook = self.corrupt_budget
        controller.solver.fault_hook = self


class EngineFaultInjector:
    """Serve-layer faults, consulted by :attr:`ServeEngine.fault_hook`.

    The engine's tick counter is 1-based and pre-incremented; campaign
    schedules are written against 0-based campaign ticks, so dispatch ticks
    are shifted by ``tick_offset`` (default ``-1``) before consulting the
    schedule.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        session_ids: Sequence[str],
        tick_offset: int = -1,
    ):
        self.schedule = schedule
        self.index_of = {sid: i for i, sid in enumerate(session_ids)}
        self.tick_offset = tick_offset
        self.fired_counts: Dict[str, int] = {}

    def on_dispatch(
        self, tick: int, session_id: str
    ) -> Optional[Dict[str, object]]:
        idx = self.index_of.get(session_id)
        if idx is None:
            return None
        t = tick + self.tick_offset
        shard = None
        crash = None
        slow = None
        for _, spec in self.schedule.fires(t, idx):
            if spec.kind == "shard_crash" and shard is None:
                shard = {"kind": "shard_crash"}
            elif spec.kind == "worker_crash" and crash is None:
                crash = {"kind": "worker_crash"}
            elif spec.kind == "slow_worker" and slow is None:
                slow = {"kind": "slow", "delay_s": spec.intensity()}
        # a dead shard preempts a dead worker preempts a slow one
        directive = shard or crash or slow
        if directive is not None:
            key = (
                "shard_crash" if shard else
                "worker_crash" if crash else
                "slow_worker"
            )
            self.fired_counts[key] = self.fired_counts.get(key, 0) + 1
        return directive
