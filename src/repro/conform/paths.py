"""The registry of comparable numeric paths and the shared case context.

Every registered :class:`NumericPath` computes the *same* mathematical
object as the other members of its family, through a different
implementation:

``qp`` family — solve the case's first SQP subproblem (the extended,
stage-permuted QP produced by :meth:`InteriorPointSolver.first_qp_subproblem`):

* ``dense_kkt`` (baseline): Mehrotra predictor-corrector IPM, dense
  factorizations.
* ``banded_kkt``: same IPM routed through the stage-interleaved banded
  kernels (PR 1's hot path).
* ``reference_qp``: the independent dense log-barrier method from
  :mod:`repro.baselines.reference_solver` — a different *algorithm*, so
  agreement is meaningful.

``dynamics`` family — evaluate the discretized step function at a random
point near the benchmark's operating state:

* ``float_dynamics`` (baseline): the compiled double-precision step.
* ``accel_sim``: the same expressions translated/mapped/assembled onto the
  accelerator and executed by the cycle simulator in fixed point (width
  configurable via :class:`FixedPointFormat`).
* ``dsl_dynamics``: the DSL-compiled twin model (MobileRobot, Quadrotor)
  discretized identically — the frontend-vs-handwritten cross-check.

``linearize`` family — evaluate the full SQP linearize block (objective,
gradient, Gauss-Newton blocks, both constraint stacks and Jacobians) at a
seeded point near the case's initial guess:

* ``interp_linearize`` (baseline): the per-stage interpreted evaluators.
* ``codegen_linearize``: the ahead-of-time fused kernel path
  (:mod:`repro.codegen`, mode ``on`` — best tier available here); the C
  tier is bit-identical to the baseline, the numpy tier agrees to array
  ufunc round-off.

``padded`` family — solve the case's full MPC problem to convergence:

* ``native_horizon`` (baseline): scalar SQP solve at the case's own
  horizon.
* ``padded_horizon``: the same problem embedded in a longer serve2
  horizon bucket via the gate-reference padding of
  :mod:`repro.serve2.padding`, solved there, and cropped back — the
  correctness cornerstone of serve2's continuous batching, checked
  against the ledger per robot.

Paths never see each other's outputs; the runner compares each path against
its family baseline through the tolerance ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.accelerator.fixedpoint import FixedPointFormat, Q14_17
from repro.baselines.reference_solver import (
    reference_qp_objective,
    reference_solve_qp,
)
from repro.conform.cases import ConformanceCase
from repro.conform.ledger import relative_error
from repro.errors import BaselineError, ConformanceError
from repro.mpc.qp import QPOptions, solve_qp
from repro.mpc.task import Task
from repro.mpc.transcription import TranscribedProblem
from repro.robots.registry import build_benchmark

__all__ = [
    "CaseContext",
    "PathOutput",
    "NumericPath",
    "PATHS",
    "FAMILY_BASELINES",
    "path_names",
    "get_path",
    "supported_paths",
    "compare_outputs",
]

#: Paths with DSL twins (the only benchmarks with a maintained DSL source
#: that compiles to the same model).
_DSL_TWINS = ("MobileRobot", "Quadrotor")

# The DSL toolchain compiles + transcribes a twin per robot; cache it —
# the twin is immutable and identical across cases.
_TWIN_CACHE: Dict[str, TranscribedProblem] = {}


class CaseContext:
    """Everything the paths of one case share, built once per case.

    Deterministic in ``case``: all randomness flows from
    ``default_rng(case.seed)`` in a fixed draw order.
    """

    def __init__(self, case: ConformanceCase, fmt: FixedPointFormat = Q14_17):
        self.case = case
        self.fmt = fmt
        bench = build_benchmark(case.robot)
        self.bench = bench
        rng = np.random.default_rng(case.seed)

        task = bench.task
        if case.weight_scale != 1.0 or case.drop_constraints:
            task = Task(
                task.name,
                task.model,
                tuple(
                    dc_replace(p, weight=p.weight * case.weight_scale)
                    for p in task.penalties
                ),
                () if case.drop_constraints else task.constraints,
                task.references,
                task.meta,
            )
        self.problem = TranscribedProblem(
            bench.model, task, horizon=case.horizon, dt=bench.dt
        )

        x0 = np.asarray(bench.x0, dtype=float).copy()
        if case.x0_scale:
            x0 = x0 + case.x0_scale * rng.standard_normal(x0.shape) * (
                1.0 + np.abs(x0)
            )
        self.x0 = x0

        ref = np.asarray(bench.ref, dtype=float).copy()
        if ref.size and case.ref_scale:
            ref = ref + case.ref_scale * rng.standard_normal(ref.shape) * (
                1.0 + np.abs(ref)
            )
        self.ref = ref

        z_warm = None
        if case.warm:
            z_warm = self.problem.initial_guess(x0)
            z_warm = z_warm + 0.02 * rng.standard_normal(
                z_warm.shape
            ) * self.problem.variable_scales()
        self.z_warm = z_warm

        self.solver = bench.make_solver(self.problem)
        self.qp_args, self.qperm = self.solver.first_qp_subproblem(
            x0, ref, z_warm=z_warm
        )
        # Cold-start subproblems are hard QPs; polish + iteration headroom
        # mirror the banded/dense equivalence tests.  Conformance runs at
        # 1e-6, a tolerance every implementation reaches robustly on the
        # randomized instances — at 1e-8 the banded factorization stalls on
        # occasional ill-conditioned draws, which is a *robustness* envelope
        # (owned by the curated equivalence tests), not a correctness
        # disagreement.
        self.qp_options = dc_replace(
            self.solver.options.qp,
            polish=True,
            max_iterations=400,
            tolerance=1e-6,
        )

        # Dynamics evaluation point: named values for every model variable,
        # near the operating state (far-field points amplify fixed-point
        # quantization into meaningless comparisons).
        point: Dict[str, float] = {}
        for i, name in enumerate(bench.model.state_names):
            point[name] = float(
                x0[i] + 0.05 * rng.standard_normal() * (1.0 + abs(x0[i]))
            )
        for name in bench.model.input_names:
            point[name] = float(0.1 + 0.05 * rng.standard_normal())
        self.dyn_point = point


@dataclass
class PathOutput:
    """What one path produced for one case."""

    values: np.ndarray
    converged: bool = True
    note: str = ""
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class NumericPath:
    """A registered implementation of one family's computation."""

    name: str
    family: str  # "qp" | "dynamics"
    description: str
    run: Callable[[CaseContext], PathOutput]
    supports: Callable[[ConformanceCase], bool] = lambda case: True
    baseline: bool = False


# ---------------------------------------------------------------------------
# qp family
# ---------------------------------------------------------------------------
def _run_dense_kkt(ctx: CaseContext) -> PathOutput:
    H, g, G, b, J, d, _bw = ctx.qp_args
    res = solve_qp(H, g, G, b, J, d, ctx.qp_options)
    return PathOutput(
        values=res.x,
        converged=bool(res.converged),
        detail={"iterations": res.iterations, "residual": res.residual},
    )


def _run_banded_kkt(ctx: CaseContext) -> PathOutput:
    H, g, G, b, J, d, bw = ctx.qp_args
    res = solve_qp(H, g, G, b, J, d, ctx.qp_options, bandwidth=bw)
    return PathOutput(
        values=res.x,
        converged=bool(res.converged),
        note="" if bw is not None else "no bandwidth hint; ran dense",
        detail={"iterations": res.iterations, "residual": res.residual},
    )


def _make_batch_qp(backend: str, gate: float):
    """Build the batched-IPM path runner for one array backend.

    Three lanes share one batched solve: lane 0 is the case's exact
    subproblem (its solution is what the ledger compares against the
    family baseline), lanes 1-2 carry small deterministic gradient
    perturbations so the active-mask machinery actually runs (lanes
    converge at different iterations).  Every lane is re-solved by the
    scalar ``banded_kkt`` oracle with identical options; a lane-wise
    disagreement beyond the sanity ``gate`` marks the path non-converged —
    that is the batched-vs-scalar drift this path exists to catch.  The
    gate is looser for float32 backends (their per-lane agreement is
    bounded by the dedicated ``*_float32`` ledger entries, not by the
    float64 drift envelope).
    """

    def _run(ctx: CaseContext) -> PathOutput:
        from repro.batch import solve_qp_batch

        H, g, G, b, J, d, bw = ctx.qp_args
        opts = dc_replace(ctx.qp_options, polish=False)
        rng = np.random.default_rng(ctx.case.seed + 1)
        lanes = 3
        g_scale = 1.0 + float(np.max(np.abs(g))) if g.size else 1.0
        G_stack = np.stack([np.asarray(g, dtype=float)] * lanes)
        for lane in range(1, lanes):
            G_stack[lane] += 1e-3 * g_scale * rng.standard_normal(g.shape)

        res = solve_qp_batch(
            np.stack([H] * lanes),
            G_stack,
            None if G is None else np.stack([G] * lanes),
            None if b is None else np.stack([b] * lanes),
            None if J is None else np.stack([J] * lanes),
            None if d is None else np.stack([d] * lanes),
            opts,
            bandwidth=bw,
            backend=backend,
        )

        worst = 0.0
        for lane in range(lanes):
            oracle = solve_qp(
                H, G_stack[lane], G, b, J, d, opts, bandwidth=bw
            )
            # Same disagreement metric as ``compare_outputs``: near a flat
            # optimum two correct solvers stop on different near-optimal
            # points, so primal gap alone over-reports.
            x_lane = np.asarray(res.x[lane], dtype=float)
            dev = relative_error(x_lane, oracle.x)
            if np.all(np.isfinite(x_lane)):
                f = reference_qp_objective(H, G_stack[lane], x_lane)
                fb = reference_qp_objective(H, G_stack[lane], oracle.x)
                defect = 0.0
                if G is not None and G.shape[0]:
                    defect = float(np.max(np.abs(G @ x_lane - b)))
                if J is not None and J.shape[0]:
                    defect = max(
                        defect,
                        float(np.max(np.maximum(J @ x_lane - d, 0.0))),
                    )
                dev = min(dev, (abs(f - fb) + defect) / (1.0 + abs(fb)))
            worst = max(worst, dev)
        agree = worst < gate  # sanity gate: beyond this the paths diverged
        return PathOutput(
            values=np.asarray(res.x[0], dtype=float),
            converged=bool(np.all(res.converged)) and agree,
            note=(
                ""
                if agree
                else f"lane disagrees with scalar oracle ({worst:.1e})"
            ),
            detail={
                "backend": backend,
                "iterations": np.asarray(res.iterations).tolist(),
                "statuses": list(res.status),
                "lane_vs_scalar": worst,
                "batch_efficiency": res.batch.efficiency,
            },
        )

    return _run


def _admm_options(ctx: CaseContext) -> QPOptions:
    """Conformance options for the first-order (ADMM) paths.

    Tighter-than-default ADMM tolerance with generous iteration headroom:
    a first-order method earns its ledger row by running to high accuracy,
    so residual disagreement measures implementation drift rather than
    early stopping.  Polish is ON, and it is the same rescue polish in
    both the scalar and the batched path: the stiff robots (Manipulator,
    Humanoid) carry curvature spreads the iteration alone cannot grind
    down at this tolerance — their ledger rows are earned by
    iterate + active-set polish, the exact epilogue the runtime runs.
    The stall detector is off here: early-stopping a slow solve is a
    *runtime* resilience feature (the fallback ladder's trigger, exercised
    by the chaos campaigns) — conformance instead lets the iteration use
    its whole budget so the polish sees the best active-set guess the
    method can produce.
    """
    return dc_replace(
        ctx.qp_options,
        method="admm",
        polish=True,
        admm_tolerance=1e-8,
        admm_max_iterations=40000,
        admm_stall_iterations=0,
    )


def _run_admm_qp(ctx: CaseContext) -> PathOutput:
    H, g, G, b, J, d, _bw = ctx.qp_args
    res = solve_qp(H, g, G, b, J, d, _admm_options(ctx))
    return PathOutput(
        values=res.x,
        converged=bool(res.converged),
        detail={
            "iterations": res.iterations,
            "residual": res.residual,
            "factorizations": res.stats.factorizations,
        },
    )


#: Iteration ceiling for the perturbed decoy lanes of the batched-ADMM
#: path.  A first-order method is noise-sensitive near marginal
#: conditioning, so a decoy can legitimately need far more iterations
#: than the exact lane; the cap bounds sweep time, and a capped decoy is
#: still compared against the identically-capped scalar oracle — which
#: additionally exercises the budget-freeze path under conformance.
_ADMM_DECOY_CAP = 5000


def _make_batch_admm(backend: str, gate: float):
    """Build the batched-ADMM path runner for one array backend.

    Same three-lane template as :func:`_make_batch_qp` (lane 0 exact,
    lanes 1-2 gradient-perturbed so per-lane convergence masks engage),
    with each lane re-solved by the *scalar ADMM* oracle under identical
    options and iteration budget — the gate catches batched-vs-scalar
    drift of the same first-order iteration, while the ledger row
    compares lane 0 against the family's ``dense_kkt`` interior-point
    baseline.  Decoy perturbations are 10x smaller than the batched-IPM
    template's and their lanes are capped at ``_ADMM_DECOY_CAP``
    iterations: only lane 0 must converge — the decoys' job is to
    desynchronize the masks and then match the scalar solver wherever it
    lands.
    """

    def _run(ctx: CaseContext) -> PathOutput:
        from repro.firstorder import solve_qp_admm_batch

        H, g, G, b, J, d, _bw = ctx.qp_args
        opts = _admm_options(ctx)
        rng = np.random.default_rng(ctx.case.seed + 1)
        lanes = 3
        g_scale = 1.0 + float(np.max(np.abs(g))) if g.size else 1.0
        G_stack = np.stack([np.asarray(g, dtype=float)] * lanes)
        for lane in range(1, lanes):
            G_stack[lane] += 1e-4 * g_scale * rng.standard_normal(g.shape)

        caps = [opts.admm_max_iterations] + [_ADMM_DECOY_CAP] * (lanes - 1)
        res = solve_qp_admm_batch(
            np.stack([H] * lanes),
            G_stack,
            None if G is None else np.stack([G] * lanes),
            None if b is None else np.stack([b] * lanes),
            None if J is None else np.stack([J] * lanes),
            None if d is None else np.stack([d] * lanes),
            opts,
            iteration_caps=caps,
            backend=backend,
        )

        worst = 0.0
        for lane in range(lanes):
            oracle = solve_qp(
                H, G_stack[lane], G, b, J, d,
                dc_replace(opts, admm_max_iterations=caps[lane]),
            )
            x_lane = np.asarray(res.x[lane], dtype=float)
            dev = relative_error(x_lane, oracle.x)
            if np.all(np.isfinite(x_lane)):
                f = reference_qp_objective(H, G_stack[lane], x_lane)
                fb = reference_qp_objective(H, G_stack[lane], oracle.x)
                defect = 0.0
                if G is not None and G.shape[0]:
                    defect = float(np.max(np.abs(G @ x_lane - b)))
                if J is not None and J.shape[0]:
                    defect = max(
                        defect,
                        float(np.max(np.maximum(J @ x_lane - d, 0.0))),
                    )
                dev = min(dev, (abs(f - fb) + defect) / (1.0 + abs(fb)))
            worst = max(worst, dev)
        agree = worst < gate
        return PathOutput(
            values=np.asarray(res.x[0], dtype=float),
            converged=bool(res.converged[0]) and agree,
            note=(
                ""
                if agree
                else f"lane disagrees with scalar ADMM oracle ({worst:.1e})"
            ),
            detail={
                "backend": backend,
                "iterations": np.asarray(res.iterations).tolist(),
                "statuses": list(res.status),
                "lane_vs_scalar": worst,
                "batch_efficiency": res.batch.efficiency,
            },
        )

    return _run


def _backend_available(name: str) -> bool:
    from repro.batch import available_backends

    return name in available_backends()


#: Robots whose cold-start subproblems are conditioned well enough for a
#: float32 solve to be meaningful.  On the stiff benchmarks (Manipulator,
#: AutoVehicle, MicroSat, Quadrotor, Hexacopter) the randomized conform
#: QPs routinely exceed float32's ~7 significant digits — the solver
#: grinds its full iteration budget and lands far from the float64 oracle,
#: which measures conditioning, not implementation drift.  The float32
#: ledger rows bound agreement where agreement is defined.
_FLOAT32_ROBOTS = ("MobileRobot", "CartPole")

#: Robots with ADMM-path ledger rows.  Since the solver grew Ruiz
#: equilibration and the active-set rescue polish, this includes the stiff
#: benchmarks: Manipulator/Humanoid-class Hessians carry curvature spreads
#: (cond ~1e10) the iteration alone cannot grind below the conform
#: tolerance, but the polished solve recovers the solution to ledger
#: accuracy — the same resilience ladder the runtime uses (see DESIGN.md's
#: crossover discussion for where plain ADMM stops being the right tool).
_ADMM_ROBOTS = (
    "MobileRobot",
    "CartPole",
    "AutoVehicle",
    "Hexacopter",
    "Manipulator",
    "Humanoid",
)


def _run_reference_qp(ctx: CaseContext) -> PathOutput:
    H, g, G, b, J, d, _bw = ctx.qp_args
    try:
        x, _nu, _lam = reference_solve_qp(
            H, g, G, b, J, d, tol=1e-9, max_iterations=600
        )
    except BaselineError as exc:
        return PathOutput(values=np.zeros(g.shape), converged=False, note=str(exc))
    return PathOutput(values=x)


# ---------------------------------------------------------------------------
# dynamics family
# ---------------------------------------------------------------------------
def _dyn_vector(ctx: CaseContext, variables: Tuple[str, ...]) -> np.ndarray:
    missing = [v for v in variables if v not in ctx.dyn_point]
    if missing:
        raise ConformanceError(
            f"dynamics evaluation point lacks variables {missing}"
        )
    return np.array([ctx.dyn_point[v] for v in variables], dtype=float)


def _run_float_dynamics(ctx: CaseContext) -> PathOutput:
    F = ctx.problem._F
    vec = _dyn_vector(ctx, F.variables)
    return PathOutput(values=np.asarray(F(vec), dtype=float))


def _run_accel_sim(ctx: CaseContext) -> PathOutput:
    from repro.accelerator import simulate_phase

    result, _reference = simulate_phase(
        ctx.problem, "dynamics", inputs=dict(ctx.dyn_point), fmt=ctx.fmt
    )
    # Output labels are node ids; the translator emits dynamics outputs in
    # state order, so the id-sorted labels map positionally onto states.
    labels = sorted(result.outputs, key=lambda s: int(s.replace("node", "")))
    values = np.array([result.outputs[k] for k in labels], dtype=float)
    return PathOutput(
        values=values,
        detail={"cycles": result.cycles, "format": str(ctx.fmt)},
    )


def _twin_problem(ctx: CaseContext) -> TranscribedProblem:
    name = ctx.case.robot
    if name not in _TWIN_CACHE:
        from repro.robots import dsl_sources

        loader = {
            "MobileRobot": dsl_sources.load_mobile_robot,
            "Quadrotor": dsl_sources.load_quadrotor,
        }[name]
        twin = loader()
        # Same dt/integrator as the hand-written benchmark, so the compiled
        # discrete steps are the same function up to frontend differences.
        _TWIN_CACHE[name] = TranscribedProblem(
            twin.model, twin.task, horizon=2, dt=ctx.bench.dt
        )
    return _TWIN_CACHE[name]


def _run_dsl_dynamics(ctx: CaseContext) -> PathOutput:
    twin = _twin_problem(ctx)
    F = twin._F
    vec = _dyn_vector(ctx, F.variables)
    out = np.asarray(F(vec), dtype=float)
    # Twin state ordering may differ from the hand-written model; map by name
    # into the baseline (hand-written) state order.
    twin_states = list(twin.model.state_names)
    try:
        order = [twin_states.index(n) for n in ctx.bench.model.state_names]
    except ValueError as exc:
        raise ConformanceError(
            f"DSL twin for {ctx.case.robot} lacks a state: {exc}"
        ) from None
    return PathOutput(values=out[order])


# ---------------------------------------------------------------------------
# linearize family
# ---------------------------------------------------------------------------
def _linearize_vector(ctx: CaseContext) -> np.ndarray:
    """The whole linearize block at a seeded point, flattened.

    The evaluation point derives from an offset of the case seed so it is
    identical for every path of the family but independent of the draws
    :class:`CaseContext` already made.
    """
    p = ctx.problem
    rng = np.random.default_rng(ctx.case.seed + 7)
    z = p.initial_guess(ctx.x0)
    z = z + 0.02 * rng.standard_normal(z.shape) * p.variable_scales()
    ref = ctx.ref
    return np.concatenate(
        [
            np.atleast_1d(float(p.objective(z, ref))),
            p.objective_gradient(z, ref),
            p.objective_gauss_newton(z, ref).ravel(),
            p.equality_constraints(z, ctx.x0, ref),
            p.equality_jacobian(z, ref).ravel(),
            p.inequality_constraints(z, ref),
            p.inequality_jacobian(z, ref).ravel(),
        ]
    )


def _run_interp_linearize(ctx: CaseContext) -> PathOutput:
    ctx.problem.set_codegen("off")
    return PathOutput(values=_linearize_vector(ctx))


def _run_codegen_linearize(ctx: CaseContext) -> PathOutput:
    ctx.problem.set_codegen("on")
    values = _linearize_vector(ctx)
    stats = ctx.problem.codegen_stats()
    return PathOutput(
        values=values,
        note=(
            ""
            if stats.kernel != "interpreted"
            else f"fused kernel unavailable ({stats.fallback_reason}); "
            "comparison is trivial"
        ),
        detail=stats.as_dict(),
    )


# ---------------------------------------------------------------------------
# padded family (serve2 horizon bucketing)
# ---------------------------------------------------------------------------
#: stages of genuine padding the ``padded_horizon`` path adds on top of the
#: case horizon (rungs need not be powers of two, so any extension works)
_PAD_STAGES = 2


def _case_ref(ctx: CaseContext) -> Optional[np.ndarray]:
    return ctx.ref if ctx.ref.size else None


def _run_native_horizon(ctx: CaseContext) -> PathOutput:
    res = ctx.bench.make_solver(ctx.problem).solve(
        ctx.x0, ref=_case_ref(ctx), z_warm=ctx.z_warm
    )
    return PathOutput(values=res.z, converged=res.converged)


def _run_padded_horizon(ctx: CaseContext) -> PathOutput:
    from repro.serve2.padding import (
        crop_result,
        pad_reference,
        pad_warm_start,
        padded_task,
    )

    h = ctx.case.horizon
    bucket = h + _PAD_STAGES
    task = padded_task(ctx.problem.task)
    problem = TranscribedProblem(
        task.model, task, horizon=bucket, dt=ctx.bench.dt
    )
    ref = pad_reference(_case_ref(ctx), ctx.problem.nref, h, bucket)
    z_warm = (
        pad_warm_start(ctx.z_warm, ctx.problem, problem)
        if ctx.z_warm is not None
        else None
    )
    # The gated padded landscape is harder to descend cold than the native
    # one (the tail is objective-flat until the gates pin it): it needs
    # iteration headroom, and the gated rows raise the soft-penalty KKT
    # floor a hair — on stiff robots the padded stall plateau lands within
    # a small factor of the native tolerance while the native plateau
    # lands just under it (both are ~tolerance-accurate approximate
    # optima; neither digs deeper when asked — see the Quadrotor ledger
    # entry).  Solving at 3x the benchmark tolerance lets the solver stop
    # *at* that plateau instead of burning the iteration cap against it;
    # the *values* are still held to the family ledger, only the route is
    # allowed to be longer and its endpoint declared a touch earlier.
    base_tol = ctx.solver.options.tolerance
    solver = ctx.bench.make_solver(
        problem, max_iterations=200, tolerance=3.0 * base_tol
    )
    res = solver.solve(ctx.x0, ref=ref, z_warm=z_warm)
    # A few draws plateau a hair above even the relaxed bar (MicroSat has a
    # hard floor near 3.5x; more iterations change nothing).  A finite
    # plateau within 5x base tolerance is an answer, not a divergence —
    # accept it and let the ledger judge the values.  Genuine blow-ups
    # (non-finite or far-off residuals) still report non-convergence.
    near = (
        np.isfinite(res.kkt_residual)
        and res.kkt_residual <= 5.0 * base_tol
    )
    cropped = crop_result(res, problem, ctx.problem)
    return PathOutput(
        values=cropped.z,
        converged=cropped.converged or near,
        note=(
            ""
            if res.kkt_residual <= base_tol
            else "relaxed-tolerance plateau"
        ),
        detail={"bucket": bucket, "horizon": h, "kkt": float(res.kkt_residual)},
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
PATHS: Dict[str, NumericPath] = {}

FAMILY_BASELINES: Dict[str, str] = {
    "qp": "dense_kkt",
    "dynamics": "float_dynamics",
    "linearize": "interp_linearize",
    "padded": "native_horizon",
}


def _register(path: NumericPath) -> NumericPath:
    if path.name in PATHS:
        raise ConformanceError(f"duplicate path name {path.name!r}")
    PATHS[path.name] = path
    return path


_register(
    NumericPath(
        name="dense_kkt",
        family="qp",
        description="Mehrotra IPM, dense KKT factorizations (oracle)",
        run=_run_dense_kkt,
        baseline=True,
    )
)
_register(
    NumericPath(
        name="banded_kkt",
        family="qp",
        description="Mehrotra IPM through stage-interleaved banded kernels",
        run=_run_banded_kkt,
    )
)
_register(
    NumericPath(
        name="batch_qp",
        family="qp",
        description="batched Mehrotra IPM (repro.batch), per-lane scalar cross-check",
        run=_make_batch_qp("numpy", gate=1e-3),
    )
)
# Non-numpy array backends of the same batched IPM: registered for every
# known accelerator backend, gated by ``supports`` on actual importability
# (absent backends are skipped, with ledger entries kept so the runner is
# ready the moment the package appears in the environment).  float32
# variants carry their own, looser ledger rows.
_register(
    NumericPath(
        name="batch_qp_numpy_float32",
        family="qp",
        description="batched IPM on the numpy backend in float32",
        run=_make_batch_qp("numpy:float32", gate=5e-2),
        supports=lambda case: case.robot in _FLOAT32_ROBOTS,
    )
)
for _accel in ("torch", "cupy"):
    _register(
        NumericPath(
            name=f"batch_qp_{_accel}",
            family="qp",
            description=f"batched IPM on the {_accel} backend (masked lockstep)",
            run=_make_batch_qp(_accel, gate=1e-3),
            supports=(
                lambda case, _n=_accel: _backend_available(_n)
            ),
        )
    )
    _register(
        NumericPath(
            name=f"batch_qp_{_accel}_float32",
            family="qp",
            description=f"batched IPM on the {_accel} backend in float32",
            run=_make_batch_qp(f"{_accel}:float32", gate=5e-2),
            supports=(
                lambda case, _n=_accel: _backend_available(_n)
                and case.robot in _FLOAT32_ROBOTS
            ),
        )
    )
# First-order (ADMM) solver paths: a different *algorithm* from the IPM
# baseline, so agreement against ``dense_kkt`` is meaningful.  The batched
# variants additionally cross-check every lane against the scalar ADMM
# oracle, mirroring the batched-IPM template.
_register(
    NumericPath(
        name="admm_qp",
        family="qp",
        description="OSQP-style ADMM with cached factorization (repro.firstorder)",
        run=_run_admm_qp,
        supports=lambda case: case.robot in _ADMM_ROBOTS,
    )
)
_register(
    NumericPath(
        name="batch_admm",
        family="qp",
        description="batched ADMM (repro.firstorder.batch), per-lane scalar cross-check",
        run=_make_batch_admm("numpy", gate=1e-3),
        supports=lambda case: case.robot in _ADMM_ROBOTS,
    )
)
for _accel in ("torch", "cupy"):
    _register(
        NumericPath(
            name=f"batch_admm_{_accel}",
            family="qp",
            description=f"batched ADMM on the {_accel} backend (masked lockstep)",
            run=_make_batch_admm(_accel, gate=1e-3),
            supports=(
                lambda case, _n=_accel: _backend_available(_n)
                and case.robot in _ADMM_ROBOTS
            ),
        )
    )
_register(
    NumericPath(
        name="reference_qp",
        family="qp",
        description="independent dense log-barrier method (numpy linalg)",
        run=_run_reference_qp,
    )
)
_register(
    NumericPath(
        name="float_dynamics",
        family="dynamics",
        description="compiled double-precision discrete step (oracle)",
        run=_run_float_dynamics,
        baseline=True,
    )
)
_register(
    NumericPath(
        name="accel_sim",
        family="dynamics",
        description="fixed-point accelerator simulator (configurable width)",
        run=_run_accel_sim,
    )
)
_register(
    NumericPath(
        name="dsl_dynamics",
        family="dynamics",
        description="DSL-compiled twin model's discrete step",
        run=_run_dsl_dynamics,
        supports=lambda case: case.robot in _DSL_TWINS,
    )
)
_register(
    NumericPath(
        name="interp_linearize",
        family="linearize",
        description="per-stage interpreted linearize block (oracle)",
        run=_run_interp_linearize,
        baseline=True,
    )
)
_register(
    NumericPath(
        name="codegen_linearize",
        family="linearize",
        description="fused-kernel codegen linearize block (best tier here)",
        run=_run_codegen_linearize,
    )
)
_register(
    NumericPath(
        name="native_horizon",
        family="padded",
        description="scalar SQP solve at the case's own horizon (oracle)",
        run=_run_native_horizon,
        baseline=True,
    )
)
_register(
    NumericPath(
        name="padded_horizon",
        family="padded",
        description="the same solve inside a padded serve2 horizon bucket",
        run=_run_padded_horizon,
    )
)


def compare_outputs(
    ctx: CaseContext, family: str, out: PathOutput, base: PathOutput
) -> float:
    """Disagreement between a path and its family baseline.

    Dynamics family: plain relative error on the output vector.

    QP family: ``min(primal gap, objective gap + feasibility defect)``.
    Near a flat or weakly-unique optimum, two correct solvers legitimately
    stop on different near-optimal points (primal gap ~1e-3 with objective
    agreement ~1e-6); the objective term recognizes that, while the
    feasibility defect stops a broken solver from "winning" the objective
    by violating constraints.
    """
    err = relative_error(out.values, base.values)
    if family != "qp":
        return err
    H, g, G, b, J, d, _bw = ctx.qp_args
    x, xb = out.values, base.values
    if x.shape != xb.shape or not np.all(np.isfinite(x)):
        return err
    f = reference_qp_objective(H, g, x)
    fb = reference_qp_objective(H, g, xb)
    defect = 0.0
    if G is not None and G.shape[0]:
        defect = max(defect, float(np.max(np.abs(G @ x - b))))
    if J is not None and J.shape[0]:
        defect = max(defect, float(np.max(np.maximum(J @ x - d, 0.0))))
    alt = (abs(f - fb) + defect) / (1.0 + abs(fb))
    return min(err, alt)


def path_names() -> List[str]:
    return list(PATHS)


def get_path(name: str) -> NumericPath:
    try:
        return PATHS[name]
    except KeyError:
        raise ConformanceError(
            f"unknown conformance path {name!r}; registered: {list(PATHS)}"
        ) from None


def supported_paths(case: ConformanceCase, names: Optional[List[str]] = None):
    """The subset of ``names`` (default: all) applicable to ``case``."""
    return [
        PATHS[n] for n in (names or list(PATHS)) if get_path(n).supports(case)
    ]
