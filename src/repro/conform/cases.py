"""Randomized-but-feasible conformance case generation.

A :class:`ConformanceCase` is a *recipe*, not a problem instance: a robot
name plus a seed and a handful of perturbation knobs.  Every numeric object
(initial state, references, penalty weights, warm-start trajectory, dynamics
evaluation point) is derived deterministically from the case seed, so a case
serializes to a few JSON fields and replays bit-identically anywhere.

The knobs are chosen so generated cases stay *feasible*: perturbations are
centered on each benchmark's curated defaults (Table III robots plus the
CartPole extra) rather than sampled from scratch — differential testing
needs problems every path can actually solve, and randomly-drawn MPC
instances are overwhelmingly degenerate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConformanceError
from repro.robots.registry import BENCHMARK_NAMES, EXTRA_NAMES, resolve

__all__ = [
    "ConformanceCase",
    "DEFAULT_ROBOTS",
    "CASE_HORIZONS",
    "generate_cases",
]

#: Robots covered by default: the six Table III benchmarks plus CartPole.
DEFAULT_ROBOTS: Tuple[str, ...] = BENCHMARK_NAMES + EXTRA_NAMES

#: Horizons sampled by the generator.  Short on purpose: differential
#: coverage scales with case *count*, not per-case horizon, and the dense
#: oracle is O(n^3) in the horizon.
CASE_HORIZONS: Tuple[int, ...] = (4, 6, 8, 10)


@dataclass(frozen=True)
class ConformanceCase:
    """One randomized problem recipe (JSON-serializable, deterministic).

    Attributes:
        robot: canonical benchmark name.
        horizon: MPC horizon N for the QP-family paths.
        seed: RNG seed all numeric perturbations derive from.
        x0_scale: magnitude of the random perturbation added to the
            benchmark's default initial state (0 = exactly ``bench.x0``).
        ref_scale: magnitude of the reference-vector perturbation.
        weight_scale: multiplicative factor applied to every penalty weight.
        drop_constraints: drop the task's constraint declarations (model
            variable bounds remain — they live on the model, not the task).
        warm: linearize the first SQP subproblem at a noised warm-start
            trajectory instead of the cold-start guess.
    """

    robot: str
    horizon: int = 8
    seed: int = 0
    x0_scale: float = 0.0
    ref_scale: float = 0.0
    weight_scale: float = 1.0
    drop_constraints: bool = False
    warm: bool = False

    def __post_init__(self):
        object.__setattr__(self, "robot", resolve(self.robot))
        if self.horizon < 2:
            raise ConformanceError(
                f"conformance horizon must be >= 2, got {self.horizon}"
            )

    @property
    def case_id(self) -> str:
        return (
            f"{self.robot}-N{self.horizon}-s{self.seed}"
            f"{'-warm' if self.warm else ''}"
            f"{'-nocon' if self.drop_constraints else ''}"
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ConformanceCase":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConformanceError(
                f"unknown conformance case fields {sorted(unknown)}"
            )
        if "robot" not in data:
            raise ConformanceError("conformance case is missing 'robot'")
        return cls(**data)


def _one_case(robot: str, rng: np.random.Generator) -> ConformanceCase:
    return ConformanceCase(
        robot=robot,
        horizon=int(rng.choice(CASE_HORIZONS)),
        seed=int(rng.integers(0, 2**31 - 1)),
        x0_scale=float(rng.uniform(0.0, 0.1)),
        ref_scale=float(rng.uniform(0.0, 0.05)),
        # Log-uniform in [1/2, 2]: enough to move the active set without
        # wrecking the curated problem scaling.
        weight_scale=float(2.0 ** rng.uniform(-1.0, 1.0)),
        drop_constraints=bool(rng.random() < 0.3),
        warm=bool(rng.random() < 0.5),
    )


def generate_cases(
    n_cases: int,
    seed: int = 0,
    robots: Optional[Sequence[str]] = None,
) -> List[ConformanceCase]:
    """Generate ``n_cases`` deterministic cases cycling over ``robots``.

    Robots are cycled round-robin so every robot gets coverage even at
    small budgets; all other knobs are drawn from ``default_rng(seed)``.
    """
    if n_cases < 1:
        raise ConformanceError(f"n_cases must be >= 1, got {n_cases}")
    names = [resolve(r) for r in (robots or DEFAULT_ROBOTS)]
    if not names:
        raise ConformanceError("no robots selected")
    rng = np.random.default_rng(seed)
    return [_one_case(names[i % len(names)], rng) for i in range(n_cases)]
