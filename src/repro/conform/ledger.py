"""The golden tolerance ledger: reviewed, per-path, per-robot bounds.

Conformance comparisons never use ad-hoc tolerances.  Every (path, robot)
pair resolves through ``conform/tolerances.json`` at the repository root —
a checked-in artifact, so *any* drift in cross-path agreement shows up as
an explicit diff in review, never as a silently loosened constant.

Ledger shape::

    {
      "banded_kkt": {"default": 1e-8, "Manipulator": 1e-7},
      "accel_sim":  {"default": 0.002, "AutoVehicle": 1.0},
      ...
    }

Keys under a path are canonical robot names, plus the required ``default``.
Tolerances bound the *relative* disagreement ``max|a - b| / (1 + max|b|)``
against the family baseline ``b``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ConformanceError

__all__ = [
    "default_ledger_path",
    "load_ledger",
    "save_ledger",
    "tolerance_for",
    "relative_error",
]

Ledger = Dict[str, Dict[str, float]]


def default_ledger_path() -> Path:
    """``conform/tolerances.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "conform" / "tolerances.json"


def load_ledger(path: Union[str, Path, None] = None) -> Ledger:
    p = Path(path) if path is not None else default_ledger_path()
    if not p.exists():
        raise ConformanceError(f"tolerance ledger not found at {p}")
    try:
        raw = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ConformanceError(f"malformed tolerance ledger {p}: {exc}") from None
    if not isinstance(raw, dict):
        raise ConformanceError(f"tolerance ledger {p} must be a JSON object")
    ledger: Ledger = {}
    for path_name, entry in raw.items():
        if not isinstance(entry, dict) or "default" not in entry:
            raise ConformanceError(
                f"ledger entry for {path_name!r} must be an object with a "
                "'default' tolerance"
            )
        ledger[path_name] = {k: float(v) for k, v in entry.items()}
    return ledger


def save_ledger(ledger: Ledger, path: Union[str, Path, None] = None) -> Path:
    p = Path(path) if path is not None else default_ledger_path()
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")
    return p


def tolerance_for(ledger: Ledger, path_name: str, robot: str) -> float:
    """Resolve the bound for ``(path_name, robot)``; robot key wins over
    ``default``; a missing path entry is an error (a new path must bring a
    reviewed ledger entry, not inherit a silent one)."""
    entry = ledger.get(path_name)
    if entry is None:
        raise ConformanceError(
            f"no tolerance ledger entry for path {path_name!r}; add one to "
            "conform/tolerances.json"
        )
    return float(entry.get(robot, entry["default"]))


def relative_error(values, baseline) -> float:
    """``max|a - b| / (1 + max|b|)`` — the ledger's comparison metric."""
    import numpy as np

    a = np.asarray(values, dtype=float)
    b = np.asarray(baseline, dtype=float)
    if a.shape != b.shape:
        return float("inf")
    if not (np.all(np.isfinite(a)) and np.all(np.isfinite(b))):
        return float("inf")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)) / (1.0 + np.max(np.abs(b))))
