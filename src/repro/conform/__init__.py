"""Differential conformance harness: every numeric path vs. its oracle.

The repo carries several independent implementations of the same math —
dense vs. banded KKT solves, the hand-written IPM vs. the reference
log-barrier method, double-precision dynamics vs. the fixed-point
accelerator simulator vs. the DSL-compiled twins.  This package
cross-checks all of them on seeded, randomized-but-feasible problem
instances, with per-path/per-robot tolerances pinned in the checked-in
ledger ``conform/tolerances.json`` and automatic shrinking + replay files
for every disagreement.

Entry points: :func:`run_conformance` / :func:`replay_file` (library),
``repro conform run|replay|paths`` (CLI), ``tests/test_conformance.py``
(pytest; fast lane small budget, ``slow`` lane full sweep).
"""

from repro.conform.cases import (
    CASE_HORIZONS,
    DEFAULT_ROBOTS,
    ConformanceCase,
    generate_cases,
)
from repro.conform.ledger import (
    default_ledger_path,
    load_ledger,
    relative_error,
    save_ledger,
    tolerance_for,
)
from repro.conform.paths import (
    FAMILY_BASELINES,
    PATHS,
    CaseContext,
    NumericPath,
    PathOutput,
    get_path,
    path_names,
    supported_paths,
)
from repro.conform.runner import (
    FORMAT_VERSION,
    CaseOutcome,
    ConformanceReport,
    PathComparison,
    replay_file,
    run_case,
    run_conformance,
    write_failure_file,
)
from repro.conform.shrink import SHRINK_TRANSFORMS, shrink_case

__all__ = [
    "ConformanceCase",
    "generate_cases",
    "DEFAULT_ROBOTS",
    "CASE_HORIZONS",
    "CaseContext",
    "NumericPath",
    "PathOutput",
    "PATHS",
    "FAMILY_BASELINES",
    "path_names",
    "get_path",
    "supported_paths",
    "default_ledger_path",
    "load_ledger",
    "save_ledger",
    "tolerance_for",
    "relative_error",
    "PathComparison",
    "CaseOutcome",
    "ConformanceReport",
    "FORMAT_VERSION",
    "run_case",
    "run_conformance",
    "replay_file",
    "write_failure_file",
    "shrink_case",
    "SHRINK_TRANSFORMS",
]
