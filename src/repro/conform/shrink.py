"""Greedy shrinking of failing conformance cases.

A raw failing case is noisy: warm-start perturbations, scaled weights, a
long horizon.  The shrinker repeatedly applies simplifying transformations
— halve the horizon, drop constraints, reset weights, disable the warm
start, zero the perturbations — keeping each one only while the *same*
disagreement persists, until a fixpoint (or the re-check budget runs out).
The result is the smallest recipe in the transformation lattice that still
reproduces the failure, which is what lands in the replay file.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from repro.conform.cases import ConformanceCase

__all__ = ["shrink_case", "SHRINK_TRANSFORMS"]


def _halve_horizon(case: ConformanceCase) -> Optional[ConformanceCase]:
    if case.horizon <= 2:
        return None
    return replace(case, horizon=max(2, case.horizon // 2))


def _drop_constraints(case: ConformanceCase) -> Optional[ConformanceCase]:
    if case.drop_constraints:
        return None
    return replace(case, drop_constraints=True)


def _reset_weights(case: ConformanceCase) -> Optional[ConformanceCase]:
    if case.weight_scale == 1.0:
        return None
    return replace(case, weight_scale=1.0)


def _cold_start(case: ConformanceCase) -> Optional[ConformanceCase]:
    if not case.warm:
        return None
    return replace(case, warm=False)


def _zero_ref(case: ConformanceCase) -> Optional[ConformanceCase]:
    if case.ref_scale == 0.0:
        return None
    return replace(case, ref_scale=0.0)


def _zero_x0(case: ConformanceCase) -> Optional[ConformanceCase]:
    if case.x0_scale == 0.0:
        return None
    return replace(case, x0_scale=0.0)


#: Simplification order: structural reductions first (they shrink the
#: problem the most), perturbation removal last.
SHRINK_TRANSFORMS = (
    _halve_horizon,
    _drop_constraints,
    _reset_weights,
    _cold_start,
    _zero_ref,
    _zero_x0,
)


def shrink_case(
    case: ConformanceCase,
    still_fails: Callable[[ConformanceCase], bool],
    max_checks: int = 24,
) -> Tuple[ConformanceCase, int]:
    """Greedily minimize ``case`` under the failure predicate.

    ``still_fails`` re-runs the failing paths on a candidate; it is the
    expensive part, so the loop is bounded by ``max_checks`` re-runs.
    Returns ``(shrunk_case, checks_used)``; the input case is returned
    unchanged when nothing simpler still fails.
    """
    checks = 0
    changed = True
    while changed and checks < max_checks:
        changed = False
        for transform in SHRINK_TRANSFORMS:
            if checks >= max_checks:
                break
            candidate = transform(case)
            if candidate is None:
                continue
            checks += 1
            if still_fails(candidate):
                case = candidate
                changed = True
    return case, checks
