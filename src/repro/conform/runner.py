"""Conformance orchestration: run cases, compare, shrink, serialize.

For each case, each requested family runs its baseline oracle first; a
baseline that fails to converge marks the case *infeasible* for that family
(the generator occasionally lands on a cold-start QP the dense IPM itself
cannot crack — that is a property of the instance, not a disagreement).
Every other path is then compared to the baseline through the tolerance
ledger; a comparison path that fails to converge while the baseline
converged is an automatic failure (error = inf).

Failing cases are shrunk (:mod:`repro.conform.shrink`) and serialized to a
JSON repro file that replays with ``repro conform replay <file>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Union

from repro.accelerator.fixedpoint import FixedPointFormat, Q14_17
from repro.conform.cases import ConformanceCase, generate_cases
from repro.conform.ledger import Ledger, load_ledger, tolerance_for
from repro.conform.paths import (
    FAMILY_BASELINES,
    PATHS,
    CaseContext,
    PathOutput,
    compare_outputs,
    get_path,
)
from repro.conform.shrink import shrink_case
from repro.errors import ConformanceError, ReproError

__all__ = [
    "PathComparison",
    "CaseOutcome",
    "ConformanceReport",
    "run_case",
    "run_conformance",
    "write_failure_file",
    "replay_file",
]

FORMAT_VERSION = 1


@dataclass
class PathComparison:
    """One path's agreement with its family baseline on one case."""

    path: str
    family: str
    error: float
    tolerance: float
    converged: bool
    ok: bool
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "family": self.family,
            "error": self.error,
            "tolerance": self.tolerance,
            "converged": self.converged,
            "ok": self.ok,
            "note": self.note,
        }


@dataclass
class CaseOutcome:
    """Result of one case across all requested paths."""

    case: ConformanceCase
    status: str  # "pass" | "fail" | "infeasible" | "error"
    comparisons: List[PathComparison] = field(default_factory=list)
    message: str = ""

    @property
    def failing_paths(self) -> List[str]:
        return [c.path for c in self.comparisons if not c.ok]

    def to_dict(self) -> dict:
        return {
            "case": self.case.to_dict(),
            "case_id": self.case.case_id,
            "status": self.status,
            "message": self.message,
            "comparisons": [c.to_dict() for c in self.comparisons],
        }


@dataclass
class ConformanceReport:
    """Aggregate of one conformance sweep."""

    outcomes: List[CaseOutcome]
    paths: List[str]
    fmt: FixedPointFormat
    wall_time_s: float = 0.0
    failure_files: List[str] = field(default_factory=list)

    def _count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def n_pass(self) -> int:
        return self._count("pass")

    @property
    def n_fail(self) -> int:
        return self._count("fail")

    @property
    def n_infeasible(self) -> int:
        return self._count("infeasible")

    @property
    def n_error(self) -> int:
        return self._count("error")

    @property
    def ok(self) -> bool:
        """True when no case failed or errored (infeasible cases are
        skips: the oracle itself rejected the instance)."""
        return self.n_fail == 0 and self.n_error == 0

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "paths": self.paths,
            "fixed_point": {
                "word_bits": self.fmt.word_bits,
                "fraction_bits": self.fmt.fraction_bits,
            },
            "counts": {
                "pass": self.n_pass,
                "fail": self.n_fail,
                "infeasible": self.n_infeasible,
                "error": self.n_error,
            },
            "wall_time_s": self.wall_time_s,
            "failure_files": self.failure_files,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        lines = [
            f"conformance: {len(self.outcomes)} cases over paths "
            f"{', '.join(self.paths)} ({self.fmt})",
            f"  pass={self.n_pass} fail={self.n_fail} "
            f"infeasible={self.n_infeasible} error={self.n_error} "
            f"in {self.wall_time_s:.1f}s",
        ]
        worst: Dict[str, PathComparison] = {}
        for o in self.outcomes:
            for c in o.comparisons:
                if c.converged and (
                    c.path not in worst or c.error > worst[c.path].error
                ):
                    worst[c.path] = c
        for name, c in sorted(worst.items()):
            lines.append(
                f"  worst {name:14s} err={c.error:9.3e} tol={c.tolerance:9.3e}"
            )
        for o in self.outcomes:
            if o.status in ("fail", "error"):
                detail = o.message or ", ".join(
                    f"{c.path} err={c.error:.3e}>tol={c.tolerance:.3e}"
                    for c in o.comparisons
                    if not c.ok
                )
                lines.append(f"  {o.status.upper()} {o.case.case_id}: {detail}")
        for f in self.failure_files:
            lines.append(f"  repro file: {f}")
        return "\n".join(lines)


def _resolve_paths(paths: Optional[Sequence[str]]) -> List[str]:
    names = list(paths) if paths else list(PATHS)
    for n in names:
        get_path(n)  # raises on unknown
    if not names:
        raise ConformanceError("no conformance paths selected")
    return names


def run_case(
    case: ConformanceCase,
    paths: Optional[Sequence[str]] = None,
    ledger: Optional[Ledger] = None,
    fmt: FixedPointFormat = Q14_17,
) -> CaseOutcome:
    """Run one case through the requested paths and compare via the ledger.

    Family baselines run implicitly whenever any member of their family is
    requested — the oracle is not optional.
    """
    names = _resolve_paths(paths)
    ledger = ledger if ledger is not None else load_ledger()

    try:
        ctx = CaseContext(case, fmt=fmt)
    except ReproError as exc:
        return CaseOutcome(case, "error", message=f"context build failed: {exc}")

    comparisons: List[PathComparison] = []
    families = []
    for n in names:
        fam = get_path(n).family
        if fam not in families:
            families.append(fam)

    feasible_families = 0
    for family in families:
        baseline_name = FAMILY_BASELINES[family]
        members = [
            n
            for n in names
            if get_path(n).family == family
            and n != baseline_name
            and get_path(n).supports(case)
        ]
        try:
            base: PathOutput = get_path(baseline_name).run(ctx)
        except ReproError as exc:
            return CaseOutcome(
                case,
                "error",
                comparisons,
                message=f"baseline {baseline_name} raised: {exc}",
            )
        if not base.converged:
            comparisons.append(
                PathComparison(
                    path=baseline_name,
                    family=family,
                    error=float("nan"),
                    tolerance=float("nan"),
                    converged=False,
                    ok=True,
                    note="baseline did not converge; family skipped",
                )
            )
            continue
        feasible_families += 1
        for name in members:
            tol = tolerance_for(ledger, name, case.robot)
            try:
                out = get_path(name).run(ctx)
            except ReproError as exc:
                comparisons.append(
                    PathComparison(
                        path=name,
                        family=family,
                        error=float("inf"),
                        tolerance=tol,
                        converged=False,
                        ok=False,
                        note=f"raised: {exc}",
                    )
                )
                continue
            if not out.converged:
                err = float("inf")
                note = out.note or "path did not converge while baseline did"
            else:
                err = compare_outputs(ctx, family, out, base)
                note = out.note
            comparisons.append(
                PathComparison(
                    path=name,
                    family=family,
                    error=err,
                    tolerance=tol,
                    converged=out.converged,
                    ok=err <= tol,
                    note=note,
                )
            )

    if any(not c.ok for c in comparisons):
        status = "fail"
    elif feasible_families == 0:
        status = "infeasible"
    else:
        status = "pass"
    return CaseOutcome(case, status, comparisons)


def write_failure_file(
    outcome: CaseOutcome,
    original_case: ConformanceCase,
    paths: Sequence[str],
    fmt: FixedPointFormat,
    out_dir: Union[str, Path],
    shrink_checks: int = 0,
) -> Path:
    """Serialize a (shrunk) failing case to a replayable JSON repro file."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    doc = {
        "version": FORMAT_VERSION,
        "case": outcome.case.to_dict(),
        "original_case": original_case.to_dict(),
        "paths": list(paths),
        "fixed_point": {
            "word_bits": fmt.word_bits,
            "fraction_bits": fmt.fraction_bits,
        },
        "failures": [c.to_dict() for c in outcome.comparisons if not c.ok],
        "shrink_checks": shrink_checks,
    }
    target = out / f"conform_{outcome.case.case_id}.json"
    target.write_text(json.dumps(doc, indent=2) + "\n")
    return target


def replay_file(
    path: Union[str, Path],
    ledger: Optional[Ledger] = None,
    ledger_path: Union[str, Path, None] = None,
) -> CaseOutcome:
    """Re-run a serialized repro file (``repro conform replay``)."""
    p = Path(path)
    if not p.exists():
        raise ConformanceError(f"repro file not found: {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ConformanceError(f"malformed repro file {p}: {exc}") from None
    if doc.get("version") != FORMAT_VERSION:
        raise ConformanceError(
            f"repro file {p} has version {doc.get('version')!r}; "
            f"expected {FORMAT_VERSION}"
        )
    case = ConformanceCase.from_dict(doc["case"])
    fp = doc.get("fixed_point", {})
    fmt = FixedPointFormat(
        fp.get("word_bits", Q14_17.word_bits),
        fp.get("fraction_bits", Q14_17.fraction_bits),
    )
    if ledger is None:
        ledger = load_ledger(ledger_path)
    return run_case(case, doc.get("paths"), ledger, fmt)


def run_conformance(
    cases: Optional[Sequence[ConformanceCase]] = None,
    n_cases: int = 25,
    seed: int = 0,
    robots: Optional[Sequence[str]] = None,
    paths: Optional[Sequence[str]] = None,
    ledger: Optional[Ledger] = None,
    ledger_path: Union[str, Path, None] = None,
    fmt: FixedPointFormat = Q14_17,
    shrink: bool = True,
    out_dir: Union[str, Path, None] = None,
    max_shrink_checks: int = 24,
) -> ConformanceReport:
    """Run a conformance sweep; shrink + serialize every failing case.

    Either pass explicit ``cases`` or let the seeded generator produce
    ``n_cases`` over ``robots`` (default: Table III six + CartPole).
    """
    t0 = perf_counter()
    names = _resolve_paths(paths)
    if ledger is None:
        ledger = load_ledger(ledger_path)
    if cases is None:
        cases = generate_cases(n_cases, seed=seed, robots=robots)

    outcomes: List[CaseOutcome] = []
    failure_files: List[str] = []
    for case in cases:
        outcome = run_case(case, names, ledger, fmt)
        if outcome.status == "fail":
            failing = outcome.failing_paths
            shrunk_case, checks = case, 0
            if shrink:

                def _still_fails(candidate: ConformanceCase) -> bool:
                    res = run_case(candidate, failing, ledger, fmt)
                    return any(p in res.failing_paths for p in failing)

                shrunk_case, checks = shrink_case(
                    case, _still_fails, max_checks=max_shrink_checks
                )
            final = outcome
            if shrunk_case != case:
                final = run_case(shrunk_case, names, ledger, fmt)
                if final.status != "fail":  # pragma: no cover - paranoia
                    final = outcome
            if out_dir is not None:
                failure_files.append(
                    str(
                        write_failure_file(
                            final, case, names, fmt, out_dir, checks
                        )
                    )
                )
            outcomes.append(final)
        else:
            outcomes.append(outcome)

    return ConformanceReport(
        outcomes=outcomes,
        paths=names,
        fmt=fmt,
        wall_time_s=perf_counter() - t0,
        failure_files=failure_files,
    )
