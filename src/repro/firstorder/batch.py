"""Batched device-resident ADMM: the iteration as matmul + clamp.

:func:`solve_qp_admm_batch` runs the ADMM splitting of
:mod:`repro.firstorder.admm` over ``B`` stacked QP instances.  Setup — box
form assembly and the one-time inverse of ``K = H + sigma I + A^T R A`` —
happens on the host (``_admm_setup_batch``); everything uploaded once,
the loop body is then *pure batched matmul, elementwise algebra, and
clamp* through the :mod:`repro.batch.backend` seam (``xp``), the ReLU-QP
formulation.  There is **no** per-iteration host synchronization:

* lane statuses live in a device integer array with the same masked
  lockstep freeze semantics (and status codes) as the batched IPM in
  :mod:`repro.batch.qp` — converged/failed/capped lanes are
  ``where``-masked out of every update;
* residual histories accumulate in device rows downloaded once at result
  assembly;
* ``sync_interval`` (default 25 — ADMM iterations are matvec-cheap, so
  the early-exit payoff is larger than the IPM's) optionally reads back
  one boolean every such interval to stop a fully-frozen batch.  Set it
  to 0 for a strictly sync-free loop, the property the CountingBackend
  acceptance test pins.

Rho adaptation is a *checkpoint* event: at every ``sync_interval``
boundary (where a host round-trip happens anyway for early exit) the
per-lane residual ratios come back with it, and lanes whose ratio fires
the OSQP trigger get a new rho, a host rebuild of their cached inverse,
and one re-upload — a bounded number of host materializations, between
which the loop stays strictly sync-free.  With ``sync_interval=0`` there
are no checkpoints, so the batch runs at the fixed initial rho (warm
starts carry an adapted rho forward instead).
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

from repro.firstorder.admm import (
    _STALL_WINDOW,
    _admm_refactor_batch,
    _admm_rho_update_batch,
    _admm_setup_batch,
    _admm_warm_batch,
    _polish_qp,
)
from repro.mpc.qp import ConditioningReport, QPOptions, QPStats

from repro.batch.backend import HOST, get_backend
from repro.batch.qp import (
    _ACTIVE,
    _BUDGET,
    _CONV,
    _FAILED,
    _MAXIT,
    _STALLED,
    _STATUS_NAMES,
    BatchQPResult,
    BatchQPStats,
    _bmv,
    _maxabs,
)

__all__ = ["solve_qp_admm_batch"]

_INF = float("inf")
_NAN = float("nan")


def solve_qp_admm_batch(
    H,
    g,
    G,
    b,
    J,
    d,
    options: Optional[QPOptions] = None,
    deadline: Optional[float] = None,
    iteration_caps=None,
    backend=None,
    sync_interval: int = 25,
    check_interval: int = 5,
    warm: Optional[dict] = None,
) -> BatchQPResult:
    """Solve ``B`` convex QPs with lockstep ADMM and per-lane freezing.

    Data contract matches :func:`repro.batch.qp.solve_qp_batch` (host
    arrays in, host arrays out); ``iteration_caps`` shortens individual
    lanes below ``options.admm_max_iterations`` (such lanes report
    ``"budget_exhausted"``), ``deadline`` is the absolute wall-clock stop,
    ``warm`` resumes from a previous result's ``.warm``.  The result's
    ``warm`` field carries the batch iterate triple for the next solve of
    the same shapes.

    ``check_interval`` is the residual-evaluation cadence (OSQP's
    ``check_termination``, device-side — no host sync): the dual/primal
    residual matvecs run every such iteration, so between checks the loop
    body is the bare three-matvec update and lanes converge quantized to
    the cadence (at most ``check_interval - 1`` surplus iterations).
    ``1`` restores per-iteration checking.
    """
    opt = options or QPOptions()
    xp = get_backend(backend)
    t_setup = perf_counter()
    lanes_guess = int(HOST.asarray(g).shape[0])
    ws = _admm_warm_batch(
        warm,
        lanes_guess,
        int(HOST.asarray(g).shape[1]),
        (0 if G is None else int(HOST.asarray(G).shape[1]))
        + (0 if J is None else int(HOST.asarray(J).shape[1])),
    )
    setup = _admm_setup_batch(
        H, g, G, b, J, d, opt,
        rho0=ws["rho"] if ws is not None else None,
    )
    lanes = int(setup["q"].shape[0])
    n, p, m = setup["n"], setup["p"], setup["m"]
    msz = p + m
    sigma = opt.admm_sigma
    alpha = opt.admm_alpha
    tol = opt.admm_tolerance
    rho_lane = setup["rho"]  # host (B,), adapted at sync checkpoints

    # ---- one-time uploads: after this point the loop touches no host data
    # until a sync checkpoint (early exit + rho adaptation) or the final
    # result materialization.
    Kinv = xp.from_host(setup["Kinv"])
    A = xp.from_host(setup["A"])
    At = xp.from_host(setup["At"])
    Hd = xp.from_host(setup["H"])
    q = xp.from_host(setup["q"])
    lo = xp.from_host(setup["l"])
    hi = xp.from_host(setup["u"])
    R = xp.from_host(setup["R"])
    Rinv = xp.from_host(setup["Rinv"])
    lane_finite = xp.from_host(setup["lane_finite"], dtype="bool")
    factz_h = HOST.astype(setup["lane_finite"], "int")  # host counters

    # Per-lane equilibration scale tensors (exact unit scalings when
    # disabled): part of the same one-time upload, so the in-loop residual
    # unscaling below is pure device elementwise work — no new host syncs.
    sc = setup["scale"]
    Einv = xp.from_host(sc["Einv"])
    Dinv = xp.from_host(sc["Dinv"])
    cinv_col = xp.from_host(sc["cinv"][:, None])
    q_norm = xp.from_host(setup["q_norm"])

    if ws is not None:
        # Warm dicts travel unscaled; map them into this solve's scaled
        # space on the host before the upload.
        x = xp.from_host(ws["x"] * sc["Dinv"])
        z = xp.clip(xp.from_host(ws["z"] * sc["E"]), lo, hi)
        y = xp.from_host(ws["y"] * sc["Einv"] * sc["c"][:, None])
    else:
        x = xp.zeros((lanes, n))
        z = xp.clip(xp.zeros((lanes, msz)), lo, hi)
        y = xp.zeros((lanes, msz))

    # Iteration caps: the global trip count is a host decision made once.
    max_it = int(opt.admm_max_iterations)
    if iteration_caps is not None:
        caps_h = HOST.minimum(
            HOST.full((lanes,), max_it, dtype="int"),
            HOST.maximum(HOST.asarray(iteration_caps, dtype="int"), 1),
        )
        global_max = int(HOST.scalar(HOST.max(caps_h)))
        caps = xp.from_host(caps_h, dtype="int")
    else:
        global_max = max_it
        caps = xp.full((lanes,), max_it, dtype="int")
    budget_capped = caps < max_it

    status = xp.where(lane_finite, _ACTIVE, _FAILED)
    iterations = xp.zeros((lanes,), dtype="int")
    residual = xp.full((lanes,), _INF)
    deadline_hit = xp.zeros((lanes,), dtype="bool")

    # Stall detection rides the check_interval cadence: the limit counts
    # iterations (same knob as the scalar path) rounded up to whole
    # checks, and a lane stalls when a whole window of checks moves its
    # best relative residual by less than the _STALL_WINDOW fraction.
    stall_limit = int(opt.admm_stall_iterations)
    if stall_limit:
        cadence = 1 if check_interval <= 1 else int(check_interval)
        stall_checks = max(1, -(-stall_limit // cadence))
        best_score = xp.full((lanes,), _INF)
        window_ref = xp.full((lanes,), _INF)
        checks_done = 0
    res_rows: List[object] = []
    lane_iter_acc = xp.sum(xp.zeros((1,), dtype="int"))
    bstats = BatchQPStats()
    setup_time = perf_counter() - t_setup
    t_loop = perf_counter()

    for it in range(1, global_max + 1):
        # Wall-clock deadline stops every still-active lane at once (a
        # host-clock decision — no device data is read).
        if deadline is not None and perf_counter() >= deadline:
            still = status == _ACTIVE
            status = xp.where(still, _BUDGET, status)
            deadline_hit = deadline_hit | still
            break

        active = status == _ACTIVE
        ai = xp.astype(active, "int")
        iterations = iterations + ai
        bstats.iterations += 1
        bstats.lane_slots += lanes
        lane_iter_acc = lane_iter_acc + xp.sum(ai)

        # ---- the ReLU-QP iteration: matmul + clamp, nothing else -------
        xt = _bmv(xp, Kinv, sigma * x - q + _bmv(xp, At, R * z - y))
        x_new = alpha * xt + (1.0 - alpha) * x
        zr = alpha * _bmv(xp, A, xt) + (1.0 - alpha) * z
        z_new = xp.clip(zr + Rinv * y, lo, hi)
        y_new = y + R * (zr - z_new)

        am = active[:, None]
        x = xp.where(am, x_new, x)
        z = xp.where(am, z_new, z)
        y = xp.where(am, y_new, y)

        # ---- per-lane residuals and the classification ladder ----------
        # Evaluated every ``check_interval`` iterations (and on the final
        # trip): the three residual matvecs double the iteration cost, so
        # between checks the loop is the bare update above.
        is_check = (
            check_interval <= 1
            or it % check_interval == 0
            or it == global_max
            or bool(sync_interval) and it % sync_interval == 0
        )
        if is_check:
            # Residuals are unscaled back to the ORIGINAL space (pure
            # elementwise multiplies by the uploaded scale tensors), so
            # the stopping test matches the scalar path's meaning with and
            # without equilibration.
            Ax = _bmv(xp, A, x)
            Hx = _bmv(xp, Hd, x)
            Aty = _bmv(xp, At, y)
            r_prim = _maxabs(xp, Einv * (Ax - z))
            r_dual = _maxabs(xp, cinv_col * (Dinv * (Hx + q + Aty)))
            res = xp.maximum(r_prim, r_dual)
            residual = xp.where(active, res, residual)
            res_rows.append(xp.where(active, res, _NAN))

            prim_scale = 1.0 + xp.maximum(
                _maxabs(xp, Einv * Ax), _maxabs(xp, Einv * z)
            )
            dual_scale = 1.0 + xp.maximum(
                xp.maximum(
                    _maxabs(xp, cinv_col * (Dinv * Hx)),
                    _maxabs(xp, cinv_col * (Dinv * Aty)),
                ),
                q_norm,
            )
            rp_rel = r_prim / prim_scale
            rd_rel = r_dual / dual_scale
            finite = xp.isfinite(res)
            conv = (
                active
                & finite
                & (r_prim <= tol * prim_scale)
                & (r_dual <= tol * dual_scale)
            )
            fail = active & xp.logical_not(finite)
            status = xp.where(conv, _CONV, status)
            status = xp.where(fail, _FAILED, status)
            # Sanitize poisoned lanes so NaNs cannot linger in the frozen
            # state (their lane never publishes these zeros as a solution).
            fm = fail[:, None]
            x = xp.where(fm, 0.0, x)
            z = xp.where(fm, 0.0, z)
            y = xp.where(fm, 0.0, y)

            if stall_limit:
                # Per-lane stall detector (conv beats stall: convergence
                # was classified above, so only still-active lanes can
                # freeze here).  All device elementwise work; the window
                # boundary is a lockstep host-side counter, not a sync.
                best_score = xp.minimum(
                    best_score, xp.maximum(rp_rel, rd_rel)
                )
                checks_done += 1
                if checks_done >= stall_checks:
                    stalled_now = (
                        (status == _ACTIVE)
                        & finite
                        & (best_score > _STALL_WINDOW * window_ref)
                    )
                    status = xp.where(stalled_now, _STALLED, status)
                    window_ref = best_score
                    checks_done = 0

        # Cap enforcement runs every iteration (elementwise, no matvec) so
        # a budgeted lane freezes exactly at its cap; on check iterations
        # convergence is classified first, preserving conv-beats-cap.
        over_cap = active & (status == _ACTIVE) & (iterations >= caps)
        status = xp.where(
            over_cap, xp.where(budget_capped, _BUDGET, _MAXIT), status
        )

        if is_check and sync_interval and it % sync_interval == 0:
            # The bounded host round-trip: early exit for a batch that has
            # fully frozen before the global cap, plus the per-lane
            # residual-balancing rho checkpoint.  Between checkpoints the
            # loop stays strictly sync-free.
            active_h = xp.to_host(status) == _ACTIVE
            if not bool(HOST.scalar(HOST.any(active_h))):
                break
            new_rho, changed = _admm_rho_update_batch(
                rho_lane,
                xp.to_host(rp_rel),
                xp.to_host(rd_rel),
                active_h,
            )
            if bool(HOST.scalar(HOST.any(changed))):
                rho_lane = new_rho
                Kinv_h, R_h, Rinv_h, ok = _admm_refactor_batch(
                    setup["H"], setup["A"], rho_lane, p, m,
                    opt.admm_rho_eq_scale, sigma, opt.regularization,
                )
                Kinv = xp.from_host(Kinv_h)
                R = xp.from_host(R_h)
                Rinv = xp.from_host(Rinv_h)
                factz_h = factz_h + HOST.astype(changed, "int")
                bad = changed & HOST.logical_not(ok)
                if bool(HOST.scalar(HOST.any(bad))):
                    status = xp.where(
                        xp.from_host(bad, dtype="bool"), _FAILED, status
                    )

    loop_time = perf_counter() - t_loop

    # ---- single bulk download: the only host materialization ----------
    # Iterates come back in the scaled space and are unscaled here, on the
    # host, so everything published (solution, duals, slacks, warm state)
    # lives in the original space.
    x_h = xp.to_host(x) * sc["D"]
    z_h = xp.to_host(z) * sc["Einv"]
    y_h = xp.to_host(y) * sc["E"] * sc["cinv"][:, None]
    status_h = xp.to_host(status)
    iters_h = xp.to_host(iterations)
    resid_h = xp.to_host(residual)
    deadline_h = xp.to_host(deadline_hit)
    finite_h = xp.to_host(lane_finite)
    res_h = xp.to_host(xp.stack(res_rows)) if res_rows else None
    bstats.lane_iterations = int(xp.scalar(lane_iter_acc))

    status_codes = [int(c) for c in status_h]
    status_names = [_STATUS_NAMES[c] for c in status_codes]
    converged_h = HOST.asarray(
        [c == _CONV for c in status_codes], dtype="bool"
    )

    nu_h = HOST.copy(y_h[:, :p])
    lam_h = HOST.maximum(y_h[:, p:], 0.0)
    slacks_h = HOST.maximum(
        setup["d"] - _bmv(HOST, setup["J"], x_h), 0.0
    )

    gap_history: List[List[float]] = [[] for _ in range(lanes)]
    if res_h is not None:
        for lane in range(lanes):
            col = res_h[:, lane]
            gap_history[lane] = [float(v) for v in col if v == v]

    factor_flops = 2 * n * n * n  # batched inverse of K, per lane
    matvec_flops = 2 * n * n + 6 * msz * n
    stats: List[QPStats] = []
    for lane in range(lanes):
        st = QPStats(mode="admm")
        if finite_h[lane]:
            st.factorizations = int(factz_h[lane])
            st.factor_flops = st.factorizations * factor_flops
            st.factorize_time = setup_time / lanes
        st.substitute_flops = int(iters_h[lane]) * matvec_flops
        st.substitute_time = loop_time / lanes
        st.conditioning = ConditioningReport(
            equilibrated=bool(sc["lane_eq"][lane]),
            ruiz_iters=int(sc["iters"]),
            norm_spread_before=float(sc["spread_before"][lane]),
            norm_spread_after=float(sc["spread_after"][lane]),
            cost_scale=float(sc["c"][lane]),
            rho_rescales=max(0, int(factz_h[lane]) - 1),
            stalled=status_codes[lane] == _STALLED,
            diverged=status_names[lane] == "failed" and bool(finite_h[lane]),
        )
        stats.append(st)

    warm_out = None
    if bool(
        HOST.scalar(
            HOST.all(HOST.isfinite(x_h))
            & HOST.all(HOST.isfinite(z_h))
            & HOST.all(HOST.isfinite(y_h))
        )
    ):
        warm_out = {
            "x": HOST.copy(x_h),
            "z": HOST.copy(z_h),
            "y": HOST.copy(y_h),
            "rho": HOST.copy(rho_lane),
        }

    # ---- per-lane rescue polish (host epilogue, opt.polish) ------------
    # Lanes that ended without a usable answer — stalled, capped, or
    # poisoned — get the same active-set polish as the scalar path, run on
    # the UNSCALED per-lane data stashed at setup.  The warm dict above
    # was captured first: it always carries the operator-splitting
    # iterate, never the polished point.  Lanes stopped by an *iteration*
    # cap polish like the scalar path at the same cap would; lanes stopped
    # by the wall-clock deadline are left alone (polish work past a
    # deadline breaks the budget contract).
    if opt.polish and n > 0:
        for lane in range(lanes):
            if not finite_h[lane]:
                continue
            code = status_codes[lane]
            if code not in (_MAXIT, _STALLED, _FAILED, _BUDGET):
                continue
            if code == _BUDGET and bool(deadline_h[lane]):
                continue
            pol = _polish_qp(
                setup["H0"][lane],
                setup["q0"][lane],
                setup["G0"][lane] if p else None,
                setup["b0"][lane] if p else None,
                setup["J"][lane] if m else None,
                setup["d"][lane] if m else None,
                x_h[lane],
                lam_h[lane],
                opt.regularization,
                tol,
            )
            if pol is None:
                continue
            if not (
                pol["converged"] or pol["residual"] < resid_h[lane]
            ):
                continue
            x_h[lane] = pol["x"]
            nu_h[lane] = pol["nu"]
            lam_h[lane] = pol["lam"]
            slacks_h[lane] = pol["slacks"]
            resid_h[lane] = pol["residual"]
            gap_history[lane].append(pol["residual"])
            stats[lane].factorizations += 1
            if pol["converged"]:
                status_codes[lane] = _CONV
                status_names[lane] = "converged"
                converged_h[lane] = True
                stats[lane].conditioning.polished = True

    return BatchQPResult(
        x=x_h,
        nu=nu_h,
        lam=lam_h,
        slacks=slacks_h,
        converged=converged_h,
        iterations=iters_h,
        residual=resid_h,
        status=status_names,
        budget_exhausted=deadline_h,
        gap_history=gap_history,
        stats=stats,
        batch=bstats,
        warm=warm_out,
    )
