"""First-order (ADMM / ReLU-QP style) QP solver subsystem.

An alternate QP backend alongside the Mehrotra interior-point method of
:mod:`repro.mpc.qp`: an OSQP-style ADMM iteration whose per-iteration work
is matrix-vector products and a clamp against one *cached* factorization of
``P + sigma I + A^T R A`` — re-factored only when the penalty ``rho`` is
rescaled.  The batched variant expresses the whole iteration as batched
matmul + clamp through the :mod:`repro.batch.backend` seam, so it runs
device-resident and sync-free (the ReLU-QP observation), with per-lane
convergence masks reusing the masked-lockstep freeze semantics of
:mod:`repro.batch.qp`.

Select it with ``QPOptions(method="admm")`` (scalar / SQP),
``BatchSolver(qp_method="admm")`` (batched), or ``serve-sim --qp-method
admm`` (end-to-end).  See DESIGN.md for the IPM-vs-ADMM selection guide.

Resilience layer (DESIGN.md "solver resilience"): stiff problems are Ruiz-
equilibrated first (:mod:`repro.firstorder.precond`, gated on the data's
norm spread), a windowed stall detector turns flat residual plateaus into
explicit ``stalled`` verdicts on the :class:`~repro.mpc.qp.ConditioningReport`,
and ``QPOptions(polish=True)`` adds an active-set rescue polish that
recovers machine-precision solutions from stalled/capped iterates.  Solves
that still end without a usable answer are the fallback ladder's input:
SQP drivers retry them with the IPM inside the remaining budget.
"""

from repro.firstorder.admm import solve_qp_admm
from repro.firstorder.batch import solve_qp_admm_batch
from repro.firstorder.precond import (
    Equilibration,
    identity_equilibration,
    norm_spread,
    ruiz_equilibrate,
    ruiz_equilibrate_batch,
)

__all__ = [
    "Equilibration",
    "identity_equilibration",
    "norm_spread",
    "ruiz_equilibrate",
    "ruiz_equilibrate_batch",
    "solve_qp_admm",
    "solve_qp_admm_batch",
]
