"""Ruiz diagonal equilibration for the box-form QP.

First-order splitting methods pay for conditioning in iterations: the
ADMM contraction rate degrades with the spread of the row/column norms of
the stacked KKT data, which is exactly what the stiff robots (Manipulator,
Humanoid — large inertia ratios, mixed unit scales) blow up.  The standard
fix (OSQP §5.1, after Ruiz 2001) is *diagonal equilibration*: iteratively
scale variables by ``D`` and constraint rows by ``E`` until every row and
column of the symmetrized data matrix

    M = [[H, A^T],
         [A, 0  ]]

has unit infinity norm, plus a scalar cost normalization ``c`` that keeps
the objective's curvature near unit scale.  The scaled problem

    min  1/2 xb^T (c D H D) xb + (c D g)^T xb
    s.t. E l <= (E A D) xb <= E u

is solved in place of the original; the mapping between the two spaces is
exact, so the solver can run on well-scaled data while *terminating on the
unscaled residuals* (this module also supplies the inverse scalings as
vectors for that purpose) and returning iterates in the original space:

    x = D xb        z = E^-1 zb        y = E yb / c

Warm starts cross the same boundary in both directions — a warm dict
always travels in the *unscaled* space, so RTI carry-over survives
re-equilibration with fresh ``D/E/c`` on the next tick.

Everything here is host-side numpy (one-time setup work, same contract as
the ``_admm_setup_batch`` helpers in :mod:`repro.firstorder.admm`): the
batched variant returns per-lane scaling tensors that the device loop
uploads once alongside the rest of the problem data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "Equilibration",
    "norm_spread",
    "ruiz_equilibrate",
    "identity_equilibration",
    "norm_spread_batch",
    "ruiz_equilibrate_batch",
    "identity_scale_batch",
]

#: norms below this are treated as structurally zero (their scaling is 1)
_NORM_FLOOR = 1e-12
#: early-exit threshold: stop iterating once every scaling step is this
#: close to 1 (the fixpoint of the Ruiz iteration)
_CONVERGED = 1e-3


@dataclass
class Equilibration:
    """The diagonal scalings of one equilibrated QP (identity when disabled).

    ``D`` scales variables (columns of ``[H; A]``), ``E`` scales constraint
    rows, ``c`` scales the cost.  The ``*inv`` fields are precomputed
    reciprocals so residual unscaling inside the solver loop is a pure
    elementwise multiply.
    """

    D: np.ndarray
    E: np.ndarray
    c: float
    Dinv: np.ndarray
    Einv: np.ndarray
    cinv: float
    iters: int = 0
    spread_before: float = 1.0
    spread_after: float = 1.0

    def scale_warm(self, x, z, y):
        """Map an unscaled warm triple into the equilibrated space."""
        return self.Dinv * x, self.E * z, self.c * self.Einv * y

    def unscale_solution(self, x, z, y):
        """Map a scaled iterate triple back to the original space."""
        return self.D * x, self.Einv * z, self.cinv * self.E * y


def _stacked_norms(H: np.ndarray, A: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Column norms (variable block) and row norms (constraint block) of
    the symmetrized data matrix ``[[H, A^T], [A, 0]]``, infinity norm."""
    col = np.max(np.abs(H), axis=0) if H.shape[0] else np.zeros(H.shape[1])
    if A.shape[0]:
        col = np.maximum(col, np.max(np.abs(A), axis=0))
        row = np.max(np.abs(A), axis=1)
    else:
        row = np.zeros(0)
    return col, row


def norm_spread(H: np.ndarray, A: np.ndarray) -> float:
    """max/min ratio of the nonzero row/col infinity norms of the stacked
    data matrix — the conditioning proxy the ``ConditioningReport`` quotes."""
    col, row = _stacked_norms(H, A)
    norms = np.concatenate([col, row])
    norms = norms[norms > _NORM_FLOOR]
    if norms.size == 0:
        return 1.0
    return float(np.max(norms) / np.min(norms))


def _safe_rsqrt(norms: np.ndarray) -> np.ndarray:
    """``1/sqrt(n)`` with zero/tiny norms mapped to a unit scaling."""
    guarded = np.where(norms > _NORM_FLOOR, norms, 1.0)
    return 1.0 / np.sqrt(guarded)


def ruiz_equilibrate(
    H: np.ndarray,
    g: np.ndarray,
    A: np.ndarray,
    iters: int = 10,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Equilibration]:
    """Equilibrate one QP: returns ``(H_s, g_s, A_s, eq)``.

    ``iters`` caps the Ruiz sweep; the iteration exits early once all
    scaling updates are within ``0.1%`` of unity (typically 3-6 sweeps).
    Bounds are *not* scaled here — apply ``eq.E`` to ``l``/``u`` at the
    call site (infinities stay infinite under a positive row scaling).
    """
    n = H.shape[1]
    msz = A.shape[0]
    D = np.ones(n)
    E = np.ones(msz)
    c = 1.0
    Hs = np.array(H, dtype=float, copy=True)
    gs = np.array(g, dtype=float, copy=True)
    As = np.array(A, dtype=float, copy=True)
    spread_before = norm_spread(Hs, As)

    done = 0
    for k in range(max(0, int(iters))):
        col, row = _stacked_norms(Hs, As)
        dd = _safe_rsqrt(col)
        de = _safe_rsqrt(row)
        Hs *= dd[:, None] * dd[None, :]
        gs *= dd
        if msz:
            As *= de[:, None] * dd[None, :]
        D *= dd
        E *= de
        # Cost normalization (OSQP): pull the objective's curvature toward
        # unit scale so sigma/rho defaults stay meaningful.
        h_cols = np.max(np.abs(Hs), axis=0) if n else np.zeros(0)
        denom = max(
            float(np.mean(h_cols)) if n else 0.0,
            float(np.max(np.abs(gs))) if n else 0.0,
        )
        gamma = 1.0 / denom if denom > _NORM_FLOOR else 1.0
        Hs *= gamma
        gs *= gamma
        c *= gamma
        done = k + 1
        steps = [np.max(np.abs(1.0 - dd)) if n else 0.0]
        if msz:
            steps.append(np.max(np.abs(1.0 - de)))
        steps.append(abs(1.0 - gamma))
        if max(steps) < _CONVERGED:
            break

    eq = Equilibration(
        D=D,
        E=E,
        c=c,
        Dinv=1.0 / D,
        Einv=np.ones(0) if msz == 0 else 1.0 / E,
        cinv=1.0 / c,
        iters=done,
        spread_before=spread_before,
        spread_after=norm_spread(Hs, As),
    )
    return Hs, gs, As, eq


def identity_equilibration(n: int, msz: int) -> Equilibration:
    """Unit scalings (multiplying by them is bit-exact identity) — lets the
    solver loops run one unconditional code path."""
    return Equilibration(
        D=np.ones(n),
        E=np.ones(msz),
        c=1.0,
        Dinv=np.ones(n),
        Einv=np.ones(msz),
        cinv=1.0,
        iters=0,
    )


# ------------------------------------------------------------------------
# Batched (per-lane) variant: same iteration vectorized over a (B, ...)
# stack.  Host numpy only — the caller uploads the scaling tensors once.
# ------------------------------------------------------------------------


def _stacked_norms_batch(H, A):
    lanes, n = H.shape[0], H.shape[2]
    col = np.max(np.abs(H), axis=1) if n else np.zeros((lanes, 0))
    if A.shape[1]:
        col = np.maximum(col, np.max(np.abs(A), axis=1))
        row = np.max(np.abs(A), axis=2)
    else:
        row = np.zeros((lanes, 0))
    return col, row


def norm_spread_batch(H, A) -> np.ndarray:
    """Per-lane ``norm_spread`` of a ``(B, n, n)`` / ``(B, m, n)`` stack."""
    col, row = _stacked_norms_batch(H, A)
    norms = np.concatenate([col, row], axis=1)
    masked = np.where(norms > _NORM_FLOOR, norms, np.nan)
    with np.errstate(invalid="ignore"):
        hi = np.nanmax(masked, axis=1) if masked.shape[1] else None
        lo = np.nanmin(masked, axis=1) if masked.shape[1] else None
    if hi is None:
        return np.ones(H.shape[0])
    out = hi / lo
    return np.where(np.isfinite(out), out, 1.0)


def ruiz_equilibrate_batch(H, g, A, iters: int = 10):
    """Per-lane Ruiz equilibration of a batched QP stack.

    Returns ``(H_s, g_s, A_s, scale)`` where ``scale`` is a dict of host
    tensors: ``D``/``Dinv`` ``(B, n)``, ``E``/``Einv`` ``(B, m)``,
    ``c``/``cinv`` ``(B,)``, plus per-lane ``spread_before`` /
    ``spread_after``.  Lanes equilibrate independently (each gets its own
    fixpoint); the early exit fires only when *every* lane has converged,
    which keeps the sweep lockstep and allocation-free.
    """
    Hs = np.array(H, dtype=float, copy=True)
    gs = np.array(g, dtype=float, copy=True)
    As = np.array(A, dtype=float, copy=True)
    lanes, n = gs.shape[0], gs.shape[1]
    msz = As.shape[1]
    D = np.ones((lanes, n))
    E = np.ones((lanes, msz))
    c = np.ones(lanes)
    spread_before = norm_spread_batch(Hs, As)

    done = 0
    for k in range(max(0, int(iters))):
        col, row = _stacked_norms_batch(Hs, As)
        dd = _safe_rsqrt(col)
        de = _safe_rsqrt(row)
        Hs *= dd[:, :, None] * dd[:, None, :]
        gs *= dd
        if msz:
            As *= de[:, :, None] * dd[:, None, :]
        D *= dd
        E *= de
        h_cols = np.max(np.abs(Hs), axis=1) if n else np.zeros((lanes, 0))
        denom = np.maximum(
            np.mean(h_cols, axis=1) if n else np.zeros(lanes),
            np.max(np.abs(gs), axis=1) if n else np.zeros(lanes),
        )
        gamma = np.where(denom > _NORM_FLOOR, 1.0 / np.where(denom > 0, denom, 1.0), 1.0)
        Hs *= gamma[:, None, None]
        gs *= gamma[:, None]
        c *= gamma
        done = k + 1
        step = np.max(np.abs(1.0 - dd)) if n else 0.0
        if msz:
            step = max(step, float(np.max(np.abs(1.0 - de))))
        step = max(step, float(np.max(np.abs(1.0 - gamma))))
        if step < _CONVERGED:
            break

    scale = {
        "D": D,
        "Dinv": 1.0 / D,
        "E": E,
        "Einv": 1.0 / E if msz else E.copy(),
        "c": c,
        "cinv": 1.0 / c,
        "iters": done,
        "spread_before": spread_before,
        "spread_after": norm_spread_batch(Hs, As),
    }
    return Hs, gs, As, scale


def identity_scale_batch(lanes: int, n: int, msz: int) -> dict:
    """Per-lane unit scalings (the disabled-equilibration path)."""
    return {
        "D": np.ones((lanes, n)),
        "Dinv": np.ones((lanes, n)),
        "E": np.ones((lanes, msz)),
        "Einv": np.ones((lanes, msz)),
        "c": np.ones(lanes),
        "cinv": np.ones(lanes),
        "iters": 0,
        "spread_before": np.ones(lanes),
        "spread_after": np.ones(lanes),
    }
