"""OSQP-style ADMM solver for the repo's convex QP form.

The QP

    min  1/2 x^T H x + g^T x
    s.t. G x  = b                      (equalities)
         J x <= d                      (inequalities)

is rewritten in the OSQP box form ``l <= A x <= u`` with ``A = [G; J]``,
``l = [b; -inf]``, ``u = [b; d]`` and solved by the standard splitting:

    x~  <-  K^-1 (sigma x - g + A^T (R z - y))      with K = H + sigma I + A^T R A
    z   <-  clamp(relax(A x~, z) + R^-1 y, l, u)
    y   <-  y + R (relax(A x~, z) - z)

``R`` is the diagonal penalty (``rho`` on inequality rows, ``rho_eq_scale
* rho`` on the stiff equality rows).  ``K`` is factorized **once** per
solve — the cached factor is reused every iteration and rebuilt only when
the primal/dual residual ratio triggers a rho rescaling (TinyMPC's cached-
factorization discipline).  Because the per-iteration work is then pure
matvec + clamp, the iteration maps directly onto batched device execution
(:mod:`repro.firstorder.batch`, the ReLU-QP observation).

Warm starting: ``QPResult.warm`` carries ``(x, z, y, rho)`` out of every
solve; passing it back in (same problem family — shapes must match)
resumes the operator-splitting iteration instead of restarting it, which
is what makes ADMM competitive across RTI/MPC ticks.  A solve stopped by
its ``deadline`` returns the **best iterate seen** (by scaled residual)
with ``budget_exhausted=True`` and still-valid warm state, mirroring the
IPM's budget semantics.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

import numpy as np

from repro.errors import SolverError
from repro.mpc.linalg import (
    cholesky,
    cholesky_solve,
    flop_counts_cholesky,
    flop_counts_substitution,
)
from repro.firstorder.precond import (
    identity_equilibration,
    identity_scale_batch,
    norm_spread,
    norm_spread_batch,
    ruiz_equilibrate,
    ruiz_equilibrate_batch,
)
from repro.mpc.qp import ConditioningReport, QPOptions, QPResult, QPStats

__all__ = ["solve_qp_admm"]

#: rho adaptation clamp (OSQP's RHO_MIN / RHO_MAX)
_RHO_MIN = 1e-6
_RHO_MAX = 1e6
#: residual-ratio threshold that actually triggers a rescale+refactor
_RHO_TRIGGER = 5.0
#: stall detector: across one ``admm_stall_iterations`` window the best
#: relative residual must improve below this fraction of the previous
#: window's best, or the solve is declared stalled.  0.9 = "at least 10%
#: better per window" — loose enough that slow tail convergence (tight
#: tolerances creep sublinearly near the floor) never trips it, tight
#: enough that a genuinely flat residual plateau does.
_STALL_WINDOW = 0.9


def _max_abs(v: np.ndarray) -> float:
    return float(np.max(np.abs(v))) if v.size else 0.0


def _penalty_diag(rho: float, p: int, m: int, eq_scale: float) -> np.ndarray:
    R = np.full(p + m, rho)
    R[:p] *= eq_scale
    return R


def _factor_inverse(
    H, A, R, sigma, reg, stats: Optional[QPStats] = None, fault_hook=None
):
    """Explicit inverse of ``K = H + sigma I + A^T R A`` via the repo's
    Cholesky kernels (regularization escalates x100 on failure, same
    schedule as the IPM's ``_robust_cholesky``).

    Returning the inverse — rather than keeping the factor — makes the
    per-iteration solve a single matvec, which is the form the batched
    device loop needs (matmul + clamp, nothing else).

    ``fault_hook`` follows the ``_robust_factor`` protocol of
    :mod:`repro.mpc.qp`: ``transform_matrix`` may perturb ``K``
    (ill-conditioning campaigns), ``force_failure`` exercises the retry
    ladder on demand.
    """
    n = H.shape[0]
    K = H + sigma * np.eye(n)
    if A.shape[0]:
        K = K + (A.T * R) @ A
    # Duck-typed hook protocol: a campaign hook implements any subset of
    # transform_matrix / force_failure / force_stall.
    transform = getattr(fault_hook, "transform_matrix", None)
    if transform is not None:
        K = transform(K)
    force_failure = getattr(fault_hook, "force_failure", None)
    t0 = perf_counter()
    current = reg
    L = None
    for _ in range(16):
        try:
            if force_failure is not None and force_failure():
                raise SolverError("injected factorization failure")
            L = cholesky(K, reg=current)
            break
        except SolverError:
            if stats is not None:
                stats.retries += 1
            current = max(current * 100.0, 1e-12)
    if L is None:
        raise SolverError(
            f"ADMM KKT matrix could not be factorized (reg {current:.1e})"
        )
    Kinv = cholesky_solve(L, np.eye(n))
    if stats is not None:
        stats.factorizations += 1
        stats.factor_flops += sum(flop_counts_cholesky(n).values())
        stats.factor_flops += 2 * sum(
            flop_counts_substitution(n, n).values()
        )
        stats.factorize_time += perf_counter() - t0
        stats.regularization_max = max(stats.regularization_max, current)
    return Kinv


def _valid_warm(warm: Optional[dict], n: int, msz: int) -> Optional[dict]:
    """Warm-start hygiene: accept only a complete, shape-matching, finite
    iterate triple — anything else falls back to a cold start (the same
    reject-and-reseed contract the SQP applies to its own warm starts)."""
    if not isinstance(warm, dict):
        return None
    try:
        x = np.asarray(warm["x"], dtype=float)
        z = np.asarray(warm["z"], dtype=float)
        y = np.asarray(warm["y"], dtype=float)
    except (KeyError, TypeError, ValueError):
        return None
    if x.shape != (n,) or z.shape != (msz,) or y.shape != (msz,):
        return None
    if not (
        np.all(np.isfinite(x))
        and np.all(np.isfinite(z))
        and np.all(np.isfinite(y))
    ):
        return None
    rho = warm.get("rho")
    if rho is not None:
        rho = float(rho)
        if not np.isfinite(rho) or rho <= 0.0:
            rho = None
    return {"x": x.copy(), "z": z.copy(), "y": y.copy(), "rho": rho}


#: slack/dual threshold that puts an inequality row into the polish guess
_POLISH_ACTIVE_TOL = 1e-6
#: iterative-refinement passes against the unregularized KKT system
_POLISH_REFINE = 3
#: active-set repair rounds (drop negative multipliers, then add violated
#: rows — never both in one round, which thrashes on stiff problems)
_POLISH_ROUNDS = 15


def _polish_qp(H, g, G, b, J, d, x, lam, reg, tol):
    """Active-set polish of a first-order iterate (OSQP Section 5.2, plus
    active-set repair rounds).

    A stalled or capped ADMM iterate is usually *qualitatively* right —
    it knows which inequality rows bind — while its accuracy is pinned by
    the problem's curvature spread, which no diagonal scaling can fix.
    Solving the equality-constrained KKT system of the guessed active set
    (regularized quasi-definite factorization + iterative refinement) has
    no such floor, so one direct solve recovers the solution to near
    machine precision *if the guess is right*.  Each repair round then
    adds rows the candidate violates and drops rows with negative
    multipliers, converging to the true active set from a coarse guess.

    Returns a dict with the best candidate seen (``x``, ``nu``, ``lam``,
    ``slacks``, ``r_prim``, ``r_dual``, ``residual`` and a ``converged``
    verdict against ``tol`` in the relative metric of the ADMM loop), or
    ``None`` when no round produced a finite solve.
    """
    n = g.shape[0]
    p = G.shape[0] if G is not None else 0
    m = J.shape[0] if J is not None else 0
    delta = max(float(reg), 1e-9)
    g_norm = _max_abs(g)
    act = np.zeros(m, dtype=bool)
    if m:
        act = ((d - J @ x) < _POLISH_ACTIVE_TOL * (1.0 + np.abs(d))) | (
            lam > _POLISH_ACTIVE_TOL
        )
    best = None
    best_score = float("inf")
    for _ in range(_POLISH_ROUNDS):
        rows, rhs_rows = [], []
        if p:
            rows.append(G)
            rhs_rows.append(b)
        if m and np.any(act):
            rows.append(J[act])
            rhs_rows.append(d[act])
        A_act = np.vstack(rows) if rows else np.zeros((0, n))
        rc = np.concatenate(rhs_rows) if rhs_rows else np.zeros(0)
        ka = A_act.shape[0]
        K = np.block(
            [
                [H + delta * np.eye(n), A_act.T],
                [A_act, -delta * np.eye(ka)],
            ]
        )
        K0 = np.block(
            [[H, A_act.T], [A_act, np.zeros((ka, ka))]]
        )
        rhs = np.concatenate([-g, rc])
        try:
            sol = np.linalg.solve(K, rhs)
            for _refine in range(_POLISH_REFINE):
                sol = sol + np.linalg.solve(K, rhs - K0 @ sol)
        except np.linalg.LinAlgError:
            break
        if not np.all(np.isfinite(sol)):
            break
        px = sol[:n]
        mult = sol[n:]
        r_dual = _max_abs(
            H @ px + g + (A_act.T @ mult if ka else 0.0)
        )
        r_prim = 0.0
        if p:
            r_prim = max(r_prim, _max_abs(G @ px - b))
        viol = np.zeros(0)
        if m:
            viol = J @ px - d
            r_prim = max(r_prim, float(np.max(np.maximum(viol, 0.0))))
        score = max(r_dual, r_prim)
        if score < best_score:
            best_score = score
            lam_full = np.zeros(m)
            if m and ka > p:
                lam_full[act] = np.maximum(mult[p:], 0.0)
            best = {
                "x": px,
                "nu": mult[:p].copy(),
                "lam": lam_full,
                "r_prim": r_prim,
                "r_dual": r_dual,
            }
        if not m:
            break
        # Repair the guess, one move at a time (textbook active-set
        # discipline): first evict rows whose multiplier came back
        # negative — a wrongly pinned row drags the candidate into
        # violating *other* rows, so adding and dropping simultaneously
        # chases its own tail on stiff problems.  Only once the
        # multipliers are clean do violated rows join the set.
        new_act = act.copy()
        if ka > p:
            neg = mult[p:] < -1e-9
            if np.any(neg):
                new_act[np.flatnonzero(act)[neg]] = False
        if np.array_equal(new_act, act):
            new_act = act | (viol > 1e-9 * (1.0 + np.abs(d)))
        if np.array_equal(new_act, act):
            break
        act = new_act
    if best is None:
        return None

    px = best["x"]
    y_full = np.concatenate([best["nu"], best["lam"]])
    rows = []
    if p:
        rows.append(G)
    if m:
        rows.append(J)
    A = np.vstack(rows) if rows else np.zeros((0, n))
    Ax = A @ px
    prim_scale = 1.0 + _max_abs(Ax)
    dual_scale = 1.0 + max(
        _max_abs(H @ px),
        _max_abs(A.T @ y_full) if A.shape[0] else 0.0,
        g_norm,
    )
    best["slacks"] = (
        np.maximum(d - J @ px, 0.0) if m else np.zeros(0)
    )
    best["residual"] = max(best["r_prim"], best["r_dual"])
    best["converged"] = bool(
        best["r_prim"] <= tol * prim_scale
        and best["r_dual"] <= tol * dual_scale
    )
    return best


def solve_qp_admm(
    H: np.ndarray,
    g: np.ndarray,
    G: Optional[np.ndarray],
    b: Optional[np.ndarray],
    J: Optional[np.ndarray],
    d: Optional[np.ndarray],
    options: Optional[QPOptions] = None,
    deadline: Optional[float] = None,
    warm: Optional[dict] = None,
    fault_hook: Optional[object] = None,
) -> QPResult:
    """Solve one convex QP with over-relaxed ADMM and a cached factorization.

    Same data contract as :func:`repro.mpc.qp.solve_qp` (which dispatches
    here for ``options.method == "admm"``).  ``deadline`` is an absolute
    ``perf_counter`` stamp: past it, the best iterate seen is returned with
    ``budget_exhausted=True``.  ``warm`` resumes from a previous solve's
    ``QPResult.warm`` — warm dicts always travel in the *unscaled* space,
    so carry-over survives re-equilibration with fresh scalings.

    With ``options.admm_equilibrate`` the box-form data is Ruiz-scaled
    first and the iteration runs on the scaled problem while terminating
    on the unscaled residuals; the returned iterates, duals, residuals and
    warm state are always in the original space.  A
    :class:`~repro.mpc.qp.ConditioningReport` on ``result.stats`` records
    the norm spread, rho-rescale count and the stall/divergence verdict
    the fallback ladder keys on.

    ``fault_hook`` is the :mod:`repro.faults` solver-layer injector: the
    cached factorization consults ``transform_matrix``/``force_failure``
    (same protocol as the IPM's ``_robust_factor``), and the optional
    ``force_stall`` hook makes this solve report a stall after a few
    iterations — the deterministic trigger ``admm_stall`` campaigns use to
    exercise the rescue ladder.
    """
    opt = options or QPOptions()
    n = g.shape[0]
    if H.shape != (n, n):
        raise SolverError(f"H shape {H.shape} does not match g length {n}")
    for name, arr in (("H", H), ("g", g), ("G", G), ("b", b), ("J", J), ("d", d)):
        if arr is not None and np.size(arr) and not np.all(np.isfinite(arr)):
            raise SolverError(
                f"QP data {name} contains non-finite entries; "
                "refusing to start the ADMM iteration"
            )

    has_eq = G is not None and G.shape[0] > 0
    has_in = J is not None and J.shape[0] > 0
    p = G.shape[0] if has_eq else 0
    m = J.shape[0] if has_in else 0
    if has_eq and (b is None or b.shape != (p,)):
        raise SolverError("equality right-hand side b missing or mis-shaped")
    if has_in and (d is None or d.shape != (m,)):
        raise SolverError("inequality right-hand side d missing or mis-shaped")
    msz = p + m

    rows = []
    if has_eq:
        rows.append(np.asarray(G, dtype=float))
    if has_in:
        rows.append(np.asarray(J, dtype=float))
    A = np.vstack(rows) if rows else np.zeros((0, n))
    l = np.concatenate(
        [b if has_eq else np.zeros(0), np.full(m, -np.inf)]
    )
    u = np.concatenate(
        [b if has_eq else np.zeros(0), d if has_in else np.zeros(0)]
    )

    stats = QPStats(mode="admm")
    tol = opt.admm_tolerance
    sigma = opt.admm_sigma
    alpha = opt.admm_alpha

    # ---- Ruiz equilibration: the iteration runs on the scaled problem,
    # termination and every returned quantity stay in the original space.
    # Gated on the norm spread: already-well-scaled data is left alone
    # (normalizing it would make the relative stopping test effectively
    # absolute and can push a tight tolerance below the iteration's
    # numerical floor).  The skipped path uses unit scalings, whose
    # multiplies are bit-exact identities, so both paths share one loop
    # body.
    spread0 = norm_spread(H, A)
    eq_on = (
        bool(opt.admm_equilibrate)
        and opt.admm_equilibrate_iters > 0
        and n > 0
        and spread0 > opt.admm_equilibrate_spread
    )
    if eq_on:
        Hs, gs, As, eq = ruiz_equilibrate(
            H, g, A, iters=opt.admm_equilibrate_iters
        )
        l = eq.E * l
        u = eq.E * u
    else:
        Hs, gs, As = H, g, A
        eq = identity_equilibration(n, msz)
        eq.spread_before = spread0
        eq.spread_after = spread0

    ws = _valid_warm(warm, n, msz)
    rho = opt.admm_rho
    if ws is not None and ws["rho"] is not None:
        rho = min(max(ws["rho"], _RHO_MIN), _RHO_MAX)
    R = _penalty_diag(rho, p, m, opt.admm_rho_eq_scale)
    Rinv = 1.0 / R
    Kinv = _factor_inverse(
        Hs, As, R, sigma, opt.regularization, stats, fault_hook=fault_hook
    )

    if ws is not None:
        x, z, y = eq.scale_warm(ws["x"], ws["z"], ws["y"])
        z = np.clip(z, l, u)
    else:
        x = np.zeros(n)
        z = np.clip(As @ x, l, u)
        y = np.zeros(msz)

    g_norm = _max_abs(g)
    gap_history: List[float] = []
    converged = False
    budget_exhausted = False
    stalled = False
    diverged = False
    rho_rescales = 0
    stall_limit = int(opt.admm_stall_iterations)
    window_ref = float("inf")
    window_count = 0
    forced_stall = bool(
        fault_hook is not None
        and getattr(fault_hook, "force_stall", None) is not None
        and fault_hook.force_stall()
    )
    residual = float("inf")
    best_score = float("inf")
    best = (x.copy(), z.copy(), y.copy(), residual, 0)
    it = 0
    matvec_flops = 2 * n * n + 6 * msz * n  # per-iteration matvec budget
    t_sub = perf_counter()
    fact_t0 = stats.factorize_time

    for it in range(1, opt.admm_max_iterations + 1):
        # Deadline guard at the iteration top, scalar-IPM order: the best
        # iterate seen so far is returned with budget_exhausted=True, so
        # ``it - 1`` iterations did real work.
        if deadline is not None and perf_counter() >= deadline:
            budget_exhausted = True
            it -= 1
            break

        xt = Kinv @ (sigma * x - gs + As.T @ (R * z - y))
        x = alpha * xt + (1.0 - alpha) * x
        zr = alpha * (As @ xt) + (1.0 - alpha) * z
        z_new = np.clip(zr + Rinv * y, l, u)
        y = y + R * (zr - z_new)
        z = z_new

        # Residuals are evaluated in the ORIGINAL space (elementwise
        # unscaling of the scaled quantities), so the stopping test means
        # the same thing with and without equilibration.
        Ax = As @ x
        Hx = Hs @ x
        Aty = As.T @ y if msz else np.zeros(n)
        r_prim = _max_abs(eq.Einv * (Ax - z))
        r_dual = _max_abs(eq.cinv * (eq.Dinv * (Hx + gs + Aty)))
        residual = max(r_prim, r_dual)
        gap_history.append(residual)
        if not np.isfinite(residual):
            # Poisoned iterate: stop on the best finite iterate seen.  The
            # caller's non-finite direction guard never fires on the
            # restored state.
            diverged = True
            break

        prim_scale = 1.0 + max(
            _max_abs(eq.Einv * Ax), _max_abs(eq.Einv * z)
        )
        dual_scale = 1.0 + max(
            _max_abs(eq.cinv * (eq.Dinv * Hx)),
            _max_abs(eq.cinv * (eq.Dinv * Aty)),
            g_norm,
        )
        rp_rel = r_prim / prim_scale
        rd_rel = r_dual / dual_scale
        score = max(rp_rel, rd_rel)
        if score < best_score:
            best_score = score
            best = (x.copy(), z.copy(), y.copy(), residual, it)
        if rp_rel <= tol and rd_rel <= tol:
            converged = True
            break
        if forced_stall and it >= min(10, opt.admm_max_iterations):
            stalled = True
            break
        if stall_limit:
            window_count += 1
            if window_count >= stall_limit:
                if best_score > _STALL_WINDOW * window_ref:
                    # The whole window moved the best residual by less
                    # than 10%: stop on the best iterate and let the
                    # fallback ladder spend the remaining budget on the
                    # IPM instead of burning it here.
                    stalled = True
                    break
                window_ref = best_score
                window_count = 0

        if opt.admm_rho_interval and it % opt.admm_rho_interval == 0:
            # OSQP residual-balancing rho update; a rescale is the ONLY
            # event that re-factorizes the cached KKT matrix.
            ratio = np.sqrt(max(rp_rel, 1e-30) / max(rd_rel, 1e-30))
            if ratio > _RHO_TRIGGER or ratio < 1.0 / _RHO_TRIGGER:
                new_rho = min(max(rho * ratio, _RHO_MIN), _RHO_MAX)
                if new_rho != rho:
                    rho = new_rho
                    R = _penalty_diag(rho, p, m, opt.admm_rho_eq_scale)
                    Rinv = 1.0 / R
                    rho_rescales += 1
                    Kinv = _factor_inverse(
                        Hs, As, R, sigma, opt.regularization, stats,
                        fault_hook=fault_hook,
                    )

    if not converged and best[4] > 0:
        # Return the best iterate seen (budget stop, cap, or divergence):
        # the residual was evaluated at exactly this iterate, so the
        # returned pair is consistent — and the warm state stays reusable.
        x, z, y, residual, _best_it = best

    stats.substitute_time += (
        perf_counter() - t_sub - (stats.factorize_time - fact_t0)
    )
    stats.substitute_flops += it * matvec_flops

    # Back to the original space: iterates, duals, slacks, residuals and
    # the warm dict are all unscaled from here on.
    x, z, y = eq.unscale_solution(x, z, y)

    nu = y[:p].copy()
    lam = np.maximum(y[p:], 0.0)
    # The warm dict always carries the operator-splitting iterate — never
    # the polished point, which is not a fixed point of the iteration.
    warm_out = None
    if (
        np.all(np.isfinite(x))
        and np.all(np.isfinite(z))
        and np.all(np.isfinite(y))
    ):
        warm_out = {
            "x": x.copy(),
            "z": z.copy(),
            "y": y.copy(),
            "rho": rho,
        }

    polished = False
    if (
        opt.polish
        and not converged
        and not budget_exhausted
        and n > 0
        and np.all(np.isfinite(x))
    ):
        # Rescue polish: a stalled/capped/diverged-then-restored iterate
        # usually has the right active set even when its accuracy floor is
        # set by curvature spread no diagonal scaling fixes; one direct
        # KKT solve on that set recovers the solution past the floor.
        t_pol = perf_counter()
        pol = _polish_qp(
            H, g,
            G if has_eq else None, b if has_eq else None,
            J if has_in else None, d if has_in else None,
            x, lam, opt.regularization, tol,
        )
        stats.factorize_time += perf_counter() - t_pol
        if pol is not None and (
            pol["converged"] or pol["residual"] < residual
        ):
            x = pol["x"]
            nu = pol["nu"]
            lam = pol["lam"]
            residual = pol["residual"]
            gap_history.append(residual)
            converged = converged or pol["converged"]
            polished = pol["converged"]
            stats.factorizations += 1

    slacks = (
        np.maximum(d - J @ x, 0.0) if has_in else np.zeros(0)
    )
    stats.conditioning = ConditioningReport(
        equilibrated=eq_on,
        ruiz_iters=eq.iters,
        norm_spread_before=eq.spread_before,
        norm_spread_after=eq.spread_after,
        cost_scale=eq.c,
        rho_rescales=rho_rescales,
        stalled=stalled,
        diverged=diverged,
        polished=polished,
    )

    return QPResult(
        x=x,
        nu=nu,
        lam=lam,
        slacks=slacks,
        converged=converged,
        iterations=it,
        residual=residual,
        gap_history=gap_history,
        stats=stats,
        budget_exhausted=budget_exhausted,
        warm=warm_out,
    )


# ------------------------------------------------------------------------
# Host-side setup for the batched device loop (repro.firstorder.batch).
#
# All bare-numpy work of the batched path lives HERE, not in batch.py:
# the lint gate (scripts/check_no_bare_numpy.py) keeps the device module
# free of host-pinned array ops, and setup is by construction a one-time
# host materialization (build A/l/u, invert K) before the sync-free loop.
# ------------------------------------------------------------------------


def _admm_refactor_batch(H, A, rho_lane, p, m, eq_scale, sigma, reg):
    """(Re)build the per-lane penalty diagonal and the batched inverse of
    ``K = H + sigma I + A^T R A`` on the host.

    Called once at setup and again whenever the residual-balancing rho
    update fires at a sync checkpoint — the *only* events that touch the
    cached factorization, mirroring the scalar path's discipline.
    Returns ``(Kinv, R, Rinv, ok)`` with ``ok`` flagging lanes whose K
    actually inverted to finite values.
    """
    lanes, n = H.shape[0], H.shape[1]
    msz = p + m
    R = np.repeat(np.asarray(rho_lane, dtype=float)[:, None], msz, axis=1)
    R[:, :p] *= eq_scale
    eye = np.broadcast_to(np.eye(n), (lanes, n, n))
    K = H + (sigma + reg) * eye
    if msz:
        K = K + np.matmul(A.transpose(0, 2, 1), R[:, :, None] * A)
    try:
        Kinv = np.linalg.inv(K)
    except np.linalg.LinAlgError:
        # Per-lane fallback: a singular lane freezes as failed, the rest
        # keep their exact inverse.
        Kinv = np.empty_like(K)
        for lane in range(lanes):
            try:
                Kinv[lane] = np.linalg.inv(K[lane])
            except np.linalg.LinAlgError:
                Kinv[lane] = np.eye(n)
    ok = np.all(np.isfinite(Kinv), axis=(1, 2))
    Kinv[~ok] = np.eye(n)
    with np.errstate(divide="ignore"):
        Rinv = np.where(R > 0.0, 1.0 / np.where(R > 0.0, R, 1.0), 0.0)
    return Kinv, R, Rinv, ok


def _admm_setup_batch(
    H, g, G, b, J, d, opt: QPOptions, rho0=None
) -> dict:
    """Assemble the batched ADMM problem data on the host.

    Returns host numpy arrays only; the caller uploads them once.  Lanes
    with non-finite data are sanitized (identity K, zero constraints) and
    flagged in ``lane_finite`` so the device loop freezes them as failed
    without poisoning batch-mates — same contract as the batched IPM.
    ``rho0`` optionally seeds the per-lane penalty (scalar or ``(B,)``,
    e.g. a warm start's adapted rho).
    """
    H = np.asarray(H, dtype=float)
    g = np.asarray(g, dtype=float)
    lanes, n = g.shape[0], g.shape[1]
    if H.shape != (lanes, n, n):
        raise SolverError(f"H shape {H.shape} != ({lanes}, {n}, {n})")
    if G is None or b is None:
        G = np.zeros((lanes, 0, n))
        b = np.zeros((lanes, 0))
    else:
        G = np.asarray(G, dtype=float)
        b = np.asarray(b, dtype=float)
    if J is None or d is None:
        J = np.zeros((lanes, 0, n))
        d = np.zeros((lanes, 0))
    else:
        J = np.asarray(J, dtype=float)
        d = np.asarray(d, dtype=float)
    p, m = G.shape[1], J.shape[1]
    msz = p + m

    lane_finite = (
        np.all(np.isfinite(H), axis=(1, 2))
        & np.all(np.isfinite(g), axis=1)
        & np.all(np.isfinite(G.reshape(lanes, -1)), axis=1)
        & np.all(np.isfinite(b), axis=1)
        & np.all(np.isfinite(J.reshape(lanes, -1)), axis=1)
        & np.all(np.isfinite(d), axis=1)
    )
    lf3 = lane_finite[:, None, None]
    lf2 = lane_finite[:, None]
    eye = np.broadcast_to(np.eye(n), (lanes, n, n))
    H = np.where(lf3, H, eye)
    g = np.where(lf2, g, 0.0)
    G = np.where(lf3, G, 0.0)
    b = np.where(lf2, b, 0.0)
    J = np.where(lf3, J, 0.0)
    d = np.where(lf2, d, 0.0)

    A = np.concatenate([G, J], axis=1)
    l = np.concatenate(
        [b, np.full((lanes, m), -np.inf)], axis=1
    )
    u = np.concatenate([b, d], axis=1)
    q_norm = np.max(np.abs(g), axis=1) if n else np.zeros(lanes)
    # Keep the sanitized-but-unscaled data for the per-lane polish epilogue
    # (equilibration below rebinds H/g/A to scaled copies).
    H0, q0, G0, b0 = H, g, G, b

    # Per-lane Ruiz equilibration: every lane gets its own D/E/c fixpoint;
    # the scale tensors ride to the device with the rest of the one-time
    # uploads.  The spread gate is per-lane: lanes under the threshold
    # keep their original data and exact unit scalings (bit-identical to
    # the unequilibrated loop — unit-scale multiplies are exact), so a
    # stiff lane never changes a well-conditioned batch-mate's arithmetic.
    spread0 = norm_spread_batch(H, A)
    eq_enabled = (
        bool(opt.admm_equilibrate) and opt.admm_equilibrate_iters > 0 and n > 0
    )
    lane_eq = eq_enabled & (spread0 > opt.admm_equilibrate_spread)
    if np.any(lane_eq):
        Hs, gs, As, scale = ruiz_equilibrate_batch(
            H, g, A, iters=opt.admm_equilibrate_iters
        )
        calm = ~lane_eq
        if np.any(calm):
            Hs[calm] = H[calm]
            gs[calm] = g[calm]
            As[calm] = A[calm]
            for key in ("D", "Dinv", "E", "Einv"):
                scale[key][calm] = 1.0
            scale["c"][calm] = 1.0
            scale["cinv"][calm] = 1.0
            scale["spread_after"][calm] = spread0[calm]
        H, g, A = Hs, gs, As
        l = scale["E"] * l
        u = scale["E"] * u
    else:
        scale = identity_scale_batch(lanes, n, msz)
        scale["spread_after"] = spread0.copy()
    scale["spread_before"] = spread0
    scale["lane_eq"] = lane_eq

    if rho0 is None:
        rho_lane = np.full(lanes, opt.admm_rho)
    else:
        rho_lane = np.broadcast_to(
            np.asarray(rho0, dtype=float), (lanes,)
        ).copy()
        bad_rho = ~np.isfinite(rho_lane) | (rho_lane <= 0.0)
        rho_lane[bad_rho] = opt.admm_rho
    rho_lane = np.clip(rho_lane, _RHO_MIN, _RHO_MAX)

    Kinv, R, Rinv, ok = _admm_refactor_batch(
        H, A, rho_lane, p, m,
        opt.admm_rho_eq_scale, opt.admm_sigma, opt.regularization,
    )
    lane_finite = lane_finite & ok

    return {
        "Kinv": Kinv,
        "A": A,
        "At": A.transpose(0, 2, 1).copy(),
        "H": H,
        "q": g,
        "l": l,
        "u": u,
        # J/d stay UNSCALED: slack recovery at result assembly runs on the
        # unscaled iterate (the scaled rows of A carry E internally).
        "J": J,
        "d": d,
        # Unscaled problem data for the polish epilogue (host-only).
        "H0": H0,
        "q0": q0,
        "G0": G0,
        "b0": b0,
        "R": R,
        "Rinv": Rinv,
        "lane_finite": lane_finite,
        "n": n,
        "p": p,
        "m": m,
        "rho": rho_lane,
        #: per-lane unscaled ``max|g|`` for the dual convergence scale
        "q_norm": q_norm,
        #: per-lane equilibration tensors (unit scalings when disabled)
        "scale": scale,
    }


def _admm_warm_batch(warm: Optional[dict], lanes: int, n: int, msz: int):
    """Validate a batched warm-start dict (host arrays, all-finite)."""
    if not isinstance(warm, dict):
        return None
    try:
        x = np.asarray(warm["x"], dtype=float)
        z = np.asarray(warm["z"], dtype=float)
        y = np.asarray(warm["y"], dtype=float)
    except (KeyError, TypeError, ValueError):
        return None
    if (
        x.shape != (lanes, n)
        or z.shape != (lanes, msz)
        or y.shape != (lanes, msz)
    ):
        return None
    if not (
        np.all(np.isfinite(x))
        and np.all(np.isfinite(z))
        and np.all(np.isfinite(y))
    ):
        return None
    rho = warm.get("rho")
    if rho is not None:
        try:
            rho = np.broadcast_to(
                np.asarray(rho, dtype=float), (lanes,)
            ).copy()
        except ValueError:
            rho = None
    return {"x": x, "z": z, "y": y, "rho": rho}


def _admm_rho_update_batch(rho_lane, rp_rel, rd_rel, trigger_mask):
    """Host-side per-lane residual-balancing rho update (sync checkpoint).

    Returns ``(new_rho, changed)`` where ``changed`` marks lanes whose rho
    actually moved (those are the lanes whose cached factor is rebuilt).
    """
    ratio = np.sqrt(
        np.maximum(rp_rel, 1e-30) / np.maximum(rd_rel, 1e-30)
    )
    fire = (
        trigger_mask
        & np.isfinite(ratio)
        & ((ratio > _RHO_TRIGGER) | (ratio < 1.0 / _RHO_TRIGGER))
    )
    new_rho = np.clip(rho_lane * ratio, _RHO_MIN, _RHO_MAX)
    new_rho = np.where(fire, new_rho, rho_lane)
    changed = fire & (new_rho != rho_lane)
    return new_rho, changed
