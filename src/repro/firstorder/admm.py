"""OSQP-style ADMM solver for the repo's convex QP form.

The QP

    min  1/2 x^T H x + g^T x
    s.t. G x  = b                      (equalities)
         J x <= d                      (inequalities)

is rewritten in the OSQP box form ``l <= A x <= u`` with ``A = [G; J]``,
``l = [b; -inf]``, ``u = [b; d]`` and solved by the standard splitting:

    x~  <-  K^-1 (sigma x - g + A^T (R z - y))      with K = H + sigma I + A^T R A
    z   <-  clamp(relax(A x~, z) + R^-1 y, l, u)
    y   <-  y + R (relax(A x~, z) - z)

``R`` is the diagonal penalty (``rho`` on inequality rows, ``rho_eq_scale
* rho`` on the stiff equality rows).  ``K`` is factorized **once** per
solve — the cached factor is reused every iteration and rebuilt only when
the primal/dual residual ratio triggers a rho rescaling (TinyMPC's cached-
factorization discipline).  Because the per-iteration work is then pure
matvec + clamp, the iteration maps directly onto batched device execution
(:mod:`repro.firstorder.batch`, the ReLU-QP observation).

Warm starting: ``QPResult.warm`` carries ``(x, z, y, rho)`` out of every
solve; passing it back in (same problem family — shapes must match)
resumes the operator-splitting iteration instead of restarting it, which
is what makes ADMM competitive across RTI/MPC ticks.  A solve stopped by
its ``deadline`` returns the **best iterate seen** (by scaled residual)
with ``budget_exhausted=True`` and still-valid warm state, mirroring the
IPM's budget semantics.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

import numpy as np

from repro.errors import SolverError
from repro.mpc.linalg import (
    cholesky,
    cholesky_solve,
    flop_counts_cholesky,
    flop_counts_substitution,
)
from repro.mpc.qp import QPOptions, QPResult, QPStats

__all__ = ["solve_qp_admm"]

#: rho adaptation clamp (OSQP's RHO_MIN / RHO_MAX)
_RHO_MIN = 1e-6
_RHO_MAX = 1e6
#: residual-ratio threshold that actually triggers a rescale+refactor
_RHO_TRIGGER = 5.0


def _max_abs(v: np.ndarray) -> float:
    return float(np.max(np.abs(v))) if v.size else 0.0


def _penalty_diag(rho: float, p: int, m: int, eq_scale: float) -> np.ndarray:
    R = np.full(p + m, rho)
    R[:p] *= eq_scale
    return R


def _factor_inverse(H, A, R, sigma, reg, stats: Optional[QPStats] = None):
    """Explicit inverse of ``K = H + sigma I + A^T R A`` via the repo's
    Cholesky kernels (regularization escalates x100 on failure, same
    schedule as the IPM's ``_robust_cholesky``).

    Returning the inverse — rather than keeping the factor — makes the
    per-iteration solve a single matvec, which is the form the batched
    device loop needs (matmul + clamp, nothing else).
    """
    n = H.shape[0]
    K = H + sigma * np.eye(n)
    if A.shape[0]:
        K = K + (A.T * R) @ A
    t0 = perf_counter()
    current = reg
    L = None
    for _ in range(16):
        try:
            L = cholesky(K, reg=current)
            break
        except SolverError:
            if stats is not None:
                stats.retries += 1
            current = max(current * 100.0, 1e-12)
    if L is None:
        raise SolverError(
            f"ADMM KKT matrix could not be factorized (reg {current:.1e})"
        )
    Kinv = cholesky_solve(L, np.eye(n))
    if stats is not None:
        stats.factorizations += 1
        stats.factor_flops += sum(flop_counts_cholesky(n).values())
        stats.factor_flops += 2 * sum(
            flop_counts_substitution(n, n).values()
        )
        stats.factorize_time += perf_counter() - t0
        stats.regularization_max = max(stats.regularization_max, current)
    return Kinv


def _valid_warm(warm: Optional[dict], n: int, msz: int) -> Optional[dict]:
    """Warm-start hygiene: accept only a complete, shape-matching, finite
    iterate triple — anything else falls back to a cold start (the same
    reject-and-reseed contract the SQP applies to its own warm starts)."""
    if not isinstance(warm, dict):
        return None
    try:
        x = np.asarray(warm["x"], dtype=float)
        z = np.asarray(warm["z"], dtype=float)
        y = np.asarray(warm["y"], dtype=float)
    except (KeyError, TypeError, ValueError):
        return None
    if x.shape != (n,) or z.shape != (msz,) or y.shape != (msz,):
        return None
    if not (
        np.all(np.isfinite(x))
        and np.all(np.isfinite(z))
        and np.all(np.isfinite(y))
    ):
        return None
    rho = warm.get("rho")
    if rho is not None:
        rho = float(rho)
        if not np.isfinite(rho) or rho <= 0.0:
            rho = None
    return {"x": x.copy(), "z": z.copy(), "y": y.copy(), "rho": rho}


def solve_qp_admm(
    H: np.ndarray,
    g: np.ndarray,
    G: Optional[np.ndarray],
    b: Optional[np.ndarray],
    J: Optional[np.ndarray],
    d: Optional[np.ndarray],
    options: Optional[QPOptions] = None,
    deadline: Optional[float] = None,
    warm: Optional[dict] = None,
) -> QPResult:
    """Solve one convex QP with over-relaxed ADMM and a cached factorization.

    Same data contract as :func:`repro.mpc.qp.solve_qp` (which dispatches
    here for ``options.method == "admm"``).  ``deadline`` is an absolute
    ``perf_counter`` stamp: past it, the best iterate seen is returned with
    ``budget_exhausted=True``.  ``warm`` resumes from a previous solve's
    ``QPResult.warm``.
    """
    opt = options or QPOptions()
    n = g.shape[0]
    if H.shape != (n, n):
        raise SolverError(f"H shape {H.shape} does not match g length {n}")
    for name, arr in (("H", H), ("g", g), ("G", G), ("b", b), ("J", J), ("d", d)):
        if arr is not None and np.size(arr) and not np.all(np.isfinite(arr)):
            raise SolverError(
                f"QP data {name} contains non-finite entries; "
                "refusing to start the ADMM iteration"
            )

    has_eq = G is not None and G.shape[0] > 0
    has_in = J is not None and J.shape[0] > 0
    p = G.shape[0] if has_eq else 0
    m = J.shape[0] if has_in else 0
    if has_eq and (b is None or b.shape != (p,)):
        raise SolverError("equality right-hand side b missing or mis-shaped")
    if has_in and (d is None or d.shape != (m,)):
        raise SolverError("inequality right-hand side d missing or mis-shaped")
    msz = p + m

    rows = []
    if has_eq:
        rows.append(np.asarray(G, dtype=float))
    if has_in:
        rows.append(np.asarray(J, dtype=float))
    A = np.vstack(rows) if rows else np.zeros((0, n))
    l = np.concatenate(
        [b if has_eq else np.zeros(0), np.full(m, -np.inf)]
    )
    u = np.concatenate(
        [b if has_eq else np.zeros(0), d if has_in else np.zeros(0)]
    )

    stats = QPStats(mode="admm")
    tol = opt.admm_tolerance
    sigma = opt.admm_sigma
    alpha = opt.admm_alpha

    ws = _valid_warm(warm, n, msz)
    rho = opt.admm_rho
    if ws is not None and ws["rho"] is not None:
        rho = min(max(ws["rho"], _RHO_MIN), _RHO_MAX)
    R = _penalty_diag(rho, p, m, opt.admm_rho_eq_scale)
    Rinv = 1.0 / R
    Kinv = _factor_inverse(H, A, R, sigma, opt.regularization, stats)

    if ws is not None:
        x, z, y = ws["x"], ws["z"], ws["y"]
        z = np.clip(z, l, u)
    else:
        x = np.zeros(n)
        z = np.clip(A @ x, l, u)
        y = np.zeros(msz)

    g_norm = _max_abs(g)
    gap_history: List[float] = []
    converged = False
    budget_exhausted = False
    residual = float("inf")
    best_score = float("inf")
    best = (x.copy(), z.copy(), y.copy(), residual, 0)
    it = 0
    matvec_flops = 2 * n * n + 6 * msz * n  # per-iteration matvec budget
    t_sub = perf_counter()
    fact_t0 = stats.factorize_time

    for it in range(1, opt.admm_max_iterations + 1):
        # Deadline guard at the iteration top, scalar-IPM order: the best
        # iterate seen so far is returned with budget_exhausted=True, so
        # ``it - 1`` iterations did real work.
        if deadline is not None and perf_counter() >= deadline:
            budget_exhausted = True
            it -= 1
            break

        xt = Kinv @ (sigma * x - g + A.T @ (R * z - y))
        x = alpha * xt + (1.0 - alpha) * x
        zr = alpha * (A @ xt) + (1.0 - alpha) * z
        z_new = np.clip(zr + Rinv * y, l, u)
        y = y + R * (zr - z_new)
        z = z_new

        Ax = A @ x
        Hx = H @ x
        Aty = A.T @ y if msz else np.zeros(n)
        r_prim = _max_abs(Ax - z)
        r_dual = _max_abs(Hx + g + Aty)
        residual = max(r_prim, r_dual)
        gap_history.append(residual)
        if not np.isfinite(residual):
            # Poisoned iterate: stop on the best finite iterate seen.  The
            # caller's non-finite direction guard never fires on the
            # restored state.
            break

        prim_scale = 1.0 + max(_max_abs(Ax), _max_abs(z))
        dual_scale = 1.0 + max(_max_abs(Hx), _max_abs(Aty), g_norm)
        rp_rel = r_prim / prim_scale
        rd_rel = r_dual / dual_scale
        score = max(rp_rel, rd_rel)
        if score < best_score:
            best_score = score
            best = (x.copy(), z.copy(), y.copy(), residual, it)
        if rp_rel <= tol and rd_rel <= tol:
            converged = True
            break

        if opt.admm_rho_interval and it % opt.admm_rho_interval == 0:
            # OSQP residual-balancing rho update; a rescale is the ONLY
            # event that re-factorizes the cached KKT matrix.
            ratio = np.sqrt(max(rp_rel, 1e-30) / max(rd_rel, 1e-30))
            if ratio > _RHO_TRIGGER or ratio < 1.0 / _RHO_TRIGGER:
                new_rho = min(max(rho * ratio, _RHO_MIN), _RHO_MAX)
                if new_rho != rho:
                    rho = new_rho
                    R = _penalty_diag(rho, p, m, opt.admm_rho_eq_scale)
                    Rinv = 1.0 / R
                    Kinv = _factor_inverse(
                        H, A, R, sigma, opt.regularization, stats
                    )

    if not converged and best[4] > 0:
        # Return the best iterate seen (budget stop, cap, or divergence):
        # the residual was evaluated at exactly this iterate, so the
        # returned pair is consistent — and the warm state stays reusable.
        x, z, y, residual, _best_it = best

    stats.substitute_time += (
        perf_counter() - t_sub - (stats.factorize_time - fact_t0)
    )
    stats.substitute_flops += it * matvec_flops

    nu = y[:p].copy()
    lam = np.maximum(y[p:], 0.0)
    slacks = (
        np.maximum(d - J @ x, 0.0) if has_in else np.zeros(0)
    )
    warm_out = None
    if (
        np.all(np.isfinite(x))
        and np.all(np.isfinite(z))
        and np.all(np.isfinite(y))
    ):
        warm_out = {
            "x": x.copy(),
            "z": z.copy(),
            "y": y.copy(),
            "rho": rho,
        }

    return QPResult(
        x=x,
        nu=nu,
        lam=lam,
        slacks=slacks,
        converged=converged,
        iterations=it,
        residual=residual,
        gap_history=gap_history,
        stats=stats,
        budget_exhausted=budget_exhausted,
        warm=warm_out,
    )


# ------------------------------------------------------------------------
# Host-side setup for the batched device loop (repro.firstorder.batch).
#
# All bare-numpy work of the batched path lives HERE, not in batch.py:
# the lint gate (scripts/check_no_bare_numpy.py) keeps the device module
# free of host-pinned array ops, and setup is by construction a one-time
# host materialization (build A/l/u, invert K) before the sync-free loop.
# ------------------------------------------------------------------------


def _admm_refactor_batch(H, A, rho_lane, p, m, eq_scale, sigma, reg):
    """(Re)build the per-lane penalty diagonal and the batched inverse of
    ``K = H + sigma I + A^T R A`` on the host.

    Called once at setup and again whenever the residual-balancing rho
    update fires at a sync checkpoint — the *only* events that touch the
    cached factorization, mirroring the scalar path's discipline.
    Returns ``(Kinv, R, Rinv, ok)`` with ``ok`` flagging lanes whose K
    actually inverted to finite values.
    """
    lanes, n = H.shape[0], H.shape[1]
    msz = p + m
    R = np.repeat(np.asarray(rho_lane, dtype=float)[:, None], msz, axis=1)
    R[:, :p] *= eq_scale
    eye = np.broadcast_to(np.eye(n), (lanes, n, n))
    K = H + (sigma + reg) * eye
    if msz:
        K = K + np.matmul(A.transpose(0, 2, 1), R[:, :, None] * A)
    try:
        Kinv = np.linalg.inv(K)
    except np.linalg.LinAlgError:
        # Per-lane fallback: a singular lane freezes as failed, the rest
        # keep their exact inverse.
        Kinv = np.empty_like(K)
        for lane in range(lanes):
            try:
                Kinv[lane] = np.linalg.inv(K[lane])
            except np.linalg.LinAlgError:
                Kinv[lane] = np.eye(n)
    ok = np.all(np.isfinite(Kinv), axis=(1, 2))
    Kinv[~ok] = np.eye(n)
    with np.errstate(divide="ignore"):
        Rinv = np.where(R > 0.0, 1.0 / np.where(R > 0.0, R, 1.0), 0.0)
    return Kinv, R, Rinv, ok


def _admm_setup_batch(
    H, g, G, b, J, d, opt: QPOptions, rho0=None
) -> dict:
    """Assemble the batched ADMM problem data on the host.

    Returns host numpy arrays only; the caller uploads them once.  Lanes
    with non-finite data are sanitized (identity K, zero constraints) and
    flagged in ``lane_finite`` so the device loop freezes them as failed
    without poisoning batch-mates — same contract as the batched IPM.
    ``rho0`` optionally seeds the per-lane penalty (scalar or ``(B,)``,
    e.g. a warm start's adapted rho).
    """
    H = np.asarray(H, dtype=float)
    g = np.asarray(g, dtype=float)
    lanes, n = g.shape[0], g.shape[1]
    if H.shape != (lanes, n, n):
        raise SolverError(f"H shape {H.shape} != ({lanes}, {n}, {n})")
    if G is None or b is None:
        G = np.zeros((lanes, 0, n))
        b = np.zeros((lanes, 0))
    else:
        G = np.asarray(G, dtype=float)
        b = np.asarray(b, dtype=float)
    if J is None or d is None:
        J = np.zeros((lanes, 0, n))
        d = np.zeros((lanes, 0))
    else:
        J = np.asarray(J, dtype=float)
        d = np.asarray(d, dtype=float)
    p, m = G.shape[1], J.shape[1]
    msz = p + m

    lane_finite = (
        np.all(np.isfinite(H), axis=(1, 2))
        & np.all(np.isfinite(g), axis=1)
        & np.all(np.isfinite(G.reshape(lanes, -1)), axis=1)
        & np.all(np.isfinite(b), axis=1)
        & np.all(np.isfinite(J.reshape(lanes, -1)), axis=1)
        & np.all(np.isfinite(d), axis=1)
    )
    lf3 = lane_finite[:, None, None]
    lf2 = lane_finite[:, None]
    eye = np.broadcast_to(np.eye(n), (lanes, n, n))
    H = np.where(lf3, H, eye)
    g = np.where(lf2, g, 0.0)
    G = np.where(lf3, G, 0.0)
    b = np.where(lf2, b, 0.0)
    J = np.where(lf3, J, 0.0)
    d = np.where(lf2, d, 0.0)

    A = np.concatenate([G, J], axis=1)
    l = np.concatenate(
        [b, np.full((lanes, m), -np.inf)], axis=1
    )
    u = np.concatenate([b, d], axis=1)

    if rho0 is None:
        rho_lane = np.full(lanes, opt.admm_rho)
    else:
        rho_lane = np.broadcast_to(
            np.asarray(rho0, dtype=float), (lanes,)
        ).copy()
        bad_rho = ~np.isfinite(rho_lane) | (rho_lane <= 0.0)
        rho_lane[bad_rho] = opt.admm_rho
    rho_lane = np.clip(rho_lane, _RHO_MIN, _RHO_MAX)

    Kinv, R, Rinv, ok = _admm_refactor_batch(
        H, A, rho_lane, p, m,
        opt.admm_rho_eq_scale, opt.admm_sigma, opt.regularization,
    )
    lane_finite = lane_finite & ok

    return {
        "Kinv": Kinv,
        "A": A,
        "At": A.transpose(0, 2, 1).copy(),
        "H": H,
        "q": g,
        "l": l,
        "u": u,
        "J": J,
        "d": d,
        "R": R,
        "Rinv": Rinv,
        "lane_finite": lane_finite,
        "n": n,
        "p": p,
        "m": m,
        "rho": rho_lane,
    }


def _admm_warm_batch(warm: Optional[dict], lanes: int, n: int, msz: int):
    """Validate a batched warm-start dict (host arrays, all-finite)."""
    if not isinstance(warm, dict):
        return None
    try:
        x = np.asarray(warm["x"], dtype=float)
        z = np.asarray(warm["z"], dtype=float)
        y = np.asarray(warm["y"], dtype=float)
    except (KeyError, TypeError, ValueError):
        return None
    if (
        x.shape != (lanes, n)
        or z.shape != (lanes, msz)
        or y.shape != (lanes, msz)
    ):
        return None
    if not (
        np.all(np.isfinite(x))
        and np.all(np.isfinite(z))
        and np.all(np.isfinite(y))
    ):
        return None
    rho = warm.get("rho")
    if rho is not None:
        try:
            rho = np.broadcast_to(
                np.asarray(rho, dtype=float), (lanes,)
            ).copy()
        except ValueError:
            rho = None
    return {"x": x, "z": z, "y": y, "rho": rho}


def _admm_rho_update_batch(rho_lane, rp_rel, rd_rel, trigger_mask):
    """Host-side per-lane residual-balancing rho update (sync checkpoint).

    Returns ``(new_rho, changed)`` where ``changed`` marks lanes whose rho
    actually moved (those are the lanes whose cached factor is rebuilt).
    """
    ratio = np.sqrt(
        np.maximum(rp_rel, 1e-30) / np.maximum(rd_rel, 1e-30)
    )
    fire = (
        trigger_mask
        & np.isfinite(ratio)
        & ((ratio > _RHO_TRIGGER) | (ratio < 1.0 / _RHO_TRIGGER))
    )
    new_rho = np.clip(rho_lane * ratio, _RHO_MIN, _RHO_MAX)
    new_rho = np.where(fire, new_rho, rho_lane)
    changed = fire & (new_rho != rho_lane)
    return new_rho, changed
