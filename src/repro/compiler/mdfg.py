"""Macro dataflow graph (M-DFG) of the MPC control algorithm (paper §VII).

Node vocabulary follows the paper: elementary / nonlinear operations are
``SCALAR`` nodes; operations defined over a range interval are ``VECTOR``
nodes; group aggregations are ``GROUP`` nodes (internally an array node plus
the aggregation to perform).  On top of these expression-level nodes, the
Program Translator emits *macro kernel* nodes for the structured linear
algebra of the interior-point solver (Cholesky factorizations, triangular
substitutions, matrix products): representing an ``n^3`` factorization op by
op would defeat the purpose of a *macro* DFG, so kernels carry their
parameterized operation mix instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CompilerError
from repro.mpc.linalg import flop_counts_cholesky, flop_counts_substitution

__all__ = ["NodeType", "MDFGNode", "MDFG", "KERNELS", "kernel_op_counts"]


class NodeType:
    INPUT = "INPUT"  # data source (state/input/reference/solver memory)
    CONST = "CONST"
    SCALAR = "SCALAR"  # one elementary/nonlinear operation
    VECTOR = "VECTOR"  # the same operation over `width` independent lanes
    GROUP = "GROUP"  # aggregation (ADD/MUL/MIN/MAX) over `width` operands
    KERNEL = "KERNEL"  # macro linear-algebra kernel


#: supported macro kernels and their parameter names
KERNELS = {
    "cholesky": ("n",),
    "cholesky_banded": ("n", "band"),
    "trsolve": ("n", "nrhs"),
    "trsolve_banded": ("n", "band", "nrhs"),
    "block_outer": ("blocks", "rows", "dim"),
    "matmul": ("m", "n", "k"),
    "matvec": ("m", "n"),
    "axpy": ("n",),
    "dot": ("n",),
}


def kernel_op_counts(kind: str, params: Dict[str, int]) -> Dict[str, int]:
    """Exact primitive-op mix of one macro kernel invocation.

    The banded variants model the sparsity-exploiting structure of stagewise
    MPC solvers (the paper's HPMPC baseline): the KKT matrix of a horizon-N
    problem is block-banded with half-bandwidth ``band ~ 2 nx + nu``, so a
    factorization costs ``~ n band^2 / 2`` multiply-adds instead of ``n^3/3``.
    """
    if kind == "cholesky":
        return flop_counts_cholesky(params["n"])
    if kind == "cholesky_banded":
        n, b = params["n"], params["band"]
        b = min(b, n)
        mac = n * b * (b + 1) // 2
        return {"mul": mac, "add": mac, "div": n * b, "sqrt": n}
    if kind == "trsolve":
        return flop_counts_substitution(params["n"], params.get("nrhs", 1))
    if kind == "trsolve_banded":
        n, b, nrhs = params["n"], params["band"], params.get("nrhs", 1)
        b = min(b, n)
        mac = n * b * nrhs
        return {"mul": mac, "add": mac, "div": n * nrhs}
    if kind == "block_outer":
        # blocks x (rows x dim)^T W (rows x dim) accumulations.
        blocks, rows, dim = params["blocks"], params["rows"], params["dim"]
        mac = blocks * rows * dim * dim
        return {"mul": mac, "add": mac}
    if kind == "matmul":
        m, n, k = params["m"], params["n"], params["k"]
        return {"mul": m * n * k, "add": m * n * (k - 1) if k > 1 else 0}
    if kind == "matvec":
        m, n = params["m"], params["n"]
        return {"mul": m * n, "add": m * (n - 1) if n > 1 else 0}
    if kind == "axpy":
        return {"mul": params["n"], "add": params["n"]}
    if kind == "dot":
        n = params["n"]
        return {"mul": n, "add": n - 1 if n > 1 else 0}
    raise CompilerError(f"unknown kernel {kind!r}")


@dataclass
class MDFGNode:
    """One M-DFG vertex."""

    id: int
    type: str
    #: operation name for SCALAR/VECTOR (add, mul, sin, ...), aggregation
    #: function for GROUP (add, mul, min, max), kernel kind for KERNEL
    op: str = ""
    #: lane count for VECTOR, reduced-operand count for GROUP
    width: int = 1
    #: ids of predecessor nodes
    parents: Tuple[int, ...] = ()
    #: which phase of the control algorithm this node belongs to
    phase: str = ""
    #: kernel parameters (KERNEL nodes only)
    params: Dict[str, int] = field(default_factory=dict)
    #: source variable name (INPUT nodes) or constant value (CONST nodes)
    label: str = ""
    #: how many times this node executes per solver iteration (stage
    #: templates repeat across the horizon)
    repeat: int = 1

    def op_counts(self) -> Dict[str, int]:
        """Primitive-op histogram of ONE execution of this node."""
        if self.type == NodeType.SCALAR:
            return {self.op: 1}
        if self.type == NodeType.VECTOR:
            return {self.op: self.width}
        if self.type == NodeType.GROUP:
            # A width-w aggregation performs w-1 pairwise combines.
            return {self.op: max(self.width - 1, 0)}
        if self.type == NodeType.KERNEL:
            return kernel_op_counts(self.op, self.params)
        return {}


class MDFG:
    """A macro dataflow graph with phase bookkeeping."""

    def __init__(self, name: str = "mdfg"):
        self.name = name
        self.nodes: List[MDFGNode] = []
        self._input_index: Dict[str, int] = {}

    # -- construction -------------------------------------------------------------
    def _add(self, node: MDFGNode) -> int:
        self.nodes.append(node)
        return node.id

    def add_input(self, label: str, phase: str = "") -> int:
        """Add (or reuse) a named data-source node."""
        if label in self._input_index:
            return self._input_index[label]
        node = MDFGNode(
            id=len(self.nodes), type=NodeType.INPUT, label=label, phase=phase
        )
        self._input_index[label] = node.id
        return self._add(node)

    def add_const(self, value: float, phase: str = "") -> int:
        node = MDFGNode(
            id=len(self.nodes), type=NodeType.CONST, label=repr(value), phase=phase
        )
        return self._add(node)

    def add_scalar(self, op: str, parents: Sequence[int], phase: str = "", repeat: int = 1) -> int:
        self._check_parents(parents)
        node = MDFGNode(
            id=len(self.nodes),
            type=NodeType.SCALAR,
            op=op,
            parents=tuple(parents),
            phase=phase,
            repeat=repeat,
        )
        return self._add(node)

    def add_vector(
        self, op: str, width: int, parents: Sequence[int], phase: str = "", repeat: int = 1
    ) -> int:
        if width < 1:
            raise CompilerError(f"vector width must be >= 1, got {width}")
        self._check_parents(parents)
        node = MDFGNode(
            id=len(self.nodes),
            type=NodeType.VECTOR,
            op=op,
            width=width,
            parents=tuple(parents),
            phase=phase,
            repeat=repeat,
        )
        return self._add(node)

    def add_group(
        self, op: str, parents: Sequence[int], phase: str = "", repeat: int = 1
    ) -> int:
        if op not in ("add", "mul", "min", "max"):
            raise CompilerError(
                f"group aggregation must be one of add/mul/min/max, got {op!r}"
            )
        if not parents:
            raise CompilerError("group node needs at least one operand")
        self._check_parents(parents)
        node = MDFGNode(
            id=len(self.nodes),
            type=NodeType.GROUP,
            op=op,
            width=len(parents),
            parents=tuple(parents),
            phase=phase,
            repeat=repeat,
        )
        return self._add(node)

    def add_kernel(
        self,
        kind: str,
        params: Dict[str, int],
        parents: Sequence[int] = (),
        phase: str = "",
        repeat: int = 1,
    ) -> int:
        if kind not in KERNELS:
            raise CompilerError(f"unknown kernel {kind!r}; known: {sorted(KERNELS)}")
        missing = [p for p in KERNELS[kind] if p not in params]
        if missing:
            raise CompilerError(f"kernel {kind!r} missing parameters {missing}")
        self._check_parents(parents)
        node = MDFGNode(
            id=len(self.nodes),
            type=NodeType.KERNEL,
            op=kind,
            parents=tuple(parents),
            phase=phase,
            params=dict(params),
            repeat=repeat,
        )
        return self._add(node)

    def _check_parents(self, parents: Sequence[int]) -> None:
        for pid in parents:
            if not 0 <= pid < len(self.nodes):
                raise CompilerError(f"parent id {pid} does not exist")

    # -- queries ---------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def by_phase(self, phase: str) -> List[MDFGNode]:
        return [n for n in self.nodes if n.phase == phase]

    def phases(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for n in self.nodes:
            if n.phase and n.phase not in seen:
                seen.append(n.phase)
        return tuple(seen)

    def total_op_counts(self, phase: Optional[str] = None) -> Dict[str, int]:
        """Primitive-op histogram per solver iteration (repeats included)."""
        total: Dict[str, int] = {}
        for n in self.nodes:
            if phase is not None and n.phase != phase:
                continue
            for op, count in n.op_counts().items():
                total[op] = total.get(op, 0) + count * n.repeat
        return total

    def topological_order(self) -> List[MDFGNode]:
        """Nodes in dependency order (construction order is already topo
        because parents must exist when a node is added)."""
        return list(self.nodes)

    def validate(self) -> None:
        """Check structural invariants (parent ordering, ids contiguous)."""
        for i, n in enumerate(self.nodes):
            if n.id != i:
                raise CompilerError(f"node id mismatch at position {i}")
            for pid in n.parents:
                if pid >= i:
                    raise CompilerError(
                        f"node {i} depends on later node {pid} (not a DAG)"
                    )

    def __repr__(self) -> str:
        return f"MDFG({self.name!r}, nodes={len(self.nodes)}, phases={self.phases()})"
