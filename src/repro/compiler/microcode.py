"""Interconnect hop microprograms: shift-register bypass patterns (§V).

"Either the flit of data can specify to perform an operation or a preloaded
queue in the hop may contain the schedule for operating on the transiting
data.  A shift register is sufficient for the hops in the RoboX
architecture, in which the interconnect is preprogrammed with a static
schedule and the hops support a single function.  A 0 in the shift register
indicates that the operation will be bypassed and the normal data delivery
is needed.  A 1, on the other hand, engages the functional unit in the hop."

This module expands a :class:`ProgramMap`'s aggregation plans into exactly
those per-hop bit schedules:

* **intra-CC** reductions ride the single-hop neighbor links: the value
  entering hop ``i`` (between CU ``i`` and CU ``i+1`` of the cluster)
  combines with CU ``i+1``'s operand when the bit is 1, producing a systolic
  left-to-right chain;
* **tree-bus** reductions engage the multiply-add units of the tree's
  internal nodes level by level; every level that combines two live partials
  gets a 1, pass-through levels get a 0.

The expansion is what the hardware's shift registers would be preloaded
with; the simulator's aggregation waves are its behavioral equivalent, and
the tests check the two agree on which hops do work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.compiler.mapping import AggregationPlan, ProgramMap
from repro.errors import CompilerError

__all__ = ["HopSchedule", "InterconnectMicrocode", "build_microcode"]


@dataclass
class HopSchedule:
    """The bit schedule preloaded into one hop's shift register.

    ``bits[t]`` is the register state when wave ``t`` transits the hop:
    1 = engage the multiply-add unit, 0 = bypass (plain delivery).
    """

    level: str  # "neighbor" (intra-CC) or "tree" (inter-CC)
    #: cluster id for neighbor hops; tree-node id for tree hops
    location: int
    #: hop index within its cluster chain / tree level
    index: int
    bits: List[int] = field(default_factory=list)

    @property
    def engagements(self) -> int:
        return sum(self.bits)


@dataclass
class InterconnectMicrocode:
    """All hop schedules for one compiled program."""

    neighbor_hops: Dict[Tuple[int, int], HopSchedule] = field(default_factory=dict)
    tree_hops: Dict[int, HopSchedule] = field(default_factory=dict)
    #: aggregation waves in schedule order: (vertex id, function)
    waves: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def total_engagements(self) -> int:
        return sum(h.engagements for h in self.neighbor_hops.values()) + sum(
            h.engagements for h in self.tree_hops.values()
        )

    def hop_utilization(self) -> float:
        """Fraction of (hop, wave) slots whose functional unit engages."""
        hops = list(self.neighbor_hops.values()) + list(self.tree_hops.values())
        slots = sum(len(h.bits) for h in hops)
        return self.total_engagements / slots if slots else 0.0


def build_microcode(program_map: ProgramMap) -> InterconnectMicrocode:
    """Expand the aggregation map into per-hop shift-register schedules.

    Waves are emitted in vertex order (the Controller Compiler's static
    schedule order).  Every neighbor hop of a participating cluster and
    every tree node receives one bit per wave, so all shift registers stay
    in lockstep — hops not involved in a wave shift in a 0 (bypass).
    """
    mc = InterconnectMicrocode()
    cpc = program_map.cus_per_cc
    n_ccs = program_map.n_ccs
    tree_nodes = max(n_ccs - 1, 1)

    # Pre-create schedules so bypass bits exist for uninvolved hops too.
    for cc in range(n_ccs):
        for hop in range(cpc - 1):
            mc.neighbor_hops[(cc, hop)] = HopSchedule("neighbor", cc, hop)
    for node in range(tree_nodes):
        mc.tree_hops[node] = HopSchedule("tree", node, node)

    for vertex in sorted(program_map.aggregation):
        plan = program_map.aggregation[vertex]
        mc.waves.append((vertex, plan.func))
        engaged_neighbor = _neighbor_engagements(plan, cpc)
        engaged_tree = _tree_engagements(plan, cpc, tree_nodes)
        for (cc, hop), sched in mc.neighbor_hops.items():
            sched.bits.append(1 if (cc, hop) in engaged_neighbor else 0)
        for node, sched in mc.tree_hops.items():
            sched.bits.append(1 if node in engaged_tree else 0)
    return mc


def _neighbor_engagements(
    plan: AggregationPlan, cpc: int
) -> set:
    """Neighbor hops whose FU engages for this wave.

    Within each participating cluster, partials flow along the chain toward
    the cluster's lowest participating CU; each hop between two live lanes
    combines, so hop ``i`` (between local CU ``i`` and ``i+1``) engages when
    some participant sits strictly above it.
    """
    engaged = set()
    by_cc: Dict[int, List[int]] = {}
    for cu in plan.cus:
        by_cc.setdefault(cu // cpc, []).append(cu % cpc)
    for cc, locals_ in by_cc.items():
        if len(locals_) < 2:
            continue
        lo, hi = min(locals_), max(locals_)
        for hop in range(lo, hi):
            engaged.add((cc, hop))
    return engaged


def _tree_engagements(
    plan: AggregationPlan, cpc: int, tree_nodes: int
) -> set:
    """Tree-bus nodes whose FU engages for this wave.

    The tree is a balanced binary reduction over cluster leaves; internal
    node ``n`` at level ``l`` engages when both of its subtrees contain at
    least one participating cluster (otherwise the single live value passes
    through).  Nodes are numbered breadth-first.
    """
    if plan.level != "tree_bus":
        return set()
    ccs = sorted({cu // cpc for cu in plan.cus})
    if len(ccs) < 2:
        return set()

    engaged = set()
    # Breadth-first heap numbering over ceil(log2) levels of cluster leaves.
    n_leaves = 1 << math.ceil(math.log2(max(len(set(ccs)), 2)))
    leaf_of = {cc: i for i, cc in enumerate(ccs)}
    live = [False] * n_leaves
    for cc in ccs:
        live[leaf_of[cc]] = True

    node_id = 0
    level = live
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            left = level[i]
            right = level[i + 1] if i + 1 < len(level) else False
            if left and right and node_id < tree_nodes:
                engaged.add(node_id)
            node_id += 1
            nxt.append(left or right)
        level = nxt
    return engaged
