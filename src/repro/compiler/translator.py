"""Program Translator: MPC problem -> macro dataflow graph (paper §VII).

"In RoboX, the solver and discretization method are fixed, allowing us to
express it as an invariant yet parameterized code" — the translator stitches
together:

* expression-level subgraphs for the robot-specific computation (dynamics,
  their Jacobians, penalty gradients, constraint rows), built by walking the
  symbolic DAGs that the transcription layer compiled, with ``repeat`` set to
  how many horizon stages execute each template per solver iteration, and
* macro kernel nodes for the solver-template linear algebra of Eq. 6 (KKT
  assembly, Cholesky factorizations, forward/backward substitutions), whose
  sizes are fully determined by the horizon and the model/task dimensions.

Balanced all-``add`` subtrees of at least ``group_threshold`` leaves are
recognized as GROUP aggregation nodes — these are what the Controller
Compiler maps onto the compute-enabled interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.mdfg import MDFG, NodeType
from repro.errors import CompilerError
from repro.mpc.transcription import TranscribedProblem
from repro.symbolic import Call, Const, Expr, Var, topological_order

__all__ = ["Translator", "TranslationInfo", "translate"]


@dataclass
class TranslationInfo:
    """Summary of a translation (consumed by reports and cost models)."""

    n_nodes: int
    phases: Tuple[str, ...]
    op_counts_per_phase: Dict[str, Dict[str, int]]
    group_nodes: int
    kernel_nodes: int

    @property
    def total_ops(self) -> int:
        return sum(
            count
            for per_phase in self.op_counts_per_phase.values()
            for count in per_phase.values()
        )


class Translator:
    """Builds the M-DFG for one transcribed MPC problem.

    Args:
        problem: the transcribed MPC problem.
        group_threshold: minimum leaf count for an all-add subtree to become
            a GROUP aggregation node (mapped to the interconnect).
        qp_iterations: assumed interior-point iterations per control step —
            scales the solver-template kernels relative to the per-iteration
            derivative evaluation (both execute every IPM iteration in the
            SQP scheme, so this only matters for whole-control-step totals).
    """

    def __init__(
        self,
        problem: TranscribedProblem,
        group_threshold: int = 3,
    ):
        self.problem = problem
        self.group_threshold = group_threshold

    # ----------------------------------------------------------------------------
    def translate(self) -> MDFG:
        p = self.problem
        g = MDFG(name=f"{p.model.name}.{p.task.name}.N{p.N}")
        N = p.N

        # -- expression-level phases (the robot-specific computation) ----------
        self._add_expression_phase(g, p._F.exprs, "dynamics", repeat=N)
        self._add_expression_phase(
            g, p._A.exprs + p._B.exprs, "dynamics_jacobian", repeat=N
        )
        self._add_expression_phase(
            g, p._L_grad.exprs + p._P_run_jac.exprs, "cost", repeat=N
        )
        self._add_expression_phase(
            g, p._Phi_grad.exprs + p._P_term_jac.exprs, "cost_terminal", repeat=1
        )
        constraint_exprs = tuple(p._h_state.exprs) + tuple(p._h_state_jac.exprs)
        self._add_expression_phase(
            g, constraint_exprs, "constraints", repeat=max(N - 1, 0)
        )
        input_rows = tuple(p._h_input.exprs) + tuple(p._h_input_jac.exprs)
        self._add_expression_phase(g, input_rows, "constraints_input", repeat=N)
        term_rows = tuple(p._h_term.exprs) + tuple(p._h_term_jac.exprs)
        self._add_expression_phase(g, term_rows, "constraints_terminal", repeat=1)

        # -- solver-template macro kernels (Eq. 6, per IPM iteration) -----------
        self._add_solver_template(g)
        g.validate()
        return g

    # ----------------------------------------------------------------------------
    def _add_expression_phase(
        self, g: MDFG, exprs: Tuple[Expr, ...], phase: str, repeat: int
    ) -> None:
        if not exprs or repeat <= 0:
            return
        # Skip degenerate single-constant placeholders (empty row sets).
        if len(exprs) == 1 and isinstance(exprs[0], Const):
            return
        order = topological_order(list(exprs))
        outputs = set(exprs)

        # Consumer map (over distinct DAG nodes).
        consumers: Dict[Expr, List[Expr]] = {n: [] for n in order}
        for node in order:
            for child in node.children():
                consumers[child].append(node)

        def is_add(n: Expr) -> bool:
            return isinstance(n, Call) and n.op.name == "add"

        # Structural classification of add nodes:
        #   maximal root — an add that is an output or has a non-add consumer;
        #     becomes a GROUP if its pure-add subtree has >= threshold leaves,
        #     else a plain SCALAR add;
        #   interior     — an add strictly inside some root's subtree; folded
        #     into the enclosing GROUP unless a SCALAR root references it
        #     directly ("materialized" fixup below).
        is_root = {
            n: (n in outputs or any(not is_add(c) for c in consumers[n]))
            for n in order
            if is_add(n)
        }
        materialized: set = set()

        def leaves_of(n: Expr) -> List[Expr]:
            if is_add(n) and not is_root[n] and n not in materialized:
                return leaves_of(n.args[0]) + leaves_of(n.args[1])
            return [n]

        kind: Dict[Expr, str] = {}
        # Classify roots; SCALAR roots force their direct add-args to
        # materialize, which may cascade (hence the fixpoint loop).
        changed = True
        while changed:
            changed = False
            for node in order:
                if not is_add(node):
                    continue
                if is_root[node]:
                    n_leaves = len(leaves_of(node.args[0])) + len(
                        leaves_of(node.args[1])
                    )
                    new_kind = (
                        "group" if n_leaves >= self.group_threshold else "scalar"
                    )
                    if kind.get(node) != new_kind:
                        kind[node] = new_kind
                        changed = True
                    if new_kind == "scalar":
                        for arg in node.args:
                            if (
                                is_add(arg)
                                and not is_root[arg]
                                and arg not in materialized
                            ):
                                materialized.add(arg)
                                changed = True
                elif node in materialized:
                    # Treated like a scalar root: a 2-operand add whose args
                    # must exist.
                    if kind.get(node) != "scalar":
                        kind[node] = "scalar"
                        changed = True
                    for arg in node.args:
                        if is_add(arg) and not is_root[arg] and arg not in materialized:
                            materialized.add(arg)
                            changed = True
                else:
                    if kind.get(node) != "subsumed":
                        kind[node] = "subsumed"
                        changed = True

        node_of: Dict[Expr, int] = {}
        for node in order:
            if isinstance(node, Const):
                node_of[node] = g.add_const(node.value, phase)
            elif isinstance(node, Var):
                node_of[node] = g.add_input(node.name, phase)
            elif isinstance(node, Call):
                k = kind.get(node)
                if k == "subsumed":
                    continue
                if k == "group":
                    parents = [
                        node_of[leaf]
                        for leaf in leaves_of(node.args[0]) + leaves_of(node.args[1])
                    ]
                    node_of[node] = g.add_group("add", parents, phase, repeat)
                else:
                    parents = [node_of[a] for a in node.args]
                    node_of[node] = g.add_scalar(
                        node.op.name, parents, phase, repeat
                    )
            else:  # pragma: no cover
                raise CompilerError(f"unexpected expression node {node!r}")

    # ----------------------------------------------------------------------------
    def _add_solver_template(self, g: MDFG) -> None:
        """Macro kernels of one Newton/IPM iteration on Eq. 6.

        The KKT system is *block-banded* in the stage ordering (only
        neighboring stages couple through the dynamics defects), so the
        factorization kernels are the banded variants with half-bandwidth
        ``~ 2 nx + nu`` — the sparsity-exploiting structure of the HPMPC
        solver the paper builds on.  The Mehrotra scheme performs two
        right-hand-side solves per factorization (predictor + corrector).
        """
        p = self.problem
        nz, n_eq, m = p.nz, p.n_eq, p.n_ineq
        nxu = p.nx + p.nu
        band = 2 * p.nx + p.nu
        phase = "solver"

        # KKT assembly: Phi = H + (J^T W) J is block-diagonal per stage; the
        # equality system stays banded.  Rows per stage = inequality rows.
        if m:
            rows_per_stage = max(1, m // max(p.N, 1))
            g.add_kernel(
                "block_outer",
                {"blocks": p.N + 1, "rows": rows_per_stage, "dim": nxu},
                phase=phase,
            )
            # J^T(...) — J is block-sparse: each row has at most nxu nonzeros.
            g.add_kernel("matvec", {"m": m, "n": nxu}, phase=phase)
        # Factor the banded Phi and push G^T (banded itself) + rhs through.
        g.add_kernel("cholesky_banded", {"n": nz, "band": band}, phase=phase)
        g.add_kernel(
            "trsolve_banded", {"n": nz, "band": band, "nrhs": 2 * band}, phase=phase
        )
        g.add_kernel(
            "trsolve_banded", {"n": nz, "band": band, "nrhs": 2 * band}, phase=phase
        )
        # Stage-structured Schur complement (block tridiagonal, band ~ 2 nx).
        g.add_kernel(
            "cholesky_banded", {"n": n_eq, "band": 2 * p.nx}, phase=phase
        )
        g.add_kernel(
            "trsolve_banded", {"n": n_eq, "band": 2 * p.nx, "nrhs": 2}, phase=phase
        )
        g.add_kernel(
            "trsolve_banded", {"n": n_eq, "band": 2 * p.nx, "nrhs": 2}, phase=phase
        )
        # Recover dz (banded G^T application) and the vector updates.
        g.add_kernel(
            "block_outer", {"blocks": p.N, "rows": p.nx, "dim": nxu}, phase=phase
        )
        g.add_kernel("axpy", {"n": nz}, phase=phase)
        if m:
            g.add_kernel("matvec", {"m": m, "n": nxu}, phase=phase)  # J dz (blocked)
            g.add_kernel("axpy", {"n": m}, phase=phase)  # slack update
            g.add_kernel("axpy", {"n": m}, phase=phase)  # dual update
            g.add_kernel("dot", {"n": m}, phase=phase)  # duality gap

    # ----------------------------------------------------------------------------
    def info(self, g: Optional[MDFG] = None) -> TranslationInfo:
        if g is None:
            g = self.translate()
        per_phase = {ph: g.total_op_counts(ph) for ph in g.phases()}
        return TranslationInfo(
            n_nodes=len(g),
            phases=g.phases(),
            op_counts_per_phase=per_phase,
            group_nodes=sum(1 for n in g.nodes if n.type == NodeType.GROUP),
            kernel_nodes=sum(1 for n in g.nodes if n.type == NodeType.KERNEL),
        )


def translate(problem: TranscribedProblem, group_threshold: int = 3) -> MDFG:
    """Convenience wrapper: build the M-DFG for ``problem``."""
    return Translator(problem, group_threshold).translate()
