"""Controller Compiler, stage 2: static scheduling and cycle estimation.

Turns the :class:`ProgramMap` + M-DFG into the three static schedules the
architecture consumes (compute, interconnect, memory) and computes the cycle
cost of one solver iteration under an explicit machine model:

**Machine model** (matches §V and Table IV):

* ``n_cus`` CUs in clusters of ``cus_per_cc``; every CU issues one ALU
  operation per cycle through a 3-stage pipeline (dependent ops see the
  3-cycle latency, independent ops pipeline at II=1).
* One shared bus per CC (one transfer per cycle, multicast counts once) and
  compute-enabled single-hop links between neighboring CUs.
* A compute-enabled tree-bus across CCs: a cross-cluster aggregation of
  ``w`` partials costs ``ceil(log2)`` hop levels when the interconnect ALUs
  are enabled; without them the same reduction lowers to CU adds plus bus
  transfers (the Figure 10 ablation).
* A memory access engine streaming ``bandwidth_bytes_per_cycle`` from
  off-chip memory, overlapped with compute (per-phase cost is
  ``max(compute, memory)``); data resident in the 512 KB on-chip SRAM is
  free, larger working sets stream.

**Phase cost.** For an expression phase (template repeated ``repeat`` times
per iteration — instances are independent across horizon stages, so they
pipeline), the cycle cost is the classic list-scheduling bound

    max(work / CUs, comm / buses, critical_path x latency)

and the solver's macro kernels use per-kernel closed forms with their serial
bottlenecks (a Cholesky's column recurrence, a triangular solve's row
recurrence) modeled explicitly — these produce the CU-count plateau of
Figure 11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.isa import (
    AggFunction,
    CommInstr,
    ComputeInstr,
    MemInstr,
    Namespace,
)
from repro.compiler.mapping import ProgramMap, map_mdfg
from repro.compiler.mdfg import MDFG, MDFGNode, NodeType, kernel_op_counts
from repro.errors import ScheduleError

__all__ = ["MachineConfig", "PhaseCost", "StaticSchedule", "Scheduler"]

#: pipeline depth of a CU (access / compute / write, §V)
_CU_LATENCY = 3
#: cycles for one hop of the shared bus
_BUS_HOP = 1
#: extra cycles per tree-bus level (hop + register)
_TREE_HOP = 1
#: bytes per data word (32-bit fixed point)
_WORD = 4


@dataclass(frozen=True)
class MachineConfig:
    """RoboX accelerator design point (defaults = Table IV)."""

    n_cus: int = 256
    cus_per_cc: int = 8
    frequency_ghz: float = 1.0
    #: peak off-chip bandwidth, bytes per cycle (128 Gb/s at 1 GHz = 16 B/c)
    bandwidth_bytes_per_cycle: float = 16.0
    onchip_sram_bytes: int = 512 * 1024
    compute_enabled_interconnect: bool = True
    total_power_watts: float = 3.4
    #: achieved fraction of peak MACs inside the solver kernels (load
    #: imbalance, bank conflicts, pipeline bubbles around the recurrences)
    kernel_efficiency: float = 0.6

    def __post_init__(self):
        if self.n_cus < 1:
            raise ScheduleError("n_cus must be >= 1")
        if self.cus_per_cc < 1:
            raise ScheduleError("cus_per_cc must be >= 1")

    @property
    def n_ccs(self) -> int:
        return max(1, math.ceil(self.n_cus / self.cus_per_cc))

    @property
    def tree_depth(self) -> int:
        return max(1, math.ceil(math.log2(max(self.n_ccs, 2))))


@dataclass
class PhaseCost:
    """Cycle breakdown of one phase of a solver iteration."""

    phase: str
    compute_cycles: float
    comm_cycles: float
    memory_cycles: float
    critical_path: float

    @property
    def cycles(self) -> float:
        # Compute and communication are overlapped by the static schedule up
        # to the resource bound; memory streaming overlaps both.
        return max(
            max(self.compute_cycles, self.comm_cycles, self.critical_path),
            self.memory_cycles,
        )


@dataclass
class StaticSchedule:
    """The compiled artifact: instruction streams + cycle model."""

    machine: MachineConfig
    phase_costs: List[PhaseCost] = field(default_factory=list)
    #: encoded 32-bit words per engine
    compute_stream: List[int] = field(default_factory=list)
    comm_stream: List[int] = field(default_factory=list)
    memory_stream: List[int] = field(default_factory=list)
    #: the operation/data/communication/aggregation maps this was built from
    program_map: Optional[ProgramMap] = None

    @property
    def cycles_per_iteration(self) -> float:
        return sum(pc.cycles for pc in self.phase_costs)

    def seconds_per_iteration(self) -> float:
        return self.cycles_per_iteration / (self.machine.frequency_ghz * 1e9)

    def phase(self, name: str) -> PhaseCost:
        for pc in self.phase_costs:
            if pc.phase == name:
                return pc
        raise ScheduleError(f"no phase {name!r} in schedule")

    @property
    def instruction_count(self) -> int:
        return (
            len(self.compute_stream)
            + len(self.comm_stream)
            + len(self.memory_stream)
        )


class Scheduler:
    """Builds the static schedule for one M-DFG on one machine config."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine

    # ------------------------------------------------------------------------------
    def schedule(self, graph: MDFG, program_map: Optional[ProgramMap] = None) -> StaticSchedule:
        m = self.machine
        if program_map is None:
            program_map = map_mdfg(graph, m.n_cus, m.cus_per_cc)
        sched = StaticSchedule(machine=m, program_map=program_map)

        for phase in graph.phases():
            nodes = graph.by_phase(phase)
            expr_nodes = [
                n
                for n in nodes
                if n.type in (NodeType.SCALAR, NodeType.VECTOR, NodeType.GROUP)
            ]
            kernel_nodes = [n for n in nodes if n.type == NodeType.KERNEL]
            if expr_nodes:
                sched.phase_costs.append(
                    self._cost_expression_phase(graph, phase, expr_nodes)
                )
            for kn in kernel_nodes:
                sched.phase_costs.append(self._cost_kernel(kn))

        self._emit_streams(graph, program_map, sched)
        return sched

    # -- expression-phase cost ------------------------------------------------------
    def _cost_expression_phase(
        self, graph: MDFG, phase: str, nodes: List[MDFGNode]
    ) -> PhaseCost:
        m = self.machine
        repeat = max(n.repeat for n in nodes)

        # ALU work: one op per SCALAR, `width` per VECTOR; GROUP work runs in
        # the interconnect when enabled, on the CUs when not (Fig. 10).
        alu_ops = 0.0
        comm_ops = 0.0
        agg_cycles = 0.0
        for n in nodes:
            if n.type == NodeType.SCALAR:
                alu_ops += n.repeat
            elif n.type == NodeType.VECTOR:
                alu_ops += n.width * n.repeat
            elif n.type == NodeType.GROUP:
                w = n.width
                if m.compute_enabled_interconnect:
                    # Partials reduce in-flight: neighbor hops chain inside a
                    # CC, the tree-bus combines across CCs.  Each CC's hops
                    # form an independent reduction resource, so waves from
                    # different horizon stages proceed concurrently.
                    agg_cycles += (
                        math.ceil(math.log2(max(w, 2))) * _TREE_HOP * n.repeat
                    ) / m.n_ccs
                else:
                    # Lowered to CU adds + explicit gather/scatter transfers
                    # over the shared buses.
                    alu_ops += (w - 1) * n.repeat
                    comm_ops += 2 * (w - 1) * n.repeat

        # Cross-CU operand traffic recorded by the mapper applies per repeat.
        # (A phase's share is approximated by its fraction of the ops.)
        comm_ops += sum(1 for n in nodes if n.type == NodeType.SCALAR) * 0.3 * repeat

        # Dependence depth of one template instance (instances pipeline).
        depth = self._phase_depth(graph, nodes)

        compute = alu_ops / m.n_cus
        comm = comm_ops / m.n_ccs
        critical = depth * _CU_LATENCY + (
            agg_cycles / max(repeat, 1)
        )  # one instance's aggregation latency
        # Memory: stream per-stage operands (inputs) and results once per
        # repeat; small stage working sets stay on chip, so only a fraction
        # touches DRAM.  Counted precisely in the solver kernels where the
        # big matrices live; here the traffic is the stage I/O.
        n_io = sum(1 for n in nodes if n.type == NodeType.SCALAR) // 4 + 1
        memory = (n_io * repeat * _WORD) / m.bandwidth_bytes_per_cycle

        # Aggregation waves occupy the (single) tree-bus resource serially.
        comm = max(comm, agg_cycles)
        return PhaseCost(
            phase=phase,
            compute_cycles=compute,
            comm_cycles=comm,
            memory_cycles=memory,
            critical_path=critical,
        )

    def _phase_depth(self, graph: MDFG, nodes: List[MDFGNode]) -> int:
        ids = {n.id for n in nodes}
        depth: Dict[int, int] = {}
        longest = 0
        for n in nodes:  # construction order is topological
            d = 1 + max(
                (depth.get(pid, 0) for pid in n.parents if pid in ids), default=0
            )
            depth[n.id] = d
            longest = max(longest, d)
        return longest

    # -- kernel cost ---------------------------------------------------------------------
    def _cost_kernel(self, node: MDFGNode) -> PhaseCost:
        m = self.machine
        counts = kernel_op_counts(node.op, node.params)
        macs = counts.get("mul", 0) + counts.get("add", 0)
        divs = counts.get("div", 0)
        sqrts = counts.get("sqrt", 0)
        p = node.params

        if node.op in ("cholesky", "cholesky_banded"):
            n = p["n"]
            band = min(p.get("band", n), n)
            # Column recurrence: each of the n columns has a serial
            # sqrt+divide step; the per-column update only exposes
            # ~band^2/2 parallel MACs, so wide machines hit the recurrence.
            per_column_par = max(1.0, min(m.n_cus, band * band / 2.0))
            critical = n * (_CU_LATENCY + 2)
            compute = macs / per_column_par + sqrts
            if not m.compute_enabled_interconnect:
                # Column dot-product reductions fall back onto the CUs and
                # pay gather/scatter round trips over the shared buses.
                compute *= 1.55
                critical *= 1.4
        elif node.op in ("trsolve", "trsolve_banded"):
            n, nrhs = p["n"], p.get("nrhs", 1)
            band = min(p.get("band", n), n)
            # Row recurrence serial in n; parallelism = band x nrhs per row.
            per_row_par = max(1.0, min(m.n_cus, band * nrhs))
            critical = n * _CU_LATENCY
            compute = macs / per_row_par
            if not m.compute_enabled_interconnect:
                compute *= 1.55
                critical *= 1.4
        elif node.op == "block_outer":
            compute = macs / m.n_cus
            dim = p["dim"]
            if m.compute_enabled_interconnect:
                critical = math.ceil(math.log2(max(dim, 2))) * _TREE_HOP + _CU_LATENCY
            else:
                compute *= 1.55
                critical = math.ceil(math.log2(max(dim, 2))) * 2 * _CU_LATENCY
        elif node.op == "matmul":
            kk = p["k"]
            compute = macs / m.n_cus
            if m.compute_enabled_interconnect:
                # Inner-product reductions ride the interconnect.
                critical = math.ceil(math.log2(max(kk, 2))) * _TREE_HOP + _CU_LATENCY
            else:
                compute *= 1.55  # reduction adds execute on the CUs
                critical = math.ceil(math.log2(max(kk, 2))) * 2 * _CU_LATENCY
        else:  # matvec / axpy / dot
            compute = macs / m.n_cus
            width = p.get("n", p.get("m", 1))
            if m.compute_enabled_interconnect:
                critical = math.ceil(math.log2(max(width, 2))) * _TREE_HOP + _CU_LATENCY
            else:
                compute *= 1.55
                critical = math.ceil(math.log2(max(width, 2))) * 2 * _CU_LATENCY

        # Memory streaming: operand matrices beyond the SRAM stream from
        # DRAM.  Bytes touched ~ one read of each operand + one write of the
        # result per kernel invocation.
        touched = self._kernel_bytes(node)
        resident = min(touched, m.onchip_sram_bytes)
        streamed = max(touched - resident, 0) + 0.1 * resident
        memory = streamed / m.bandwidth_bytes_per_cycle

        compute /= m.kernel_efficiency
        # Operand staging over the CC buses; banded/blocked kernels keep
        # operands CC-local, so only a fraction of MACs cause bus traffic.
        comm = macs / (m.n_ccs * 8.0)
        return PhaseCost(
            phase=f"solver:{node.op}",
            compute_cycles=compute * node.repeat,
            comm_cycles=comm * node.repeat,
            memory_cycles=memory * node.repeat,
            critical_path=critical * node.repeat,
        )

    def _kernel_bytes(self, node: MDFGNode) -> float:
        p = node.params
        if node.op == "cholesky":
            return p["n"] * p["n"] * _WORD
        if node.op == "cholesky_banded":
            return p["n"] * min(p["band"], p["n"]) * _WORD
        if node.op == "trsolve":
            return (p["n"] * p["n"] / 2 + p["n"] * p.get("nrhs", 1)) * _WORD
        if node.op == "trsolve_banded":
            return (
                p["n"] * min(p["band"], p["n"]) + p["n"] * p.get("nrhs", 1)
            ) * _WORD
        if node.op == "block_outer":
            return p["blocks"] * (p["rows"] * p["dim"] + p["dim"] * p["dim"]) * _WORD
        if node.op == "matmul":
            return (
                p["m"] * p["k"] + p["k"] * p["n"] + p["m"] * p["n"]
            ) * _WORD
        if node.op == "matvec":
            return (p["m"] * p["n"] + p["n"] + p["m"]) * _WORD
        return 2 * p.get("n", 1) * _WORD

    # -- instruction stream emission ----------------------------------------------------
    def _emit_streams(
        self, graph: MDFG, pm: ProgramMap, sched: StaticSchedule
    ) -> None:
        """Emit representative encoded streams for the three engines.

        One compute instruction per mapped op (queue form), one comm
        instruction per communication-map entry and per aggregation, and a
        load/store pair per INPUT/output region.  These streams are what the
        accelerator simulator executes.
        """
        ns_cycle = [Namespace.STATE, Namespace.INPUT, Namespace.GRADIENT, Namespace.INTERM]
        for cu, ops in enumerate(pm.operations):
            for i, node_id in enumerate(ops):
                node = graph.nodes[node_id]
                op = node.op if node.op in ("add", "sub", "mul", "div") else node.op
                instr = ComputeInstr(
                    function=op,
                    dest_ns=Namespace.INTERM,
                    src1_ns=ns_cycle[i % len(ns_cycle)],
                    src1_index=i % 8,
                    src2_ns=Namespace.INTERM,
                    src2_index=(i + 1) % 8,
                    vector=(node.type == NodeType.VECTOR),
                    repeat=min(node.width, 63) if node.type == NodeType.VECTOR else 0,
                )
                sched.compute_stream.append(instr.encode())

        for (src, _dst), dests in pm.communication.items():
            src_cu = pm.placement[src]
            for dest in dests:
                instr = CommInstr(
                    kind="unicast",
                    src_cu=src_cu % pm.cus_per_cc,
                    src_cc=min(pm.cc_of(src_cu), 31),
                    dest_cu=dest % pm.cus_per_cc,
                    dest_cc=min(pm.cc_of(dest), 31),
                )
                sched.comm_stream.append(instr.encode())

        for plan in pm.aggregation.values():
            kind = "cu_agg" if plan.level == "intra_cc" else "cc_agg"
            first = plan.cus[0]
            sched.comm_stream.append(
                CommInstr(
                    kind=kind,
                    src_cu=first % pm.cus_per_cc,
                    src_cc=min(pm.cc_of(first), 31),
                    mask=min((1 << min(plan.width, 8)) - 1, 0xFF),
                    agg=plan.func,
                ).encode()
            )

        # Memory schedule: one burst load per 16 inputs, final store, EOC.
        n_inputs = sum(1 for n in graph.nodes if n.type == NodeType.INPUT)
        offset = 0
        for _ in range(max(1, n_inputs // 16)):
            sched.memory_stream.append(
                MemInstr(
                    kind="load",
                    namespace=Namespace.STATE,
                    offset=offset % (1 << 16),
                    burst=16,
                ).encode()
            )
            offset += 16
        sched.memory_stream.append(
            MemInstr(kind="store", namespace=Namespace.GRADIENT, burst=16).encode()
        )
        sched.memory_stream.append(MemInstr(kind="end").encode())
