"""The RoboX instruction set architecture (paper §VI, Table II).

All instructions are 32 bits and split into three categories — compute,
communication, and memory — each with its own opcode space, mirroring the
three statically scheduled engines of the architecture (CUs, interconnect,
memory access engine).  Namespaces organize operand storage (paper §VI):

    shared:        INPUT, STATE, GRADIENT, HESSIAN
    compute/comm:  INTERM, LEFT_NEIGHBOR, RIGHT_NEIGHBOR
    memory:        REFERENCE, INSTRUCTION

Encodings follow Table II's field structure: a 3-bit major opcode, function
/ namespace / index / mask fields below it.  (The table in the paper is a
compressed layout figure; this module defines one concrete, self-consistent
bit assignment per instruction kind and verifies round-tripping in tests.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ISAError

__all__ = [
    "Namespace",
    "AluFunction",
    "AggFunction",
    "ComputeInstr",
    "CommInstr",
    "MemInstr",
    "encode",
    "decode",
]


class Namespace:
    """Operand namespaces (3-bit field)."""

    INPUT = 0
    STATE = 1
    GRADIENT = 2
    HESSIAN = 3
    INTERM = 4
    LEFT_NEIGHBOR = 5
    RIGHT_NEIGHBOR = 6
    REFERENCE = 7  # memory instructions only
    INSTRUCTION = 4  # memory instructions reuse the compute-local slot

    NAMES = {
        0: "INPUT",
        1: "STATE",
        2: "GRADIENT",
        3: "HESSIAN",
        4: "INTERM",
        5: "LEFT_NEIGHBOR",
        6: "RIGHT_NEIGHBOR",
        7: "REFERENCE",
    }


class AluFunction:
    """CU ALU functions (4-bit field): the DSL's elementary + nonlinear ops."""

    ADD = 0
    SUB = 1
    MUL = 2
    DIV = 3
    SIN = 4
    COS = 5
    TAN = 6
    ASIN = 7
    ACOS = 8
    ATAN = 9
    EXP = 10
    LOG = 11
    SQRT = 12
    TANH = 13
    NEG = 14
    MOV = 15

    BY_NAME = {
        "add": ADD,
        "sub": SUB,
        "mul": MUL,
        "div": DIV,
        "sin": SIN,
        "cos": COS,
        "tan": TAN,
        "asin": ASIN,
        "acos": ACOS,
        "atan": ATAN,
        "exp": EXP,
        "log": LOG,
        "sqrt": SQRT,
        "tanh": TANH,
        "neg": NEG,
        "mov": MOV,
        "pow": MUL,  # pow lowers to repeated multiplication
    }
    NAMES = {v: k for k, v in BY_NAME.items() if k != "pow"}


class AggFunction:
    """Compute-enabled interconnect aggregation functions (2-bit field)."""

    ADD = 0
    MUL = 1
    MIN = 2
    MAX = 3

    BY_NAME = {"add": ADD, "mul": MUL, "min": MIN, "max": MAX}
    NAMES = {v: k for k, v in BY_NAME.items()}


# -- instruction dataclasses ----------------------------------------------------------

# Compute opcodes (bits 31-29)
_OP_SCALAR_QUEUE = 0
_OP_VECTOR_QUEUE = 1
_OP_SCALAR_IMM = 2
_OP_VECTOR_IMM = 3

# Communication opcodes
_OP_UNICAST = 0
_OP_CU_MULTICAST = 2
_OP_CC_MULTICAST = 3
_OP_BROADCAST = 4
_OP_CU_AGG = 5
_OP_CC_AGG = 6

# Memory opcodes
_OP_LOAD = 0
_OP_STORE = 1
_OP_SET_BLOCK = 2
_OP_END_OF_CODE = 7


def _check(value: int, bits: int, what: str) -> int:
    if not 0 <= value < (1 << bits):
        raise ISAError(f"{what}={value} does not fit in {bits} bits")
    return value


@dataclass(frozen=True)
class ComputeInstr:
    """A CU/CC compute instruction.

    Layout (32 bits)::

        [31:29] opcode   (scalar/vector x queue/immediate)
        [28:25] function (AluFunction)
        [24:22] dest namespace
        [21:19] src1 namespace     | vector ops: [21:19] repeat-hi
        [18:16] src1 index (top-8 queue slots)
        [15]    src1 pop
        [14:12] src2 namespace (queue form)
        [11:9]  src2 index
        [8]     src2 pop
        [7:0]   immediate (imm form) / repeat count (vector form)
    """

    function: str
    dest_ns: int
    src1_ns: int
    src1_index: int = 0
    src1_pop: bool = False
    src2_ns: int = 0
    src2_index: int = 0
    src2_pop: bool = False
    vector: bool = False
    immediate: Optional[int] = None  # 8-bit unsigned
    repeat: int = 0  # vector repeat field

    def encode(self) -> int:
        if self.function not in AluFunction.BY_NAME:
            raise ISAError(f"unknown ALU function {self.function!r}")
        imm_form = self.immediate is not None
        opcode = {
            (False, False): _OP_SCALAR_QUEUE,
            (True, False): _OP_VECTOR_QUEUE,
            (False, True): _OP_SCALAR_IMM,
            (True, True): _OP_VECTOR_IMM,
        }[(self.vector, imm_form)]
        word = opcode << 29
        word |= _check(AluFunction.BY_NAME[self.function], 4, "function") << 25
        word |= _check(self.dest_ns, 3, "dest_ns") << 22
        word |= _check(self.src1_ns, 3, "src1_ns") << 19
        word |= _check(self.src1_index, 3, "src1_index") << 16
        word |= (1 << 15) if self.src1_pop else 0
        if imm_form:
            word |= _check(self.immediate, 8, "immediate")
            if self.vector:
                # Immediate occupies [7:0]; the repeat count uses the free
                # src2 field bits [14:9] in the immediate form.
                word |= _check(self.repeat, 6, "repeat") << 9
        else:
            word |= _check(self.src2_ns, 3, "src2_ns") << 12
            word |= _check(self.src2_index, 3, "src2_index") << 9
            word |= (1 << 8) if self.src2_pop else 0
            if self.vector:
                word |= _check(self.repeat, 8, "repeat")
        return word


@dataclass(frozen=True)
class CommInstr:
    """An interconnect instruction (transfer or in-network aggregation).

    Layout (32 bits)::

        [31:29] opcode  (unicast / multicasts / broadcast / aggregations)
        [28:26] source CU (within its CC)
        [25:21] source CC
        [20:13] destination mask (CU mask for CU-multicast, CC mask for
                CC-multicast, CU+CC for unicast)
        [12:10] destination CU (unicast)
        [9:5]   destination CC (unicast)
        [4:3]   aggregation function (AggFunction)
        [2:0]   reserved
    """

    kind: str  # unicast | cu_multicast | cc_multicast | broadcast | cu_agg | cc_agg
    src_cu: int = 0
    src_cc: int = 0
    dest_cu: int = 0
    dest_cc: int = 0
    mask: int = 0
    agg: str = "add"

    _OPCODES = {
        "unicast": _OP_UNICAST,
        "cu_multicast": _OP_CU_MULTICAST,
        "cc_multicast": _OP_CC_MULTICAST,
        "broadcast": _OP_BROADCAST,
        "cu_agg": _OP_CU_AGG,
        "cc_agg": _OP_CC_AGG,
    }
    _KINDS = {v: k for k, v in _OPCODES.items()}

    def encode(self) -> int:
        if self.kind not in self._OPCODES:
            raise ISAError(f"unknown communication kind {self.kind!r}")
        word = self._OPCODES[self.kind] << 29
        word |= _check(self.src_cu, 3, "src_cu") << 26
        word |= _check(self.src_cc, 5, "src_cc") << 21
        word |= _check(self.mask, 8, "mask") << 13
        word |= _check(self.dest_cu, 3, "dest_cu") << 10
        word |= _check(self.dest_cc, 5, "dest_cc") << 5
        word |= _check(AggFunction.BY_NAME[self.agg], 2, "agg") << 3
        return word


@dataclass(frozen=True)
class MemInstr:
    """A memory access engine instruction.

    Layout (32 bits)::

        [31:29] opcode  (load / store / set-block / end-of-code)
        [28:26] namespace
        [25:10] offset within the current block (16 bits)
        [9:5]   shift amount (data alignment, §VI)
        [4:0]   burst length - 1 / block number (set-block)
    """

    kind: str  # load | store | set_block | end
    namespace: int = 0
    offset: int = 0
    shift: int = 0
    burst: int = 1
    block: int = 0

    _OPCODES = {
        "load": _OP_LOAD,
        "store": _OP_STORE,
        "set_block": _OP_SET_BLOCK,
        "end": _OP_END_OF_CODE,
    }
    _KINDS = {v: k for k, v in _OPCODES.items()}

    def encode(self) -> int:
        if self.kind not in self._OPCODES:
            raise ISAError(f"unknown memory kind {self.kind!r}")
        word = self._OPCODES[self.kind] << 29
        word |= _check(self.namespace, 3, "namespace") << 26
        word |= _check(self.offset, 16, "offset") << 10
        word |= _check(self.shift, 5, "shift") << 5
        if self.kind == "set_block":
            word |= _check(self.block, 5, "block")
        elif self.kind in ("load", "store"):
            word |= _check(self.burst - 1, 5, "burst")
        return word


def encode(instr) -> int:
    """Encode any instruction object to its 32-bit word."""
    return instr.encode()


def decode(word: int, category: str):
    """Decode a 32-bit word given its engine category.

    Args:
        word: the instruction word.
        category: "compute", "comm", or "memory" — the three engines have
            separate instruction streams (and thus separate opcode spaces).
    """
    if not 0 <= word < (1 << 32):
        raise ISAError(f"word {word:#x} is not 32-bit")
    opcode = (word >> 29) & 0x7

    if category == "compute":
        vector = opcode in (_OP_VECTOR_QUEUE, _OP_VECTOR_IMM)
        imm_form = opcode in (_OP_SCALAR_IMM, _OP_VECTOR_IMM)
        func = (word >> 25) & 0xF
        if func not in AluFunction.NAMES:
            raise ISAError(f"unknown ALU function code {func}")
        return ComputeInstr(
            function=AluFunction.NAMES[func],
            dest_ns=(word >> 22) & 0x7,
            src1_ns=(word >> 19) & 0x7,
            src1_index=(word >> 16) & 0x7,
            src1_pop=bool((word >> 15) & 1),
            src2_ns=0 if imm_form else (word >> 12) & 0x7,
            src2_index=0 if imm_form else (word >> 9) & 0x7,
            src2_pop=False if imm_form else bool((word >> 8) & 1),
            vector=vector,
            immediate=(word & 0xFF) if imm_form else None,
            repeat=(
                ((word >> 9) & 0x3F)
                if vector and imm_form
                else (word & 0xFF)
                if vector
                else 0
            ),
        )

    if category == "comm":
        if opcode not in CommInstr._KINDS:
            raise ISAError(f"unknown communication opcode {opcode}")
        return CommInstr(
            kind=CommInstr._KINDS[opcode],
            src_cu=(word >> 26) & 0x7,
            src_cc=(word >> 21) & 0x1F,
            mask=(word >> 13) & 0xFF,
            dest_cu=(word >> 10) & 0x7,
            dest_cc=(word >> 5) & 0x1F,
            agg=AggFunction.NAMES[(word >> 3) & 0x3],
        )

    if category == "memory":
        if opcode not in MemInstr._KINDS:
            raise ISAError(f"unknown memory opcode {opcode}")
        kind = MemInstr._KINDS[opcode]
        return MemInstr(
            kind=kind,
            namespace=(word >> 26) & 0x7,
            offset=(word >> 10) & 0xFFFF,
            shift=(word >> 5) & 0x1F,
            burst=((word & 0x1F) + 1) if kind in ("load", "store") else 1,
            block=(word & 0x1F) if kind == "set_block" else 0,
        )

    raise ISAError(f"unknown instruction category {category!r}")
