"""RoboX compilation workflow (paper §VII).

Program Translator (:mod:`repro.compiler.translator`) turns a transcribed
MPC problem into the macro dataflow graph; the Controller Compiler
(:mod:`repro.compiler.mapping` + :mod:`repro.compiler.scheduler`) maps it
onto the accelerator with Algorithm 1 and emits the three static schedules
(compute / interconnect / memory) in the 32-bit ISA of §VI.
"""

from repro.compiler.isa import (
    AggFunction,
    AluFunction,
    CommInstr,
    ComputeInstr,
    MemInstr,
    Namespace,
    decode,
    encode,
)
from repro.compiler.mapping import AggregationPlan, ProgramMap, map_mdfg
from repro.compiler.mdfg import KERNELS, MDFG, MDFGNode, NodeType, kernel_op_counts
from repro.compiler.scheduler import (
    MachineConfig,
    PhaseCost,
    Scheduler,
    StaticSchedule,
)
from repro.compiler.translator import TranslationInfo, Translator, translate

__all__ = [
    "MDFG",
    "MDFGNode",
    "NodeType",
    "KERNELS",
    "kernel_op_counts",
    "Translator",
    "TranslationInfo",
    "translate",
    "ProgramMap",
    "AggregationPlan",
    "map_mdfg",
    "MachineConfig",
    "PhaseCost",
    "Scheduler",
    "StaticSchedule",
    "Namespace",
    "AluFunction",
    "AggFunction",
    "ComputeInstr",
    "CommInstr",
    "MemInstr",
    "encode",
    "decode",
]


def compile_problem(problem, machine=None, group_threshold: int = 3):
    """One-call pipeline: transcribed problem -> static schedule.

    Returns ``(mdfg, program_map, schedule)``.
    """
    from repro.compiler.mapping import map_mdfg as _map

    machine = machine or MachineConfig()
    graph = translate(problem, group_threshold)
    pm = _map(graph, machine.n_cus, machine.cus_per_cc)
    schedule = Scheduler(machine).schedule(graph, pm)
    return graph, pm, schedule
