"""Controller Compiler, stage 1: compute-enabled-interconnect-aware mapping.

Implements Algorithm 1 of the paper.  The input is the expression-level part
of the M-DFG plus an initial data map ``D`` pre-assigning state/input operand
locations; the output is a :class:`ProgramMap` with

* an **operation map** ``M.O[cu]`` — the ops each Compute Unit executes,
* a **data map** ``M.D[cu]`` — which operands live in which CU's buffers,
* a **communication map** ``M.C[edge]`` — the destination CUs every produced
  value must be sent to, and
* an **aggregation map** ``M.A[vertex]`` — for GROUP vertices, the CUs whose
  partial results the compute-enabled interconnect reduces (over the
  intra-CC neighbor hops when they share a cluster, over the tree-bus when
  they span clusters).

The algorithm walks ready vertices, keeps an operation on the CU that
already holds one of its sources when possible, round-robins fresh work over
the CUs (``cuidx``), and records cross-CU edges in the communication map —
exactly the flow of the paper's pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compiler.mdfg import MDFG, MDFGNode, NodeType
from repro.errors import MappingError

__all__ = ["ProgramMap", "AggregationPlan", "map_mdfg"]


@dataclass
class AggregationPlan:
    """Where one GROUP vertex's reduction happens."""

    vertex: int
    func: str
    #: CUs holding the partial values, in operand order
    cus: Tuple[int, ...]
    #: "intra_cc" -> neighbor-hop reduction inside one cluster;
    #: "tree_bus"  -> cross-cluster reduction in the tree-bus hops
    level: str

    @property
    def width(self) -> int:
        return len(self.cus)


@dataclass
class ProgramMap:
    """Output of Algorithm 1 (operation / data / communication / aggregation)."""

    n_cus: int
    cus_per_cc: int
    #: M.O — op node ids per CU, in issue order
    operations: List[List[int]] = field(default_factory=list)
    #: M.D — operand labels resident in each CU's buffers
    data: List[List[str]] = field(default_factory=list)
    #: M.C — edge (producer id, consumer id) -> destination CUs
    communication: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    #: M.A — aggregation plans for GROUP vertices
    aggregation: Dict[int, AggregationPlan] = field(default_factory=dict)
    #: where each node's result lives
    placement: Dict[int, int] = field(default_factory=dict)

    def cc_of(self, cu: int) -> int:
        return cu // self.cus_per_cc

    @property
    def n_ccs(self) -> int:
        return (self.n_cus + self.cus_per_cc - 1) // self.cus_per_cc

    def ops_on(self, cu: int) -> List[int]:
        return self.operations[cu]

    def communication_volume(self) -> int:
        """Total point-to-point transfers recorded in the communication map."""
        return sum(len(dests) for dests in self.communication.values())

    def utilization(self) -> float:
        """Fraction of CUs with at least one mapped operation."""
        used = sum(1 for ops in self.operations if ops)
        return used / self.n_cus if self.n_cus else 0.0


def map_mdfg(
    graph: MDFG,
    n_cus: int,
    cus_per_cc: int,
    initial_data: Optional[Dict[str, int]] = None,
) -> ProgramMap:
    """Run Algorithm 1 over the expression-level nodes of ``graph``.

    Args:
        graph: the M-DFG (KERNEL nodes are skipped — they are scheduled by
            the solver-kernel scheduler, not placed per-CU).
        n_cus: total number of Compute Units (``ntotal``).
        cus_per_cc: CUs per Compute Cluster (``ncu``).
        initial_data: pre-assignment of operand labels (state/input names) to
            CUs — the initial data map ``D`` the paper's compiler constructs
            from the Program Translator's variable ordering.
    """
    if n_cus < 1:
        raise MappingError(f"need at least one CU, got {n_cus}")
    if cus_per_cc < 1 or cus_per_cc > n_cus:
        raise MappingError(
            f"cus_per_cc={cus_per_cc} invalid for n_cus={n_cus}"
        )

    M = ProgramMap(
        n_cus=n_cus,
        cus_per_cc=cus_per_cc,
        operations=[[] for _ in range(n_cus)],
        data=[[] for _ in range(n_cus)],
    )

    # -- initialize the data map D -------------------------------------------------
    # INPUT nodes (states, inputs, references, solver operands) are assigned
    # either from the provided map or round-robin in declaration order.
    placement = M.placement
    rr = 0
    for node in graph.nodes:
        if node.type == NodeType.INPUT:
            if initial_data and node.label in initial_data:
                cu = initial_data[node.label] % n_cus
            else:
                cu = rr % n_cus
                rr += 1
            placement[node.id] = cu
            M.data[cu].append(node.label)
        elif node.type == NodeType.CONST:
            # Constants are embedded as immediates; no placement needed, but
            # give them a home CU so edges resolve uniformly.
            placement[node.id] = 0

    # -- Algorithm 1 main loop ------------------------------------------------------
    cuidx = 0
    for v in graph.topological_order():
        if v.type in (NodeType.INPUT, NodeType.CONST, NodeType.KERNEL):
            continue

        sources = list(v.parents)
        mapped_srcs = [s for s in sources if s in placement]
        if any(s not in placement for s in sources):  # pragma: no cover
            raise MappingError(f"node {v.id} has unplaced parent")

        if v.type == NodeType.GROUP:
            # The partial values stay on their producing CUs; the reduction
            # itself happens in the interconnect.  Record the aggregation
            # map entry and place the result on the first contributing CU.
            cus = tuple(placement[s] for s in sources)
            ccs = {cu // cus_per_cc for cu in cus}
            level = "intra_cc" if len(ccs) == 1 else "tree_bus"
            M.aggregation[v.id] = AggregationPlan(
                vertex=v.id, func=v.op, cus=cus, level=level
            )
            placement[v.id] = cus[0]
            continue

        # SCALAR / VECTOR: prefer a CU that already holds a source operand
        # (step 3-4 of the paper's description); otherwise take the next CU
        # round-robin (step 3: "assign all source nodes to CU counter").
        home: Optional[int] = None
        for s in sources:
            src_cu = placement[s]
            if graph.nodes[s].type != NodeType.CONST:
                home = src_cu
                break
        if home is None:
            home = cuidx % n_cus
            cuidx += 1

        # Any source living elsewhere must be communicated to `home`.
        for s in sources:
            if graph.nodes[s].type == NodeType.CONST:
                continue
            src_cu = placement[s]
            if src_cu != home:
                M.communication.setdefault((s, v.id), []).append(home)
            elif graph.nodes[s].type == NodeType.INPUT:
                M.data[home].append(graph.nodes[s].label)

        M.operations[home].append(v.id)
        placement[v.id] = home

    return M
