"""Backend binding of a fused module: one call per stage family.

A :class:`FusedKernel` re-executes the emitted module source under an
array backend's ufunc namespace (exactly like
:class:`repro.batch.transcription.VectorizedFunction` does for a single
``CompiledFunction``), then serves each merged function as a dict of
per-group stacked arrays.  Feeding it columns of shape ``(N,)`` evaluates
every running knot of a scalar problem in one pass; ``(B, N)`` columns
evaluate a whole batch of lanes at once — either way the per-stage,
per-function Python dispatch of the interpreted path collapses into one
generated-function call per linearization request family.

Output semantics are pinned to ``VectorizedFunction``: outputs broadcast
to the column shape and stack on a trailing axis, so a group with ``m``
outputs comes back as ``shape + (m,)`` and all existing reshape/assembly
code downstream applies unchanged.  This file is on the batch hot path and
is covered by ``scripts/check_no_bare_numpy.py`` — every array touch goes
through the backend seam.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .store import StoredModule

__all__ = ["FusedKernel"]


class FusedKernel:
    """A stored fused module bound to one array backend."""

    def __init__(self, module: StoredModule, backend=None) -> None:
        # Imported lazily: repro.batch pulls in the solver stack, and the
        # solver stack imports repro.codegen — binding a kernel is the
        # first moment the backend seam is genuinely needed.
        from repro.batch.backend import get_backend

        self.xp = get_backend(backend)
        self.key = module.key
        self.layouts = module.layouts
        namespace: Dict[str, object] = dict(self.xp.ufuncs())
        exec(
            compile(module.source, f"<fused:{module.key[:12]}>", "exec"),
            namespace,
        )
        self._fns = {name: namespace[name] for name in module.layouts}

    def functions(self) -> Sequence[str]:
        return tuple(self._fns)

    def call(self, fn_name: str, cols: Sequence) -> Dict[str, object]:
        """Evaluate one fused function; return ``{group: shape + (m,)}``."""
        xp = self.xp
        layout = self.layouts[fn_name]
        shape = tuple(cols[0].shape) if cols else ()
        with xp.errstate():
            outs = self._fns[fn_name](*cols)
        groups: Dict[str, object] = {}
        for g in layout.groups:
            sel = outs[g.start : g.start + g.count]
            if sel:
                stacked = [xp.broadcast_to(xp.asarray(o), shape) for o in sel]
                groups[g.name] = xp.stack(stacked, axis=-1)
            else:
                groups[g.name] = xp.zeros(shape + (0,))
        return groups
