"""Fused-kernel construction and the scalar fused linearizer.

This is the seam between a :class:`~repro.mpc.transcription.TranscribedProblem`
and the codegen subsystem.  :class:`FusedProblemKernels` decides the
evaluation tier (the fallback ladder: C → fused-numpy → interpreted),
emits/loads the fused module through the content-addressed store, and owns
the :class:`~repro.codegen.stats.CodegenStats` record.
:class:`ScalarFusedLinearizer` then mirrors the seven scalar evaluation
methods of the transcription exactly — same stacking order, same
sequential objective summation, same per-stage Gauss-Newton contraction,
same validation errors — so the solver above cannot tell which tier ran.

Four fused functions cover the linearization surface:

``fused_run_full``/``fused_term_full``
    everything the SQP linearize block needs (values *and* Jacobian
    stacks) — evaluated once per linearization point;
``fused_run_vals``/``fused_term_vals``
    values only (objective, constraint residuals) — what the merit-function
    line search evaluates at trial points, where computing Jacobians would
    be pure waste.

A small per-point cache keyed by the evaluation point's bytes serves all
follow-up requests at the same point from one whole-horizon evaluation
(``cache_hits`` in the stats counts exactly these).

Mode selection (``resolve_mode``): ``auto`` (default) uses fused kernels
only when the horizon-scaled DAG size clears a cutoff — tiny problems
evaluate faster through the interpreted per-stage path than through array
dispatch; ``on`` forces the best available tier; ``numpy``/``c`` pin a
tier; ``off`` disables codegen.  The ``REPRO_CODEGEN`` environment
variable supplies the default, ``QPOptions(codegen=...)`` and
``serve-sim --codegen`` override it per solver/session.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CodegenError, TranscriptionError

from .cbackend import CKernel, build_c_kernel, c_available
from .emit import FunctionGroup, emit_fused_module, module_fingerprint
from .kernel import FusedKernel
from .stats import CodegenStats
from .store import ArtifactStore, StoredModule

__all__ = [
    "CODEGEN_MODES",
    "ENV_MODE",
    "resolve_mode",
    "FusedProblemKernels",
    "ScalarFusedLinearizer",
]

CODEGEN_MODES = ("auto", "on", "off", "numpy", "c")
ENV_MODE = "REPRO_CODEGEN"

#: ``auto`` cutoffs on ``horizon x merged-DAG op count`` (calibrated on the
#: Quadrotor N=30 bench vs the MobileRobot unit-test problems): below
#: ``_AUTO_NUMPY_SCORE`` the per-stage interpreted loop wins outright;
#: above ``_AUTO_C_SCORE`` the one-time compiler invocation amortizes.
_AUTO_NUMPY_SCORE = 4_000
_AUTO_C_SCORE = 20_000

_RUN_FULL = "fused_run_full"
_RUN_VALS = "fused_run_vals"
_TERM_FULL = "fused_term_full"
_TERM_VALS = "fused_term_vals"

#: (group name, problem attribute) per fused function, in output order.
_RUN_FULL_GROUPS = (
    ("dyn_step", "_F"),
    ("dyn_jac_x", "_A"),
    ("dyn_jac_u", "_B"),
    ("cost_run", "_L"),
    ("cost_run_grad", "_L_grad"),
    ("pen_run_jac", "_P_run_jac"),
    ("eq_state", "_g_state"),
    ("eq_state_jac", "_g_state_jac"),
    ("eq_input", "_g_input"),
    ("eq_input_jac", "_g_input_jac"),
    ("ineq_state", "_h_state"),
    ("ineq_state_jac", "_h_state_jac"),
    ("ineq_input", "_h_input"),
    ("ineq_input_jac", "_h_input_jac"),
)
_RUN_VALS_GROUPS = (
    ("dyn_step", "_F"),
    ("cost_run", "_L"),
    ("eq_state", "_g_state"),
    ("eq_input", "_g_input"),
    ("ineq_state", "_h_state"),
    ("ineq_input", "_h_input"),
)
_TERM_FULL_GROUPS = (
    ("cost_term", "_Phi"),
    ("cost_term_grad", "_Phi_grad"),
    ("pen_term_jac", "_P_term_jac"),
    ("eq_term", "_g_term"),
    ("eq_term_jac", "_g_term_jac"),
    ("ineq_term", "_h_term"),
    ("ineq_term_jac", "_h_term_jac"),
)
_TERM_VALS_GROUPS = (
    ("cost_term", "_Phi"),
    ("eq_term", "_g_term"),
    ("ineq_term", "_h_term"),
)


def resolve_mode(mode: Optional[str] = None) -> str:
    """Normalize a codegen mode, falling back to ``REPRO_CODEGEN``/auto."""
    if mode is None or mode == "":
        mode = os.environ.get(ENV_MODE, "").strip() or "auto"
    mode = str(mode).lower()
    if mode not in CODEGEN_MODES:
        raise CodegenError(
            f"unknown codegen mode {mode!r}; choose from {CODEGEN_MODES}"
        )
    return mode


def _problem_score(problem) -> int:
    """Horizon-scaled op-count proxy for the ``auto`` tier decision."""
    total = 0
    for _, attr in _RUN_FULL_GROUPS:
        fn = getattr(problem, attr)
        total += sum(fn.op_counts.values())
    return problem.N * total


class FusedProblemKernels:
    """Tier selection + fused module build for one transcribed problem."""

    def __init__(
        self,
        problem,
        mode: Optional[str] = None,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        self.problem = problem
        self.mode = resolve_mode(mode)
        self.stats = CodegenStats()
        self.store = store if store is not None else ArtifactStore()
        self.module: Optional[StoredModule] = None
        self.key: Optional[str] = None
        self._kernel = None  # CKernel or FusedKernel(HOST)

        tier = self._select_tier()
        if tier == "interpreted":
            return
        try:
            self._build(tier)
        except Exception as exc:  # any build failure -> interpreted
            self.stats.kernel = "interpreted"
            self.stats.fallback_reason = f"build failed: {exc}"
            self._kernel = None
            self.module = None

    # -- tier decision -----------------------------------------------------

    def _select_tier(self) -> str:
        p = self.problem
        if self.mode == "off":
            self.stats.fallback_reason = "codegen off"
            return "interpreted"
        if p.move_block != 1:
            self.stats.fallback_reason = "move_block > 1"
            return "interpreted"
        have_c = c_available()
        if self.mode == "numpy":
            return "fused-numpy"
        if self.mode == "c":
            if have_c:
                return "fused-c"
            self.stats.fallback_reason = "no C compiler/cffi; using numpy tier"
            return "fused-numpy"
        if self.mode == "on":
            return "fused-c" if have_c else "fused-numpy"
        # auto: size cutoff keeps tiny problems on the per-stage loop
        score = _problem_score(p)
        if have_c and score >= _AUTO_C_SCORE:
            return "fused-c"
        if score >= _AUTO_NUMPY_SCORE:
            return "fused-numpy"
        self.stats.fallback_reason = f"auto: below size cutoff (score={score})"
        return "interpreted"

    # -- build -------------------------------------------------------------

    def _function_specs(self):
        p = self.problem
        run_vars = [v.name for v in p._stage_vars]
        term_vars = [v.name for v in p._term_vars]

        def groups(spec):
            return [
                FunctionGroup(name=g, exprs=tuple(getattr(p, attr).exprs))
                for g, attr in spec
            ]

        return [
            (_RUN_FULL, groups(_RUN_FULL_GROUPS), run_vars),
            (_RUN_VALS, groups(_RUN_VALS_GROUPS), run_vars),
            (_TERM_FULL, groups(_TERM_FULL_GROUPS), term_vars),
            (_TERM_VALS, groups(_TERM_VALS_GROUPS), term_vars),
        ]

    def _build(self, tier: str) -> None:
        p = self.problem
        t0 = time.perf_counter()
        fused = emit_fused_module(self._function_specs())
        key = module_fingerprint(
            fused,
            extra=(
                f"N={p.N}",
                f"move_block={p.move_block}",
                "dtype=float64",
            ),
        )
        self.stats.emit_time = time.perf_counter() - t0
        self.key = key

        stored = self.store.load(key)
        if stored is not None:
            self.stats.store_hit = True
            self.module = stored
        else:
            self.module = self.store.save(
                key,
                fused.source,
                fused.layouts,
                meta={
                    "model": p.model.name,
                    "task": p.task.name,
                    "horizon": p.N,
                    "move_block": p.move_block,
                },
            )

        t1 = time.perf_counter()
        if tier == "fused-c":
            try:
                self._kernel = build_c_kernel(fused.irs, key, self.store)
                self.stats.kernel = "fused-c"
            except CodegenError as exc:
                self.stats.fallback_reason = f"c tier unavailable: {exc}"
                tier = "fused-numpy"
        if tier == "fused-numpy":
            self._kernel = FusedKernel(self.module)  # HOST numpy binding
            self.stats.kernel = "fused-numpy"
        self.stats.compile_time = time.perf_counter() - t1

    # -- access ------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._kernel is not None

    def scalar_linearizer(self) -> Optional["ScalarFusedLinearizer"]:
        if not self.active:
            return None
        return ScalarFusedLinearizer(self.problem, self._kernel, self.stats)

    def backend_kernel(self, backend) -> FusedKernel:
        """Bind the fused module to an array backend (batch path)."""
        if self.module is None:
            raise CodegenError("fused module was not built")
        return FusedKernel(self.module, backend)

    def disable(self, reason: str) -> None:
        self._kernel = None
        self.stats.kernel = "interpreted"
        self.stats.fallback_reason = reason


class ScalarFusedLinearizer:
    """Fused twins of the seven scalar evaluation methods.

    Calls the fused kernel with whole-horizon ``(N,)`` columns, slices the
    group stacks back out, and assembles with the exact operations (and
    operation *order*) of the interpreted methods so results line up
    bit-for-bit on the C tier and to array-ufunc precision on numpy.
    """

    _CACHE_CAP = 4  # linearize point + a few merit trial points

    def __init__(self, problem, kernel, stats: CodegenStats) -> None:
        self.p = problem
        self.kernel = kernel
        self.stats = stats
        # point cache: (z bytes, ref bytes) -> {fused fn name: group dict}
        self._cache: "OrderedDict[tuple, dict]" = OrderedDict()
        # pre-resolved knot slices: the assembly loops below touch these
        # thousands of times per solve and the bounds checks add up
        self._sx = [problem.state_slice(k) for k in range(problem.N + 1)]
        self._su = [problem.input_slice(k) for k in range(problem.N)]
        # per-stage column index matrices for one-shot fancy scatters: the
        # stage blocks are disjoint, so a single advanced-index assignment
        # places the same values the per-stage slice loop would
        self._xcols = np.stack([np.arange(s.start, s.stop) for s in self._sx])
        self._ucols = np.stack([np.arange(s.start, s.stop) for s in self._su])
        self._stage_cols = np.hstack([self._xcols[:-1], self._ucols])

    # -- point plumbing ----------------------------------------------------

    def _ref_matrix(self, ref) -> Optional[np.ndarray]:
        """Mirror of ``TranscribedProblem._ref_row`` over the whole horizon."""
        p = self.p
        if p.nref == 0:
            return None
        if ref is None:
            raise TranscriptionError(
                f"task {p.task.name!r} requires reference values "
                f"{p.task.references}"
            )
        refm = np.asarray(ref, dtype=float)
        if refm.shape == (p.nref,):
            return np.tile(refm, (p.N + 1, 1))
        if refm.shape == (p.N + 1, p.nref):
            return refm
        raise TranscriptionError(
            f"reference values must have shape ({p.nref},) or "
            f"({p.N + 1}, {p.nref}), got {refm.shape}"
        )

    def _point(self, z, ref):
        p = self.p
        key = (
            np.asarray(z, dtype=float).tobytes(),
            b"" if ref is None else np.asarray(ref, dtype=float).tobytes(),
        )
        entry = self._cache.get(key)
        if entry is None:
            xs, us = p.split(z)
            entry = {"xs": xs, "us": us, "R": self._ref_matrix(ref)}
            self._cache[key] = entry
            while len(self._cache) > self._CACHE_CAP:
                self._cache.popitem(last=False)
        else:
            self._cache.move_to_end(key)
        return entry

    def _run_cols(self, entry) -> List[np.ndarray]:
        p = self.p
        xs, us, R = entry["xs"], entry["us"], entry["R"]
        cols = [np.ascontiguousarray(xs[: p.N, i]) for i in range(p.nx)]
        cols += [np.ascontiguousarray(us[:, j]) for j in range(p.nu)]
        if p.nref:
            cols += [np.ascontiguousarray(R[: p.N, r]) for r in range(p.nref)]
        return cols

    def _term_cols(self, entry) -> List[np.ndarray]:
        p = self.p
        xs, R = entry["xs"], entry["R"]
        cols = [xs[p.N : p.N + 1, i] for i in range(p.nx)]
        if p.nref:
            cols += [R[p.N : p.N + 1, r] for r in range(p.nref)]
        return cols

    def _groups(self, entry, fn_name: str, group: str) -> np.ndarray:
        """Fetch one group's stack at this point, evaluating fused fns lazily.

        A ``*_full`` evaluation is a superset of the matching ``*_vals``
        one, so value requests are served from a cached full evaluation
        when the linearize block already ran at this point.
        """
        fulls = {_RUN_VALS: _RUN_FULL, _TERM_VALS: _TERM_FULL}
        for name in (fulls.get(fn_name, fn_name), fn_name):
            cached = entry.get(name)
            if cached is not None and group in cached:
                self.stats.cache_hits += 1
                return cached[group]
        cols = (
            self._run_cols(entry)
            if fn_name in (_RUN_FULL, _RUN_VALS)
            else self._term_cols(entry)
        )
        self.stats.cache_misses += 1
        entry[fn_name] = self.kernel.call(fn_name, cols)
        return entry[fn_name][group]

    # -- fused method twins ------------------------------------------------

    def objective(self, z, ref=None) -> float:
        pt = self._point(z, ref)
        run = self._groups(pt, _RUN_VALS, "cost_run")[:, 0]
        term = self._groups(pt, _TERM_VALS, "cost_term")[0, 0]
        # sequential summation, matching the interpreted accumulation order
        total = 0.0
        for v in run.tolist():
            total += v
        total += float(term)
        return float(total)

    def objective_gradient(self, z, ref=None) -> np.ndarray:
        p = self.p
        pt = self._point(z, ref)
        gs = self._groups(pt, _RUN_FULL, "cost_run_grad")  # (N, nxu)
        grad = np.zeros(p.nz)
        base = (p.N + 1) * p.nx
        grad[: p.N * p.nx] = gs[:, : p.nx].ravel()
        grad[base:] = gs[:, p.nx :].ravel()
        grad[p.N * p.nx : base] += self._groups(pt, _TERM_FULL, "cost_term_grad")[0]
        return grad

    def objective_gauss_newton(self, z, ref=None) -> np.ndarray:
        p = self.p
        pt = self._point(z, ref)
        H = np.zeros((p.nz, p.nz))
        nxu = p.nx + p.nu
        n_run = len(p.w_run)
        n_term = len(p.w_term)
        if n_run:
            Jp_all = self._groups(pt, _RUN_FULL, "pen_run_jac").reshape(
                p.N, n_run, nxu
            )
            # one batched contraction: matmul over a leading stage axis
            # runs the same per-stage dgemm the scalar loop would, so the
            # blocks stay bit-identical to the interpreted path
            blks = 2.0 * (
                np.ascontiguousarray(Jp_all.transpose(0, 2, 1)) * p.w_run
            ) @ Jp_all
            sc = self._stage_cols
            H[sc[:, :, None], sc[:, None, :]] = blks
        if n_term:
            Jp = self._groups(pt, _TERM_FULL, "pen_term_jac").reshape(
                n_term, p.nx
            )
            sN = self._sx[p.N]
            H[sN, sN] += 2.0 * (Jp.T * p.w_term) @ Jp
        return H

    def equality_constraints(self, z, x_init, ref=None) -> np.ndarray:
        p = self.p
        x_init = np.asarray(x_init, dtype=float)
        if x_init.shape != (p.nx,):
            raise TranscriptionError(
                f"x_init has shape {x_init.shape}, expected ({p.nx},)"
            )
        pt = self._point(z, ref)
        xs = pt["xs"]
        F = self._groups(pt, _RUN_VALS, "dyn_step")  # (N, nx)
        parts = [xs[0] - x_init, (xs[1:] - F).ravel()]
        if p._eq_state_rows and p.N > 1:
            parts.append(self._groups(pt, _RUN_VALS, "eq_state")[1:].ravel())
        if p._eq_input_rows:
            parts.append(self._groups(pt, _RUN_VALS, "eq_input").ravel())
        if p._eq_term_rows:
            parts.append(self._groups(pt, _TERM_VALS, "eq_term")[0])
        return np.concatenate(parts)

    def equality_jacobian(self, z, ref=None) -> np.ndarray:
        p = self.p
        pt = self._point(z, ref)
        nx, nu, nxu = p.nx, p.nu, p.nx + p.nu
        G = np.zeros((p.n_eq, p.nz))
        G[:nx, :nx] = np.eye(nx)
        A = self._groups(pt, _RUN_FULL, "dyn_jac_x").reshape(p.N, nx, nx)
        B = self._groups(pt, _RUN_FULL, "dyn_jac_u").reshape(p.N, nx, nu)
        rows = nx + np.arange(p.N * nx).reshape(p.N, nx)[:, :, None]
        G[rows, self._xcols[1:, None, :]] = np.eye(nx)
        G[rows, self._xcols[:-1, None, :]] = -A
        G[rows, self._ucols[:, None, :]] = -B
        row = nx + p.N * nx
        if p._eq_state_rows and p.N > 1:
            J = self._groups(pt, _RUN_FULL, "eq_state_jac").reshape(
                p.N, p._eq_state_rows, nxu
            )
            r = p._eq_state_rows
            rows = row + np.arange((p.N - 1) * r).reshape(p.N - 1, r)[:, :, None]
            G[rows, self._xcols[1 : p.N, None, :]] = J[1:, :, :nx]
            G[rows, self._ucols[1:, None, :]] = J[1:, :, nx:]
            row += (p.N - 1) * r
        if p._eq_input_rows:
            J = self._groups(pt, _RUN_FULL, "eq_input_jac").reshape(
                p.N, p._eq_input_rows, nxu
            )
            r = p._eq_input_rows
            rows = row + np.arange(p.N * r).reshape(p.N, r)[:, :, None]
            G[rows, self._xcols[:-1, None, :]] = J[:, :, :nx]
            G[rows, self._ucols[:, None, :]] = J[:, :, nx:]
            row += p.N * r
        if p._eq_term_rows:
            J = self._groups(pt, _TERM_FULL, "eq_term_jac").reshape(
                p._eq_term_rows, nx
            )
            G[row : row + p._eq_term_rows, self._sx[p.N]] = J
            row += p._eq_term_rows
        return G

    def inequality_constraints(self, z, ref=None) -> np.ndarray:
        p = self.p
        if p.n_ineq == 0:
            return np.zeros(0)
        pt = self._point(z, ref)
        parts = []
        if p._h_state_rows and p.N > 1:
            parts.append(self._groups(pt, _RUN_VALS, "ineq_state")[1:].ravel())
        if p._h_input_rows:
            parts.append(self._groups(pt, _RUN_VALS, "ineq_input").ravel())
        if p._h_term_rows:
            parts.append(self._groups(pt, _TERM_VALS, "ineq_term")[0])
        return np.concatenate(parts) if parts else np.zeros(0)

    def inequality_jacobian(self, z, ref=None) -> np.ndarray:
        p = self.p
        J = np.zeros((p.n_ineq, p.nz))
        if p.n_ineq == 0:
            return J
        pt = self._point(z, ref)
        nx, nxu = p.nx, p.nx + p.nu
        row = 0
        if p._h_state_rows and p.N > 1:
            blk = self._groups(pt, _RUN_FULL, "ineq_state_jac").reshape(
                p.N, p._h_state_rows, nxu
            )
            r = p._h_state_rows
            rows = row + np.arange((p.N - 1) * r).reshape(p.N - 1, r)[:, :, None]
            J[rows, self._xcols[1 : p.N, None, :]] = blk[1:, :, :nx]
            J[rows, self._ucols[1:, None, :]] = blk[1:, :, nx:]
            row += (p.N - 1) * r
        if p._h_input_rows:
            blk = self._groups(pt, _RUN_FULL, "ineq_input_jac").reshape(
                p.N, p._h_input_rows, nxu
            )
            r = p._h_input_rows
            rows = row + np.arange(p.N * r).reshape(p.N, r)[:, :, None]
            J[rows, self._xcols[:-1, None, :]] = blk[:, :, :nx]
            J[rows, self._ucols[:, None, :]] = blk[:, :, nx:]
            row += p.N * r
        if p._h_term_rows:
            blk = self._groups(pt, _TERM_FULL, "ineq_term_jac").reshape(
                p._h_term_rows, nx
            )
            J[row : row + p._h_term_rows, self._sx[p.N]] = blk
        return J
