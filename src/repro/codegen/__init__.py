"""Ahead-of-time fused kernel codegen for the linearization phase.

Walks the retained :class:`~repro.symbolic.compile.CompiledFunction`
expression DAGs of a transcribed problem and emits one fused,
horizon-unrolled module per ``(robot, horizon, move_block, dtype)`` key,
with a content-addressed artifact store, an optional cffi-built C tier,
and a fallback ladder down to the interpreted per-stage path.  See
DESIGN.md ("Fused kernel codegen") for the architecture.
"""

from .cbackend import c_available
from .emit import (
    CODEGEN_VERSION,
    FunctionGroup,
    build_ir,
    emit_fused_module,
    emit_python_function,
    module_fingerprint,
)
from .kernel import FusedKernel
from .linearizer import (
    CODEGEN_MODES,
    ENV_MODE,
    FusedProblemKernels,
    ScalarFusedLinearizer,
    resolve_mode,
)
from .stats import CodegenStats, FusedFunctionLayout, FusedGroupLayout
from .store import ArtifactStore, StoredModule, default_cache_root

__all__ = [
    "CODEGEN_MODES",
    "CODEGEN_VERSION",
    "ENV_MODE",
    "ArtifactStore",
    "CodegenStats",
    "FunctionGroup",
    "FusedFunctionLayout",
    "FusedGroupLayout",
    "FusedKernel",
    "FusedProblemKernels",
    "ScalarFusedLinearizer",
    "StoredModule",
    "build_ir",
    "c_available",
    "default_cache_root",
    "emit_fused_module",
    "emit_python_function",
    "module_fingerprint",
    "resolve_mode",
]
