"""Fused source emission from retained stage-function expression DAGs.

The scalar and batch linearizers evaluate ~20 compiled stage functions per
SQP iteration, each through its own Python call per stage (or per batched
column shuffle).  This module merges the expression DAGs of whole stage
*families* (everything evaluated at the running knots; everything evaluated
at the terminal knot) into one generated function per family with a single
global common-subexpression pass — the dynamics Jacobian shares most of its
trigonometry with the step function, the cost gradient with the penalty
Jacobian, and the merged walk computes each distinct node exactly once.

Emission mirrors :func:`repro.symbolic.compile.compile_function` exactly —
same constant ``repr`` inlining, same infix/neg/call spellings, children
computed before parents in the same topological order — so a fused function
executed under the *same* namespace as a ``CompiledFunction`` produces
bit-identical outputs (the equivalence property suite pins this).  The
namespace is late-bound: the same source runs under ``math`` on Python
floats, or under any array backend's ufunc map on ``(N,)`` / ``(B, N)``
columns (see :mod:`repro.codegen.kernel`).

Nothing here touches numpy: this module is pure string/DAG work, and its
neutral :class:`FusedIR` form is what the C emitter
(:mod:`repro.codegen.cbackend`) and the content-addressed artifact store
(:mod:`repro.codegen.store`) both consume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import SymbolicError
from repro.symbolic.compile import _INFIX, _MATH_FUNCS
from repro.symbolic.expr import Call, Const, Expr, Var, topological_order

from .stats import FusedFunctionLayout, FusedGroupLayout

__all__ = [
    "CODEGEN_VERSION",
    "FunctionGroup",
    "FusedIR",
    "FusedModule",
    "build_ir",
    "emit_python_function",
    "emit_fused_module",
    "module_fingerprint",
]

#: Bumped whenever emission or layout semantics change: part of every
#: artifact key, so stale store entries can never be replayed into a
#: runtime that expects different generated code.
CODEGEN_VERSION = 1


@dataclass(frozen=True)
class FunctionGroup:
    """One stage function's outputs inside a fused family function."""

    name: str
    exprs: Tuple[Expr, ...]


@dataclass
class FusedIR:
    """Neutral, ordered program form of one fused function's merged DAGs.

    ``nodes`` entries are tuples:

    * ``("const", repr_text)`` — a literal (the exact ``repr`` the Python
      emitter inlines, so the IR round-trips bit-identically);
    * ``("var", input_index)`` — positional input load;
    * ``("call", op_name, arg_ids)`` — primitive applied to earlier nodes.

    ``outputs`` lists node ids in return order (groups concatenated).
    """

    name: str
    var_names: Tuple[str, ...]
    nodes: List[tuple]
    outputs: List[int]
    layout: FusedFunctionLayout

    def canonical_lines(self) -> List[str]:
        """Deterministic text form (the fingerprint and store key input)."""
        lines = [f"fn {self.name}({','.join(self.var_names)})"]
        for i, node in enumerate(self.nodes):
            if node[0] == "const":
                lines.append(f"{i}=C:{node[1]}")
            elif node[0] == "var":
                lines.append(f"{i}=V:{node[1]}")
            else:
                args = ",".join(str(a) for a in node[2])
                lines.append(f"{i}=O:{node[1]}({args})")
        lines.append("out " + ",".join(str(i) for i in self.outputs))
        for g in self.layout.groups:
            lines.append(f"group {g.name} {g.start} {g.count}")
        return lines


@dataclass
class FusedModule:
    """A generated module: several fused functions sharing one source."""

    source: str
    layouts: Dict[str, FusedFunctionLayout]
    irs: Dict[str, FusedIR]


def build_ir(
    name: str,
    groups: Sequence[FunctionGroup],
    var_names: Sequence[str],
) -> FusedIR:
    """Merge ``groups`` into one ordered IR with global CSE.

    The walk is :func:`topological_order` over the concatenated output
    expressions — identical structure therefore identical order to what
    ``compile_function`` would produce for the merged output list, which is
    what keeps the Python emission bit-compatible with the per-function
    interpreters.
    """
    var_names = tuple(var_names)
    if len(set(var_names)) != len(var_names):
        raise SymbolicError(f"duplicate variable names in signature: {var_names}")
    slot = {nm: i for i, nm in enumerate(var_names)}

    roots: List[Expr] = []
    for g in groups:
        roots.extend(g.exprs)
    order = topological_order(roots)

    ids: Dict[Expr, int] = {}
    nodes: List[tuple] = []
    for node in order:
        if isinstance(node, Const):
            nodes.append(("const", repr(node.value)))
        elif isinstance(node, Var):
            if node.name not in slot:
                raise SymbolicError(
                    f"expression references {node.name!r} which is not in "
                    f"the fused signature {var_names}"
                )
            nodes.append(("var", slot[node.name]))
        elif isinstance(node, Call):
            opn = node.op.name
            if opn not in _INFIX and opn != "neg" and opn not in _MATH_FUNCS:
                raise SymbolicError(f"cannot emit operation {opn!r}")
            nodes.append(("call", opn, tuple(ids[a] for a in node.args)))
        else:  # pragma: no cover - Expr subclasses are closed
            raise SymbolicError(f"unknown node type {node!r}")
        ids[node] = len(nodes) - 1

    layout = FusedFunctionLayout(name=name, n_outputs=0)
    outputs: List[int] = []
    for g in groups:
        layout.groups.append(
            FusedGroupLayout(name=g.name, start=len(outputs), count=len(g.exprs))
        )
        outputs.extend(ids[e] for e in g.exprs)
    layout.n_outputs = len(outputs)
    return FusedIR(
        name=name,
        var_names=var_names,
        nodes=nodes,
        outputs=outputs,
        layout=layout,
    )


def emit_python_function(ir: FusedIR) -> str:
    """Emit ``def <name>(v0, ...): ...`` source from an IR.

    Spelled exactly like :func:`repro.symbolic.compile.compile_function`:
    constants inline as ``repr``, calls become one ``t<i>`` assignment per
    distinct DAG node in topological order.
    """
    names: List[str] = []
    lines: List[str] = []
    counter = 0
    for node in ir.nodes:
        if node[0] == "const":
            names.append(node[1])
        elif node[0] == "var":
            names.append(f"v{node[1]}")
        else:
            opn = node[1]
            args = [names[a] for a in node[2]]
            if opn in _INFIX:
                rhs = f"({args[0]} {_INFIX[opn]} {args[1]})"
            elif opn == "neg":
                rhs = f"(-{args[0]})"
            else:
                rhs = f"{opn}({args[0]})"
            tmp = f"t{counter}"
            counter += 1
            lines.append(f"    {tmp} = {rhs}")
            names.append(tmp)

    out = ", ".join(names[i] for i in ir.outputs)
    if len(ir.outputs) == 1:
        out += ","
    params = ", ".join(f"v{i}" for i in range(len(ir.var_names)))
    body = "\n".join(lines) if lines else "    pass"
    return f"def {ir.name}({params}):\n{body}\n    return ({out})\n"


def emit_fused_module(
    functions: Sequence[Tuple[str, Sequence[FunctionGroup], Sequence[str]]],
) -> FusedModule:
    """Build a module of fused functions.

    ``functions`` entries are ``(fn_name, groups, var_names)``; each fused
    function gets its own signature (running-knot functions take the stage
    variables, terminal ones the terminal variables).
    """
    irs: Dict[str, FusedIR] = {}
    layouts: Dict[str, FusedFunctionLayout] = {}
    chunks: List[str] = []
    for fn_name, groups, var_names in functions:
        if fn_name in irs:
            raise SymbolicError(f"duplicate fused function name {fn_name!r}")
        ir = build_ir(fn_name, groups, var_names)
        irs[fn_name] = ir
        layouts[fn_name] = ir.layout
        chunks.append(emit_python_function(ir))
    return FusedModule(source="\n".join(chunks), layouts=layouts, irs=irs)


def module_fingerprint(module: FusedModule, extra: Sequence[str] = ()) -> str:
    """Content hash of a fused module plus caller context tokens.

    Covers every IR node, output order, group layout, signature and the
    emission version — any change to an expression DAG, a shape, or the
    generator itself moves the key, which is what makes the artifact store
    safely content-addressed.  ``extra`` carries the problem context
    (robot/horizon/move_block/dtype tokens).
    """
    h = hashlib.sha256()
    h.update(f"codegen-v{CODEGEN_VERSION}\n".encode())
    for token in extra:
        h.update(f"x:{token}\n".encode())
    for name in sorted(module.irs):
        for line in module.irs[name].canonical_lines():
            h.update(line.encode())
            h.update(b"\n")
    return h.hexdigest()
