"""C emission and cffi build for fused linearization kernels.

The numpy-fused tier still walks the merged DAG once per primitive as a
whole-horizon ufunc call; for big DAGs the remaining cost is memory
traffic over the ``(N,)`` temporaries.  This tier emits the same IR as a
single C loop nest — one pass over the knots, all temporaries in
registers — and builds it with cffi when a C compiler is present.

Bit-safety: CPython's ``math`` module calls the platform libm, and the
generated C calls the *same* libm symbols (``sin``/``asin``/``pow``/...),
so with contraction disabled (``-ffp-contract=off``, no fast-math) the C
kernel is bit-identical to the interpreted scalar path — a stronger
guarantee than the numpy tier, whose SIMD transcendentals may differ from
libm in the last ulp.  The equivalence suite pins this on seeded DAGs.

Binary interface (kept trivially flat for cffi):

    void <name>(long n, const double* in, double* out);

``in`` is variable-major (``in[v*n + i]``), ``out`` output-major — the
caller stacks columns contiguously and slices rows back out.  Built
shared objects land in the artifact store's ``so/<key>/`` directory via
an atomic rename, so concurrent first-compiles from a worker fleet
converge on one valid artifact and later processes just ``dlopen`` it.
"""

from __future__ import annotations

import glob
import importlib.util
import os
import shutil
import sys
import tempfile
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import CodegenError
from repro.symbolic.compile import _INFIX

from .emit import FusedIR
from .store import ArtifactStore

__all__ = ["c_available", "emit_c_module", "CKernel", "build_c_kernel"]

_C_INFIX = {"add": "+", "sub": "-", "mul": "*", "div": "/"}


def c_available() -> bool:
    """True when both cffi and a C compiler are importable/findable."""
    if importlib.util.find_spec("cffi") is None:
        return False
    return any(shutil.which(cc) for cc in ("cc", "gcc", "clang"))


def _c_literal(repr_text: str) -> str:
    """Validate/translate a Python float repr into a C double literal."""
    try:
        value = float(repr_text)
    except ValueError as exc:
        raise CodegenError(f"constant {repr_text!r} is not a C double") from exc
    if value != value:  # NaN
        raise CodegenError("NaN constant cannot be emitted to C")
    if value in (float("inf"), float("-inf")):
        raise CodegenError("infinite constant cannot be emitted to C")
    # repr() of a Python float is a shortest round-trip decimal; a C
    # compiler parses it back to the identical double.  Bare integers need
    # a suffix so C arithmetic stays in double.
    return repr_text if ("." in repr_text or "e" in repr_text or "E" in repr_text) else f"{repr_text}.0"


def _emit_c_function(ir: FusedIR) -> str:
    used_vars = sorted({node[1] for node in ir.nodes if node[0] == "var"})
    names: List[str] = []
    body: List[str] = []
    counter = 0
    for node in ir.nodes:
        if node[0] == "const":
            names.append(_c_literal(node[1]))
        elif node[0] == "var":
            names.append(f"v{node[1]}")
        else:
            opn = node[1]
            args = [names[a] for a in node[2]]
            if opn in _C_INFIX:
                rhs = f"({args[0]} {_C_INFIX[opn]} {args[1]})"
            elif opn == "pow":
                rhs = f"pow({args[0]}, {args[1]})"
            elif opn == "neg":
                rhs = f"(-{args[0]})"
            elif opn in _INFIX:  # pragma: no cover - pow is the only one
                raise CodegenError(f"no C spelling for {opn!r}")
            else:
                rhs = f"{opn}({args[0]})"
            tmp = f"t{counter}"
            counter += 1
            body.append(f"        double {tmp} = {rhs};")
            names.append(tmp)

    loads = [f"        double v{v} = in[{v} * n + i];" for v in used_vars]
    stores = [
        f"        out[{k} * n + i] = {names[node_id]};"
        for k, node_id in enumerate(ir.outputs)
    ]
    lines = [
        f"void {ir.name}(long n, const double* in, double* out) {{",
        "    long i;",
        "    for (i = 0; i < n; i++) {",
        *loads,
        *body,
        *stores,
        "    }",
        "}",
    ]
    return "\n".join(lines)


def emit_c_module(irs: Dict[str, FusedIR]) -> str:
    chunks = ["#include <math.h>", ""]
    for name in sorted(irs):
        chunks.append(_emit_c_function(irs[name]))
        chunks.append("")
    return "\n".join(chunks)


def _import_so(modname: str, so_path: str):
    spec = importlib.util.spec_from_file_location(modname, so_path)
    if spec is None or spec.loader is None:
        raise CodegenError(f"cannot load compiled kernel at {so_path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[modname] = module
    spec.loader.exec_module(module)
    return module


class CKernel:
    """A built C module, called with stacked float64 columns."""

    def __init__(self, module, irs: Dict[str, FusedIR]) -> None:
        self._ffi = module.ffi
        self._lib = module.lib
        self._irs = irs

    def call(self, fn_name: str, cols: Sequence[np.ndarray]) -> Dict[str, np.ndarray]:
        """Evaluate one fused function; return ``{group: (n, m)}`` arrays."""
        ir = self._irs[fn_name]
        n = int(cols[0].shape[0]) if cols else 0
        inbuf = np.ascontiguousarray(np.stack(cols, axis=0), dtype=np.float64)
        outbuf = np.empty((len(ir.outputs), n), dtype=np.float64)
        getattr(self._lib, fn_name)(
            n,
            self._ffi.from_buffer("double *", inbuf),
            self._ffi.from_buffer("double *", outbuf),
        )
        groups: Dict[str, np.ndarray] = {}
        for g in ir.layout.groups:
            groups[g.name] = outbuf[g.start : g.start + g.count].T
        return groups


def build_c_kernel(
    irs: Dict[str, FusedIR],
    key: str,
    store: Optional[ArtifactStore] = None,
) -> CKernel:
    """Compile (or reload) the C tier for a fused module.

    The shared object is cached in the store under ``so/<key>/``; a second
    process importing the same key skips the compiler entirely.  Any build
    failure raises :class:`CodegenError` so the caller can drop one tier
    down the fallback ladder.
    """
    if store is None:
        store = ArtifactStore()
    modname = f"_repro_cg_{key[:16]}"
    so_dir = store.so_dir_for(key)
    existing = sorted(glob.glob(str(so_dir / f"{modname}*.so")))
    if existing:
        try:
            return CKernel(_import_so(modname, existing[0]), irs)
        except (OSError, ImportError, CodegenError):
            # stale/foreign-ABI artifact: rebuild below
            pass

    try:
        import cffi
    except ImportError as exc:  # pragma: no cover - guarded by c_available
        raise CodegenError("cffi is not available") from exc

    csource = emit_c_module(irs)
    cdefs = "\n".join(
        f"void {name}(long n, const double* in, double* out);" for name in sorted(irs)
    )
    builder = cffi.FFI()
    builder.cdef(cdefs)
    builder.set_source(
        modname,
        csource,
        extra_compile_args=["-O2", "-ffp-contract=off", "-fno-fast-math"],
    )
    tmpdir = None
    try:
        so_dir.mkdir(parents=True, exist_ok=True)
        tmpdir = tempfile.mkdtemp(prefix=".build.", dir=str(so_dir))
        built = builder.compile(tmpdir=tmpdir, verbose=False)
        target = so_dir / os.path.basename(built)
        os.replace(built, target)  # atomic: racing builders converge
        return CKernel(_import_so(modname, str(target)), irs)
    except CodegenError:
        raise
    except Exception as exc:
        raise CodegenError(f"C kernel build failed: {exc}") from exc
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
