"""Observability record for the fused-kernel codegen subsystem.

Kept dependency-free (dataclasses only) so :mod:`repro.mpc.qp` can carry a
``CodegenStats`` on :class:`~repro.mpc.qp.QPStats` without importing the
codegen machinery (which itself imports the transcription layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CodegenStats:
    """What the codegen seam decided and what it cost.

    ``kernel`` names the evaluation tier actually in use:

    * ``"fused-c"`` — cffi-compiled C module (fastest, bit-identical to the
      interpreted scalar path: both call the same libm);
    * ``"fused-numpy"`` — the generated module re-executed under an array
      backend's ufunc namespace, one horizon-wide call per stage family;
    * ``"interpreted"`` — the original per-stage ``call_positional`` loop
      (codegen off, below the auto size cutoff, or a fallback fired).
    """

    kernel: str = "interpreted"
    #: why the fused path is not in use ("" when it is); e.g.
    #: "auto: below size cutoff", "move_block > 1", or a build error
    fallback_reason: str = ""
    #: wall seconds spent walking the DAGs and emitting fused source
    #: (zero on an artifact-store hit)
    emit_time: float = 0.0
    #: wall seconds spent compiling the emitted module (python ``compile`` +
    #: ``exec``; includes the C compiler when ``kernel == "fused-c"``)
    compile_time: float = 0.0
    #: fused-evaluation reuse: a hit means a second stage-family request
    #: (gradient after objective, Jacobian after constraints, ...) was
    #: served from the single whole-horizon evaluation already computed at
    #: the same point
    cache_hits: int = 0
    cache_misses: int = 0
    #: the content-addressed artifact store already had this problem's
    #: emitted module (True saves the emit walk; the compile still runs
    #: once per process)
    store_hit: bool = False

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "fallback_reason": self.fallback_reason,
            "emit_time": self.emit_time,
            "compile_time": self.compile_time,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "store_hit": self.store_hit,
        }


@dataclass
class FusedGroupLayout:
    """Where one stage function's outputs live in the fused return tuple."""

    name: str
    start: int
    count: int


@dataclass
class FusedFunctionLayout:
    """Layout of one generated fused function (output groups in order)."""

    name: str
    n_outputs: int
    groups: list = field(default_factory=list)

    def slices(self) -> dict:
        return {g.name: (g.start, g.start + g.count) for g in self.groups}
