"""Content-addressed store for emitted fused-kernel artifacts.

Serve runs a fleet of worker processes that would each pay the same DAG
walk + emission (and, on the C tier, the same compiler invocation) for the
same ``(robot, horizon, move_block, dtype)`` problem.  The store keys every
artifact by :func:`repro.codegen.emit.module_fingerprint` — a hash over the
expression DAGs themselves plus the shape/context tokens — so the key *is*
the content: a changed dynamics model, weight constant, horizon, or emitter
version lands on a different key, and stale entries can never be replayed.

Layout under the cache root (``REPRO_CODEGEN_CACHE`` or
``~/.cache/repro/codegen``)::

    <key>.json          emitted python module source + layouts + checksum
    so/<key>/<mod>.so   compiled C extension (written by cbackend)

Writes are atomic (temp file in the same directory, then ``os.replace``) so
concurrent first-compiles from two processes race benignly: both compute
identical bytes for the same key and the second replace is a no-op
overwrite.  Reads validate a checksum and the emitter version; anything
malformed is deleted and reported as a miss, which triggers a clean
re-emit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from .emit import CODEGEN_VERSION
from .stats import FusedFunctionLayout, FusedGroupLayout

__all__ = ["ArtifactStore", "StoredModule", "default_cache_root"]

ENV_CACHE = "REPRO_CODEGEN_CACHE"


def default_cache_root() -> Path:
    env = os.environ.get(ENV_CACHE, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "codegen"


@dataclass
class StoredModule:
    """A fused module as persisted: source text plus its output layouts."""

    key: str
    source: str
    layouts: Dict[str, FusedFunctionLayout]
    meta: Dict[str, object]


def _layouts_to_json(layouts: Dict[str, FusedFunctionLayout]) -> dict:
    return {
        name: {
            "n_outputs": lay.n_outputs,
            "groups": [[g.name, g.start, g.count] for g in lay.groups],
        }
        for name, lay in layouts.items()
    }


def _layouts_from_json(data: dict) -> Dict[str, FusedFunctionLayout]:
    out: Dict[str, FusedFunctionLayout] = {}
    for name, lay in data.items():
        layout = FusedFunctionLayout(name=name, n_outputs=int(lay["n_outputs"]))
        for gname, start, count in lay["groups"]:
            layout.groups.append(
                FusedGroupLayout(name=str(gname), start=int(start), count=int(count))
            )
        out[name] = layout
    return out


def _source_sha(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


class ArtifactStore:
    """Filesystem-backed, content-addressed cache of emitted modules."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def so_dir_for(self, key: str) -> Path:
        return self.root / "so" / key

    def load(self, key: str) -> Optional[StoredModule]:
        """Fetch a validated artifact, or ``None`` (missing or corrupt)."""
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            data = json.loads(raw)
            if data["codegen_version"] != CODEGEN_VERSION:
                raise ValueError("emitter version mismatch")
            if data["key"] != key:
                raise ValueError("key mismatch")
            source = data["source"]
            if not isinstance(source, str) or data["sha"] != _source_sha(source):
                raise ValueError("checksum mismatch")
            layouts = _layouts_from_json(data["layouts"])
            meta = dict(data.get("meta", {}))
        except (KeyError, TypeError, ValueError):
            # Corrupt or stale entry: evict so the caller re-emits cleanly.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return StoredModule(key=key, source=source, layouts=layouts, meta=meta)

    def save(
        self,
        key: str,
        source: str,
        layouts: Dict[str, FusedFunctionLayout],
        meta: Optional[Dict[str, object]] = None,
    ) -> StoredModule:
        """Persist atomically; concurrent writers of the same key converge."""
        payload = {
            "codegen_version": CODEGEN_VERSION,
            "key": key,
            "sha": _source_sha(source),
            "meta": dict(meta or {}),
            "source": source,
            "layouts": _layouts_to_json(layouts),
        }
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".{key[:12]}.", suffix=".tmp", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(json.dumps(payload))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # Read-only or full cache dir: the store is an accelerator, not
            # a correctness dependency — fall through with the in-memory
            # artifact and let the next process re-emit.
            pass
        return StoredModule(
            key=key, source=source, layouts=dict(layouts), meta=dict(meta or {})
        )
