"""repro — a reproduction of RoboX (ISCA 2018).

RoboX is an end-to-end acceleration solution for robot motion planning and
control: a mathematical DSL for robot models and tasks, a compiler lowering
DSL programs to a Model-Predictive-Control formulation plus primal-dual
interior-point solver, and a programmable accelerator with compute-enabled
interconnects executing the statically scheduled solver.

Package map:

* :mod:`repro.symbolic` — expression DAGs, autodiff, numeric compilation.
* :mod:`repro.mpc` — models, tasks, transcription, the SQP + interior-point
  solver, and the receding-horizon controller.
* :mod:`repro.robots` — the six Table III benchmark robots.
* :mod:`repro.dsl` — the RoboX language frontend.
* :mod:`repro.compiler` — Program Translator (M-DFG), Algorithm-1 mapping,
  static scheduling, and the 32-bit ISA.
* :mod:`repro.accelerator` — fixed-point datapath, LUTs, cycle simulator.
* :mod:`repro.baselines` — CPU/GPU platform models + reference solvers.
* :mod:`repro.experiments` — regeneration of every paper table and figure.

Quickstart::

    import numpy as np
    from repro.robots import build_benchmark

    bench = build_benchmark("Quadrotor")
    problem = bench.transcribe(horizon=16)
    controller = bench.make_controller(problem)
    u = controller.step(bench.x0, ref=bench.ref)
"""

from repro.errors import ReproError

__version__ = "0.1.0"
__all__ = ["ReproError", "__version__"]
